"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass that applies; the
messages always name the offending circuit object (node, net, file) because
netlist debugging without names is hopeless.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a circuit (bad arity, duplicate node, cycle...)."""


class ParseError(NetlistError):
    """Malformed ``.bench`` (or other netlist format) input.

    Attributes
    ----------
    line_number:
        1-based line where the problem was found, or ``None`` if unknown.
    """

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """A circuit failed structural validation.

    Carries the full list of individual problems so tools can report them
    all at once instead of one per run.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:5])
        extra = len(self.problems) - 5
        if extra > 0:
            summary += f"; ... and {extra} more"
        super().__init__(f"{len(self.problems)} validation problem(s): {summary}")


class SimulationError(ReproError):
    """Logic/fault simulation was asked to do something inconsistent."""


class ProbabilityError(ReproError):
    """Signal-probability computation failure (bad inputs, no convergence...)."""


class AnalysisError(ReproError):
    """EPP / SER analysis failure (unknown node, missing SP, bad model...)."""


class ResilienceError(AnalysisError):
    """Base class for sharded-analysis fault-tolerance failures.

    Every subclass carries enough structure to act on programmatically —
    the shard's site ids, how many attempts were made, and (when known)
    the worker pid — instead of a raw traceback pickled across the
    process boundary.  ``site_ids`` is truncated to the first few ids in
    the message but kept complete on the attribute.
    """

    def __init__(
        self,
        message: str,
        site_ids: tuple[int, ...] = (),
        attempts: int = 0,
        worker_pid: int | None = None,
    ):
        self.site_ids = tuple(int(site_id) for site_id in site_ids)
        self.attempts = int(attempts)
        self.worker_pid = worker_pid
        details = []
        if self.site_ids:
            head = ", ".join(str(s) for s in self.site_ids[:4])
            extra = len(self.site_ids) - 4
            sites = f"[{head}{f', ... +{extra}' if extra > 0 else ''}]"
            details.append(f"shard sites {sites}")
        if self.attempts:
            details.append(f"attempt {self.attempts}")
        if self.worker_pid is not None:
            details.append(f"worker pid {self.worker_pid}")
        if details:
            message = f"{message} ({'; '.join(details)})"
        super().__init__(message)


class WorkerCrashError(ResilienceError):
    """A sharded-analysis worker process died mid-shard.

    Raised (or retried, per the engine's
    :class:`~repro.core.resilience.FaultPolicy`) when the worker pool
    breaks while a shard is in flight — a killed/OOMed worker, a hard
    crash in a native kernel, an ``os._exit``.
    """


class ShardTimeoutError(ResilienceError):
    """A shard (or a pool barrier) exceeded its deadline.

    Covers the per-shard ``shard_timeout``, the global analysis
    ``deadline``, and the hard timeouts on the pool barriers
    (:meth:`~repro.core.epp_shard.ShardedEPPEngine.warm` /
    :meth:`~repro.core.epp_shard.ShardedEPPEngine.worker_stats`), which
    previously could block forever on a wedged worker.

    ``timeout`` is the budget (seconds) that was exceeded.
    """

    def __init__(
        self,
        message: str,
        site_ids: tuple[int, ...] = (),
        attempts: int = 0,
        worker_pid: int | None = None,
        timeout: float | None = None,
    ):
        self.timeout = timeout
        if timeout is not None:
            message = f"{message} after {timeout:g}s"
        super().__init__(message, site_ids, attempts, worker_pid)


class TransportError(ResilienceError):
    """A shard result could not cross the process boundary.

    Raised when the shared-memory export of a shard's packed arrays
    fails; the worker retries the shard's result once on the pickle
    transport before this counts as a shard failure.
    """


class RetryBudgetExceededError(ResilienceError):
    """A shard failed on every attempt its retry budget allowed.

    ``__cause__`` carries the final attempt's error; ``attempts`` counts
    every submission (first try included).  Under
    ``on_failure="degrade"`` the engine runs the shard on the in-process
    vector backend instead of raising this.
    """


class CheckpointError(AnalysisError):
    """A sweep checkpoint directory could not be used as configured.

    Raised for *setup* problems only — an unwritable/unmakeable
    ``checkpoint`` directory, or a path that exists but is not a
    directory.  Corrupt or stale checkpoint *contents* are never an
    error: they are quarantined (or discarded) and the affected shards
    simply re-sweep, so a damaged checkpoint can cost time, not
    correctness.
    """


class ConfigError(ReproError):
    """Invalid model or experiment configuration values."""


class AnalysisConfigError(ConfigError, AnalysisError):
    """Invalid analysis execution options (:mod:`repro.core.config`).

    The unified knob layer rejects unknown names, bad values and
    conflicting combinations at :class:`~repro.core.config.AnalysisConfig`
    construction time.  Deliberately a subclass of *both*
    :class:`ConfigError` (these are configuration mistakes — the CLI and
    the server map them to terminal, caller-fixable errors) and
    :class:`AnalysisError` (the historical type every analysis boundary
    raised for the same mistakes), so code catching either keeps working.
    """


class ServerError(ReproError):
    """Base class for analysis-service failures (:mod:`repro.server`).

    Every subclass carries ``retriable`` — whether a client that retries
    the same request (after ``retry_after`` seconds, when given) can
    expect it to succeed — so the wire-protocol error taxonomy is
    decided where the error is raised, not reverse-engineered from
    messages.  Library errors that are *not* ``ServerError`` map through
    :func:`repro.server.protocol.error_info` instead (resilience errors
    are retriable, config/netlist/analysis errors are terminal).
    """

    #: Whether retrying the identical request can succeed.
    retriable: bool = False

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class QueueFullError(ServerError):
    """The service shed this request: the admission queue (or the
    client's in-flight cap) is at capacity.

    ``retry_after`` is the server's estimate of when capacity frees up —
    the load-shedding contract: the work was *not* started.
    """

    retriable = True


class DeadlineExceededError(ServerError):
    """The request's end-to-end deadline expired before a result.

    Terminal for *this* request by construction — the caller already
    gave up — though a client may of course submit a fresh request with
    a larger budget.  Raised at the service's admission, queue-dequeue,
    plan-build and merge boundaries; inside a sharded sweep the same
    budget travels as ``FaultPolicy.deadline`` and surfaces as
    :class:`ShardTimeoutError`, which the service translates back.
    """

    retriable = False


class ServiceUnavailableError(ServerError):
    """The service is draining (SIGTERM received) or already closed.

    Retriable against a *replacement* instance: in-flight requests are
    finished during a drain, queued-but-unstarted ones get this.
    """

    retriable = True


class ConnectionLostError(ServiceUnavailableError):
    """The client's connection to the service dropped mid-request.

    Raised by :class:`~repro.server.client.ServeClient` when the socket
    closes without a reply — the restarted-server shape.  A subclass of
    :class:`ServiceUnavailableError` so existing ``except`` clauses and
    the wire taxonomy keep working; the client's auto-retry treats it as
    a transport failure and reconnects before retrying.
    """

    retriable = True
