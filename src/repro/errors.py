"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass that applies; the
messages always name the offending circuit object (node, net, file) because
netlist debugging without names is hopeless.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a circuit (bad arity, duplicate node, cycle...)."""


class ParseError(NetlistError):
    """Malformed ``.bench`` (or other netlist format) input.

    Attributes
    ----------
    line_number:
        1-based line where the problem was found, or ``None`` if unknown.
    """

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """A circuit failed structural validation.

    Carries the full list of individual problems so tools can report them
    all at once instead of one per run.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:5])
        extra = len(self.problems) - 5
        if extra > 0:
            summary += f"; ... and {extra} more"
        super().__init__(f"{len(self.problems)} validation problem(s): {summary}")


class SimulationError(ReproError):
    """Logic/fault simulation was asked to do something inconsistent."""


class ProbabilityError(ReproError):
    """Signal-probability computation failure (bad inputs, no convergence...)."""


class AnalysisError(ReproError):
    """EPP / SER analysis failure (unknown node, missing SP, bad model...)."""


class ConfigError(ReproError):
    """Invalid model or experiment configuration values."""
