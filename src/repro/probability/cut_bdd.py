"""Cut-based local-BDD signal probabilities.

Accuracy midpoint between the one-pass topological SP (independence
everywhere) and global exact BDDs (no independence assumption, exponential
cost): each node's probability is computed *exactly* over a bounded-depth
window of its fanin cone, assuming independence only at the window
boundary.  Reconvergence whose stem lies inside the window — the common
case, since most reconvergent paths are short — is therefore captured
exactly.

For every node, a backward traversal collects the gates within
``cut_depth`` levels; the boundary signals become independent BDD variables
weighted with their own (previously computed) SPs.  If the boundary grows
beyond ``max_cut_width`` signals the window is shrunk for that node, in the
limit degenerating to the plain topological formula over direct fanins.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.probability.bdd import BDD
from repro.probability.exact import _gate_bdd

__all__ = ["cut_signal_probabilities"]


def cut_signal_probabilities(
    circuit: Circuit,
    input_probs: Mapping[str, float] | None = None,
    cut_depth: int = 4,
    max_cut_width: int = 14,
    max_iterations: int = 20,
    tolerance: float = 1e-7,
) -> dict[str, float]:
    """SP of every node using depth-``cut_depth`` local BDD windows.

    Sequential circuits use the same fixed-point scheme as the topological
    backend: DFF outputs start at 0.5 and iterate until the state SPs settle.
    """
    if cut_depth < 1:
        raise ProbabilityError(f"cut_depth must be >= 1, got {cut_depth}")
    if max_cut_width < 2:
        raise ProbabilityError(f"max_cut_width must be >= 2, got {max_cut_width}")

    compiled = circuit.compiled()
    fixed: dict[int, float] = {}
    for name, p in (input_probs or {}).items():
        node_id = compiled.index.get(name)
        if node_id is None:
            raise ProbabilityError(f"input_probs names unknown node {name!r}")
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability for {name!r} out of [0,1]: {p}")
        fixed[node_id] = float(p)

    state = {dff: 0.5 for dff in compiled.dff_ids}
    d_driver = {dff: compiled.fanin(dff)[0] for dff in compiled.dff_ids}
    probs = [0.0] * compiled.n

    rounds = max_iterations if compiled.dff_ids else 1
    for _ in range(max(1, rounds)):
        _cut_pass(compiled, probs, fixed, state, cut_depth, max_cut_width)
        if not compiled.dff_ids:
            break
        delta = 0.0
        for dff, driver in d_driver.items():
            delta = max(delta, abs(probs[driver] - state[dff]))
            state[dff] = probs[driver]
        if delta < tolerance:
            _cut_pass(compiled, probs, fixed, state, cut_depth, max_cut_width)
            break

    return {compiled.names[i]: probs[i] for i in range(compiled.n)}


def _cut_pass(
    compiled,
    probs: list[float],
    fixed: dict[int, float],
    state: dict[int, float],
    cut_depth: int,
    max_cut_width: int,
) -> None:
    level = compiled.level
    for node_id in compiled.topo:
        gate_type = compiled.gate_type(node_id)
        if gate_type is GateType.INPUT:
            probs[node_id] = fixed.get(node_id, 0.5)
            continue
        if gate_type is GateType.DFF:
            probs[node_id] = state[node_id]
            continue
        if gate_type is GateType.CONST0:
            probs[node_id] = 0.0
            continue
        if gate_type is GateType.CONST1:
            probs[node_id] = 1.0
            continue

        # Widen the window until the boundary fits, starting from the target
        # depth; depth 1 always fits or degenerates to direct fanins.
        depth = cut_depth
        while True:
            limit = level[node_id] - depth
            leaves, interior = _collect_window(compiled, node_id, limit)
            if len(leaves) <= max_cut_width or depth == 1:
                break
            depth -= 1
        probs[node_id] = _window_probability(compiled, node_id, leaves, interior, probs)


def _collect_window(compiled, root: int, level_limit: int) -> tuple[list[int], list[int]]:
    """Backward window: returns (boundary leaves, interior gates incl. root).

    A node becomes a leaf if it is a source or its level is <= the limit.
    Both lists are deterministic (DFS discovery order; interior sorted
    topologically by level for evaluation).
    """
    leaves: list[int] = []
    interior: list[int] = []
    seen: set[int] = set()
    stack = [root]
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        gate_type = compiled.gate_type(node_id)
        is_leaf = node_id != root and (
            not gate_type.is_combinational or compiled.level[node_id] <= level_limit
        )
        if is_leaf:
            leaves.append(node_id)
        else:
            interior.append(node_id)
            for pin in compiled.fanin(node_id):
                stack.append(pin)
    interior.sort(key=lambda i: compiled.level[i])
    return leaves, interior


def _window_probability(
    compiled, root: int, leaves: list[int], interior: list[int], probs: list[float]
) -> float:
    """Exact probability of ``root`` over the window, leaves independent."""
    bdd = BDD(max_nodes=200_000)
    var_of = {leaf: level for level, leaf in enumerate(leaves)}
    fn: dict[int, int] = {leaf: bdd.var(var_of[leaf]) for leaf in leaves}
    for node_id in interior:
        gate_type = compiled.gate_type(node_id)
        pins = [fn[p] for p in compiled.fanin(node_id)]
        fn[node_id] = _gate_bdd(bdd, gate_type, pins)
    leaf_probs = {var_of[leaf]: probs[leaf] for leaf in leaves}
    return bdd.sat_prob(fn[root], leaf_probs)
