"""COP-style observability — the classic one-pass baseline EPP refines.

The controllability/observability program (COP, Brglez 1984) estimates a
node's observability — the probability a value change at the node changes
an observable output — with a single *reverse* topological pass:

* a sink (primary output or flip-flop D driver) has observability 1;
* input pin ``x_i`` of a gate is observable iff the gate output is
  observable and the other inputs sit at non-controlling values, all
  probabilities multiplied under independence;
* a fanout stem combines its branch observabilities as
  ``1 - prod(1 - O_branch)``.

This is exactly the quantity the paper's ``P_sensitized`` measures, but
computed without error-polarity tracking and with an extra independence
assumption *between fanout branches*.  The paper's EPP can be read as
COP's observability made reconvergence-aware; the ablation benchmark
(``bench_ablation_cop``) quantifies the accuracy the refinement buys and
the cost it pays (COP covers **all** nodes in one pass; EPP does one pass
*per node*).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, truth_table
from repro.probability.signal_prob import compute_signal_probabilities

__all__ = ["cop_observability"]


def cop_observability(
    circuit: Circuit,
    signal_probs: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Per-node observability by the one-pass COP recurrence.

    ``signal_probs`` supplies line probabilities (computed topologically
    when omitted).  Returns observability for every node; nodes that reach
    no sink get 0.
    """
    compiled = circuit.compiled()
    if signal_probs is None:
        signal_probs = compute_signal_probabilities(circuit)
    sp = [0.0] * compiled.n
    for node_id in range(compiled.n):
        name = compiled.names[node_id]
        try:
            sp[node_id] = float(signal_probs[name])
        except KeyError:
            raise ProbabilityError(f"signal_probs is missing node {name!r}") from None

    # Observability accumulates per node over its fanout pins:
    # O(n) = 1 - prod_pins (1 - O_pin); we keep the running product.
    survive = [1.0] * compiled.n  # prod(1 - O_pin)
    sink_set = set(compiled.sink_ids)
    for sink in sink_set:
        survive[sink] = 0.0  # sinks are directly observable

    # Reverse topological: users are finalized before their drivers.
    for node_id in reversed(compiled.topo):
        gate_type = compiled.gate_type(node_id)
        if not gate_type.is_combinational:
            continue
        out_obs = 1.0 - survive[node_id]
        if out_obs == 0.0:
            continue
        pins = compiled.fanin(node_id)
        pin_obs = _pin_observabilities(gate_type, pins, sp, out_obs)
        for pin, obs in zip(pins, pin_obs):
            if obs > 0.0:
                survive[pin] *= 1.0 - obs

    return {
        compiled.names[node_id]: 1.0 - survive[node_id]
        for node_id in range(compiled.n)
    }


def _pin_observabilities(
    gate_type: GateType, pins: list[int], sp: list[float], out_obs: float
) -> list[float]:
    """Observability of each input pin given the gate output observability."""
    probs = [sp[p] for p in pins]
    if gate_type in (GateType.AND, GateType.NAND):
        return [out_obs * _product_except(probs, i) for i in range(len(pins))]
    if gate_type in (GateType.OR, GateType.NOR):
        complements = [1.0 - p for p in probs]
        return [out_obs * _product_except(complements, i) for i in range(len(pins))]
    if gate_type in (GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
        return [out_obs] * len(pins)
    if gate_type is GateType.MUX:
        s, a, b = probs
        data_differ = a * (1.0 - b) + b * (1.0 - a)
        return [out_obs * data_differ, out_obs * (1.0 - s), out_obs * s]
    # Generic (MAJ, future cells): pin i is observable when flipping it
    # flips the output, marginalized over the other pins' probabilities.
    table = truth_table(gate_type, len(pins))
    sensitivities = []
    for i in range(len(pins)):
        total = 0.0
        for assignment in range(1 << len(pins)):
            if (assignment >> i) & 1:
                continue  # count each pair once (pin at 0 vs pin at 1)
            flipped = assignment | (1 << i)
            if table[assignment] == table[flipped]:
                continue
            weight = 1.0
            for k, p in enumerate(probs):
                if k == i:
                    continue
                weight *= p if (assignment >> k) & 1 else (1.0 - p)
            total += weight
        sensitivities.append(out_obs * total)
    return sensitivities


def _product_except(values: list[float], skip: int) -> float:
    product = 1.0
    for index, value in enumerate(values):
        if index != skip:
            product *= value
    return product
