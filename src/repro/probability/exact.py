"""Exact signal probabilities via global BDDs.

Builds one BDD per node over the primary-input variables and evaluates the
weighted satisfaction probability.  Exact under the independent-inputs
model, so it serves as ground truth for the approximate backends in tests
and ablations.  Cost is the usual BDD caveat: worst-case exponential, so
this backend is meant for small and medium circuits (guarded by
``max_nodes``).

Sequential circuits are rejected — cut them first with
:func:`repro.netlist.transform.to_combinational` and assign the state
inputs whatever distribution the analysis calls for.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, truth_table
from repro.probability.bdd import BDD

__all__ = ["exact_signal_probabilities", "build_node_bdds"]


def build_node_bdds(
    circuit: Circuit,
    manager: BDD | None = None,
) -> tuple[BDD, dict[str, int], dict[str, int]]:
    """Build a BDD for every node of a combinational circuit.

    Returns ``(manager, functions, var_levels)`` where ``functions`` maps
    node name -> BDD id and ``var_levels`` maps primary-input name -> the
    BDD variable level assigned to it (declaration order).
    """
    if circuit.is_sequential:
        raise ProbabilityError(
            f"circuit {circuit.name!r} is sequential; cut it with to_combinational() "
            "before exact BDD analysis"
        )
    bdd = manager if manager is not None else BDD()
    compiled = circuit.compiled()
    var_levels = {name: level for level, name in enumerate(circuit.inputs)}
    functions: dict[str, int] = {}
    node_fn: list[int] = [0] * compiled.n

    for node_id in compiled.topo:
        gate_type = compiled.gate_type(node_id)
        name = compiled.names[node_id]
        if gate_type is GateType.INPUT:
            fn = bdd.var(var_levels[name])
        elif gate_type is GateType.CONST0:
            fn = BDD.ZERO
        elif gate_type is GateType.CONST1:
            fn = BDD.ONE
        else:
            pins = [node_fn[p] for p in compiled.fanin(node_id)]
            fn = _gate_bdd(bdd, gate_type, pins)
        node_fn[node_id] = fn
        functions[name] = fn
    return bdd, functions, var_levels


def _gate_bdd(bdd: BDD, gate_type: GateType, pins: list[int]) -> int:
    if gate_type is GateType.AND:
        return bdd.and_many(pins)
    if gate_type is GateType.NAND:
        return bdd.not_(bdd.and_many(pins))
    if gate_type is GateType.OR:
        return bdd.or_many(pins)
    if gate_type is GateType.NOR:
        return bdd.not_(bdd.or_many(pins))
    if gate_type is GateType.XOR:
        return bdd.xor_many(pins)
    if gate_type is GateType.XNOR:
        return bdd.not_(bdd.xor_many(pins))
    if gate_type is GateType.NOT:
        return bdd.not_(pins[0])
    if gate_type is GateType.BUF:
        return pins[0]
    if gate_type is GateType.MUX:
        sel, a, b = pins
        return bdd.ite(sel, b, a)
    # MAJ and anything exotic: compose from the truth table.
    return bdd.compose_truth_table(truth_table(gate_type, len(pins)), pins)


def exact_signal_probabilities(
    circuit: Circuit,
    input_probs: Mapping[str, float] | None = None,
    max_nodes: int = 2_000_000,
) -> dict[str, float]:
    """Exact SP of every node under independent primary inputs."""
    bdd = BDD(max_nodes=max_nodes)
    _, functions, var_levels = build_node_bdds(circuit, manager=bdd)
    probs_by_level: dict[int, float] = {}
    defaults = input_probs or {}
    for name, level in var_levels.items():
        p = float(defaults.get(name, 0.5))
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability for {name!r} out of [0,1]: {p}")
        probs_by_level[level] = p
    return {
        name: bdd.sat_prob(fn, probs_by_level) for name, fn in functions.items()
    }
