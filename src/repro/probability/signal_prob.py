"""Topological signal-probability computation (Parker–McCluskey style).

One pass in topological order computes every node's probability of being 1
from its fanin probabilities, assuming fanin independence.  The assumption
is exact on trees and biased wherever reconvergent fanout correlates fanins
— the standard, fast baseline the paper builds on (reference [5]).

Sequential circuits are handled by fixed-point iteration across the
flip-flop boundary: DFF outputs start at SP 0.5, each pass recomputes the
D-driver SPs, and the state SPs are updated (with optional damping) until
the largest change falls below tolerance.

When NumPy is available, circuits above a small size threshold run a
*vectorized* pass: nodes are grouped by ``(level, gate code, arity)`` once
per compiled circuit, and each level executes as a handful of array
operations over the node axis instead of a Python loop over nodes.  The
grouping is cached on the compiled circuit, so sequential fixed-point
iteration amortizes it across all passes.  Both passes compute the same
arithmetic in the same per-gate association order; results agree to
floating-point rounding.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships NumPy
    _np = None

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_CONST0,
    CODE_CONST1,
    CODE_DFF,
    CODE_INPUT,
    CODE_MAJ,
    CODE_MUX,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    GateType,
    truth_table,
)

__all__ = [
    "compute_signal_probabilities",
    "gate_output_probability",
    "SequentialConvergence",
]


def gate_output_probability(gate_type: GateType, input_probs: Sequence[float]) -> float:
    """Probability the gate outputs 1 given independent fanin 1-probabilities."""
    code_dispatch = {
        GateType.AND: _p_and,
        GateType.NAND: lambda ps: 1.0 - _p_and(ps),
        GateType.OR: _p_or,
        GateType.NOR: lambda ps: 1.0 - _p_or(ps),
        GateType.XOR: _p_xor,
        GateType.XNOR: lambda ps: 1.0 - _p_xor(ps),
        GateType.NOT: lambda ps: 1.0 - ps[0],
        GateType.BUF: lambda ps: ps[0],
        GateType.CONST0: lambda ps: 0.0,
        GateType.CONST1: lambda ps: 1.0,
        GateType.MUX: lambda ps: (1.0 - ps[0]) * ps[1] + ps[0] * ps[2],
    }
    handler = code_dispatch.get(gate_type)
    if handler is not None:
        return handler(list(input_probs))
    # Generic truth-table fallback (MAJ and future cells).
    return _p_truth_table(gate_type, list(input_probs))


def _p_and(probs: list[float]) -> float:
    acc = 1.0
    for p in probs:
        acc *= p
    return acc


def _p_or(probs: list[float]) -> float:
    acc = 1.0
    for p in probs:
        acc *= 1.0 - p
    return 1.0 - acc


def _p_xor(probs: list[float]) -> float:
    odd = 0.0
    for p in probs:
        odd = odd * (1.0 - p) + (1.0 - odd) * p
    return odd


def _p_truth_table(gate_type: GateType, probs: list[float]) -> float:
    table = truth_table(gate_type, len(probs))
    total = 0.0
    for assignment, out in enumerate(table):
        if not out:
            continue
        term = 1.0
        for k, p in enumerate(probs):
            term *= p if (assignment >> k) & 1 else (1.0 - p)
        total += term
    return total


class SequentialConvergence:
    """Record of the fixed-point iteration over flip-flop probabilities."""

    def __init__(self) -> None:
        self.iterations = 0
        self.final_delta = 0.0
        self.converged = False


def compute_signal_probabilities(
    circuit: Circuit | CompiledCircuit,
    input_probs: Mapping[str, float] | None = None,
    state_probs: Mapping[str, float] | None = None,
    max_iterations: int = 50,
    tolerance: float = 1e-9,
    damping: float = 0.0,
    convergence: SequentialConvergence | None = None,
) -> dict[str, float]:
    """Topological SP for every node; fixed-point over DFFs if sequential.

    Parameters
    ----------
    input_probs:
        Per-primary-input probability of 1 (default 0.5).  Probabilities
        outside [0, 1] raise :class:`~repro.errors.ProbabilityError`.
    state_probs:
        Initial flip-flop-output probabilities (default 0.5).
    max_iterations, tolerance, damping:
        Fixed-point controls for sequential circuits; ``damping`` blends the
        new state SP with the previous one (0 = no damping) which helps
        oscillating feedback structures converge.
    convergence:
        Optional out-parameter collecting iteration count and final delta.
    """
    compiled = circuit.compiled() if isinstance(circuit, Circuit) else circuit
    use_vector = _np is not None and compiled.n >= _VEC_MIN_NODES
    # The vectorized pass appends two sentinel slots (SP 1.0 / 0.0) used to
    # pad mixed-arity gate groups; see _SPLevelPlan.
    probs = _np.zeros(compiled.n + 2) if use_vector else [0.0] * compiled.n
    one_pass = _one_pass_vec if use_vector else _one_pass
    code = compiled.code

    fixed: dict[int, float] = {}
    for name, p in (input_probs or {}).items():
        node_id = compiled.index.get(name)
        if node_id is None:
            raise ProbabilityError(f"input_probs names unknown node {name!r}")
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability for {name!r} out of [0,1]: {p}")
        fixed[node_id] = float(p)

    state: dict[int, float] = {dff: 0.5 for dff in compiled.dff_ids}
    for name, p in (state_probs or {}).items():
        node_id = compiled.index.get(name)
        if node_id is None or compiled.gate_type(node_id) is not GateType.DFF:
            raise ProbabilityError(f"state_probs names non-DFF node {name!r}")
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability for {name!r} out of [0,1]: {p}")
        state[node_id] = float(p)

    d_driver = {dff: compiled.fanin(dff)[0] for dff in compiled.dff_ids}
    record = convergence if convergence is not None else SequentialConvergence()

    iterations = max_iterations if compiled.dff_ids else 1
    for iteration in range(max(1, iterations)):
        one_pass(compiled, probs, fixed, state)
        if not compiled.dff_ids:
            record.converged = True
            break
        delta = 0.0
        new_state: dict[int, float] = {}
        for dff, driver in d_driver.items():
            target = float(probs[driver])
            blended = damping * state[dff] + (1.0 - damping) * target
            delta = max(delta, abs(blended - state[dff]))
            new_state[dff] = blended
        state = new_state
        record.iterations = iteration + 1
        record.final_delta = delta
        if delta < tolerance:
            record.converged = True
            # One final pass so interior nodes reflect the converged state.
            one_pass(compiled, probs, fixed, state)
            break

    if use_vector:
        values = probs.tolist()
        return {compiled.names[i]: values[i] for i in range(compiled.n)}
    return {compiled.names[i]: probs[i] for i in range(compiled.n)}


#: Minimum node count before the vectorized pass pays for its array
#: dispatch; below it the plain Python pass is faster.
_VEC_MIN_NODES = 2000


class _SPLevelPlan:
    """Level-grouped node blocks for the vectorized SP pass.

    Combinational nodes are bucketed by ``(level, gate code, arity)`` into
    rectangular ``(out_ids, fanin)`` index arrays; sources are captured as
    flat id arrays.  Built once per compiled circuit and cached on it.
    """

    def __init__(self, compiled: CompiledCircuit):
        self.input_ids = _np.asarray(compiled.input_ids, dtype=_np.intp)
        code = compiled.code
        self.const0_ids = _np.asarray(
            [i for i in range(compiled.n) if code[i] == CODE_CONST0], dtype=_np.intp
        )
        self.const1_ids = _np.asarray(
            [i for i in range(compiled.n) if code[i] == CODE_CONST1], dtype=_np.intp
        )
        # Shared grouping with the batch EPP backend: mixed-arity gates of
        # the paddable families merge per level via the constant-1/0
        # sentinel slots at ids n / n + 1 (an exact float identity for
        # these kernels — see ``CompiledCircuit.level_gate_groups``).
        self.groups: list[tuple[int, _np.ndarray, _np.ndarray, tuple | None]] = []
        for _level, gate_code, outs, fins, width in compiled.level_gate_groups(
            _VEC_PADDABLE_CODES, _VEC_PAD_ONE_CODES
        ):
            table = None
            if gate_code not in _VEC_CLOSED_FORM_CODES:
                table = truth_table(compiled.gate_type(outs[0]), width)
            self.groups.append(
                (
                    gate_code,
                    _np.asarray(outs, dtype=_np.intp),
                    _np.asarray(fins, dtype=_np.intp),
                    table,
                )
            )

    @staticmethod
    def for_compiled(compiled: CompiledCircuit) -> "_SPLevelPlan":
        plan = getattr(compiled, "_sp_level_plan", None)
        if plan is None:
            plan = _SPLevelPlan(compiled)
            compiled._sp_level_plan = plan
        return plan


_VEC_CLOSED_FORM_CODES = frozenset(
    (CODE_AND, CODE_NAND, CODE_OR, CODE_NOR, CODE_XOR, CODE_XNOR,
     CODE_NOT, CODE_BUF, CODE_MUX)
)

#: Codes whose SP kernels have an exact neutral input; the grouping itself
#: lives in ``CompiledCircuit.level_gate_groups`` and is shared with the
#: batch EPP backend (:mod:`repro.core.epp_batch`).
_VEC_PADDABLE_CODES = frozenset(
    (CODE_AND, CODE_NAND, CODE_OR, CODE_NOR, CODE_XOR, CODE_XNOR)
)
_VEC_PAD_ONE_CODES = frozenset((CODE_AND, CODE_NAND))


def _one_pass_vec(
    compiled: CompiledCircuit,
    probs,
    fixed: dict[int, float],
    state: dict[int, float],
) -> None:
    """Vectorized topological SP pass over level-grouped node blocks.

    Per-gate arithmetic and association order mirror :func:`_one_pass`
    exactly (products across the pin axis in pin order), so the two passes
    agree to floating-point rounding.
    """
    plan = _SPLevelPlan.for_compiled(compiled)
    probs[compiled.n] = 1.0  # sentinel: AND-family padding input
    probs[compiled.n + 1] = 0.0  # sentinel: OR/XOR-family padding input
    if len(plan.input_ids):
        probs[plan.input_ids] = 0.5
        for node_id, p in fixed.items():
            if compiled.code[node_id] == CODE_INPUT:
                probs[node_id] = p
    for node_id, p in state.items():
        probs[node_id] = p
    if len(plan.const0_ids):
        probs[plan.const0_ids] = 0.0
    if len(plan.const1_ids):
        probs[plan.const1_ids] = 1.0

    for gate_code, out_ids, fanin, table in plan.groups:
        p = probs[fanin]  # (g, k)
        if gate_code == CODE_AND or gate_code == CODE_NAND:
            acc = p.prod(axis=1)
            probs[out_ids] = acc if gate_code == CODE_AND else 1.0 - acc
        elif gate_code == CODE_OR or gate_code == CODE_NOR:
            acc = (1.0 - p).prod(axis=1)
            probs[out_ids] = 1.0 - acc if gate_code == CODE_OR else acc
        elif gate_code == CODE_NOT:
            probs[out_ids] = 1.0 - p[:, 0]
        elif gate_code == CODE_BUF:
            probs[out_ids] = p[:, 0]
        elif gate_code == CODE_XOR or gate_code == CODE_XNOR:
            odd = _np.zeros(len(out_ids))
            for pin in range(p.shape[1]):
                pin_p = p[:, pin]
                odd = odd * (1.0 - pin_p) + (1.0 - odd) * pin_p
            probs[out_ids] = odd if gate_code == CODE_XOR else 1.0 - odd
        elif gate_code == CODE_MUX:
            sel = p[:, 0]
            probs[out_ids] = (1.0 - sel) * p[:, 1] + sel * p[:, 2]
        else:
            # Generic truth-table fallback (MAJ and future cells), summing
            # minterms in the same order as the scalar `_p_truth_table`.
            total = _np.zeros(len(out_ids))
            k = p.shape[1]
            for assignment, out in enumerate(table):
                if not out:
                    continue
                term = _np.ones(len(out_ids))
                for pin in range(k):
                    pin_p = p[:, pin]
                    term = term * (pin_p if (assignment >> pin) & 1 else 1.0 - pin_p)
                total += term
            probs[out_ids] = total


def _one_pass(
    compiled: CompiledCircuit,
    probs: list[float],
    fixed: dict[int, float],
    state: dict[int, float],
) -> None:
    """One topological SP propagation with the given source probabilities."""
    code = compiled.code
    for node_id in compiled.topo:
        gate_code = code[node_id]
        if gate_code == CODE_INPUT:
            probs[node_id] = fixed.get(node_id, 0.5)
        elif gate_code == CODE_DFF:
            probs[node_id] = state[node_id]
        elif gate_code == CODE_CONST0:
            probs[node_id] = 0.0
        elif gate_code == CODE_CONST1:
            probs[node_id] = 1.0
        else:
            pins = compiled.fanin(node_id)
            if gate_code == CODE_AND or gate_code == CODE_NAND:
                acc = 1.0
                for pin in pins:
                    acc *= probs[pin]
                probs[node_id] = acc if gate_code == CODE_AND else 1.0 - acc
            elif gate_code == CODE_OR or gate_code == CODE_NOR:
                acc = 1.0
                for pin in pins:
                    acc *= 1.0 - probs[pin]
                probs[node_id] = 1.0 - acc if gate_code == CODE_OR else acc
            elif gate_code == CODE_NOT:
                probs[node_id] = 1.0 - probs[pins[0]]
            elif gate_code == CODE_BUF:
                probs[node_id] = probs[pins[0]]
            elif gate_code == CODE_XOR or gate_code == CODE_XNOR:
                odd = 0.0
                for pin in pins:
                    p = probs[pin]
                    odd = odd * (1.0 - p) + (1.0 - odd) * p
                probs[node_id] = odd if gate_code == CODE_XOR else 1.0 - odd
            elif gate_code == CODE_MUX:
                s, a, b = (probs[p] for p in pins)
                probs[node_id] = (1.0 - s) * a + s * b
            else:
                probs[node_id] = _p_truth_table(
                    compiled.gate_type(node_id), [probs[p] for p in pins]
                )
