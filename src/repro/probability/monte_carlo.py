"""Monte Carlo signal-probability estimation.

Bit-parallel random simulation: N vectors are packed into big-int words and
pushed through the circuit once; each node's SP estimate is its one-count
divided by N.  For sequential circuits the circuit is clocked with fresh
random inputs every cycle from a random initial state; a warmup prefix is
discarded so the state distribution approaches steady state before counting
begins.

This backend converges to the true SP (standard error ~ 1/(2*sqrt(N))) and
is the "accurate but slow" SP computation whose cost the paper reports
separately as the SPT column of Table 2.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.sim.logic_sim import BitParallelSimulator, simulate_sequential
from repro.sim.vectors import RandomVectorSource

__all__ = ["monte_carlo_signal_probabilities", "sp_standard_error"]

_WORD_WIDTH = 1024


def sp_standard_error(n_vectors: int) -> float:
    """Worst-case (p=0.5) standard error of an SP estimate from N vectors."""
    if n_vectors < 1:
        raise ProbabilityError(f"n_vectors must be >= 1, got {n_vectors}")
    return 0.5 / math.sqrt(n_vectors)


def monte_carlo_signal_probabilities(
    circuit: Circuit,
    input_probs: Mapping[str, float] | None = None,
    n_vectors: int = 100_000,
    seed: int = 2005,
    warmup_cycles: int = 8,
    cycles_per_batch: int = 16,
    word_width: int = _WORD_WIDTH,
    rng: random.Random | None = None,
) -> dict[str, float]:
    """Estimate every node's SP from ``n_vectors`` random patterns.

    For sequential circuits each batch simulates ``warmup_cycles`` unscored
    cycles followed by ``cycles_per_batch`` scored cycles, so ``n_vectors``
    counts *scored* pattern-cycles.

    Every sampled bit descends from ``seed`` (or, when given, from ``rng``,
    an explicit :class:`random.Random` whose state seeds the internal
    pattern and initial-state streams) — the function never touches
    module-level random state, so runs are reproducible bit for bit.  The
    explicit ``rng`` form lets a calling experiment derive all of its
    stochastic components from one master generator.
    """
    if n_vectors < 1:
        raise ProbabilityError(f"n_vectors must be >= 1, got {n_vectors}")
    if word_width < 1:
        raise ProbabilityError(f"word_width must be >= 1, got {word_width}")

    if rng is not None:
        # Two independent derived streams (patterns / initial state), both
        # pure functions of the caller's generator state.
        seed = rng.getrandbits(64)

    compiled = circuit.compiled()
    counts = [0] * compiled.n
    source = RandomVectorSource(circuit.inputs, seed=seed, weights=input_probs)

    if not circuit.is_sequential:
        simulator = BitParallelSimulator(compiled)
        remaining = n_vectors
        while remaining > 0:
            width = min(word_width, remaining)
            words = source.next_words(width)
            values = simulator.run(words, width)
            for node_id in range(compiled.n):
                counts[node_id] += values[node_id].bit_count()
            remaining -= width
        total = n_vectors
    else:
        state_source = RandomVectorSource(circuit.flip_flops, seed=seed ^ 0x5EED)
        total = 0
        remaining = n_vectors
        while remaining > 0:
            width = min(word_width, max(1, remaining // max(1, cycles_per_batch)))
            scored = min(cycles_per_batch, max(1, -(-remaining // width)))
            trace = simulate_sequential(
                circuit,
                lambda cycle: source.next_words(width),
                cycles=warmup_cycles + scored,
                width=width,
                initial_state=state_source.next_words(width),
                keep_trace=True,
            )
            for cycle in range(warmup_cycles, warmup_cycles + scored):
                values = trace.node_words[cycle]
                for node_id in range(compiled.n):
                    counts[node_id] += values[node_id].bit_count()
            total += scored * width
            remaining -= scored * width

    return {compiled.names[i]: counts[i] / total for i in range(compiled.n)}
