"""Signal-probability substrate.

The signal probability (SP) of a line is the probability that it carries
logic 1 under the circuit's input distribution (Parker & McCluskey, 1975).
The EPP method consumes SPs for *off-path* signals; the paper charges SP
computation separately (its Table 2 "SPT" column) because SPs are reusable
across all error sites and "already used in other steps of the design flow".

Four backends, trading accuracy for runtime:

* ``topological`` — one topological pass assuming signal independence
  (fast, exact on fanout-free circuits, biased under reconvergence).
* ``cut`` — local BDDs over a bounded-depth cut capture nearby
  reconvergence (accuracy midpoint).
* ``monte_carlo`` — bit-parallel random simulation (converges to truth,
  slow; this is the backend the Table 2 harness charges as SPT).
* ``exact`` — global BDDs (ground truth; small circuits only).

:func:`signal_probabilities` is the façade over all four.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.probability.signal_prob import compute_signal_probabilities
from repro.probability.monte_carlo import monte_carlo_signal_probabilities
from repro.probability.exact import exact_signal_probabilities
from repro.probability.cut_bdd import cut_signal_probabilities
from repro.probability.bdd import BDD

__all__ = [
    "signal_probabilities",
    "compute_signal_probabilities",
    "monte_carlo_signal_probabilities",
    "exact_signal_probabilities",
    "cut_signal_probabilities",
    "BDD",
]

_METHODS = ("topological", "cut", "monte_carlo", "exact")


def signal_probabilities(
    circuit: Circuit,
    method: str = "topological",
    input_probs: Mapping[str, float] | None = None,
    **kwargs,
) -> dict[str, float]:
    """Compute the SP of every node with the chosen backend.

    ``input_probs`` maps primary-input names to their probability of 1
    (default 0.5 everywhere); backend-specific options are forwarded
    (e.g. ``n_vectors`` for ``monte_carlo``, ``cut_depth`` for ``cut``,
    ``max_iterations`` for sequential fixed-point iteration).
    """
    if method == "topological":
        return compute_signal_probabilities(circuit, input_probs=input_probs, **kwargs)
    if method == "cut":
        return cut_signal_probabilities(circuit, input_probs=input_probs, **kwargs)
    if method == "monte_carlo":
        return monte_carlo_signal_probabilities(circuit, input_probs=input_probs, **kwargs)
    if method == "exact":
        return exact_signal_probabilities(circuit, input_probs=input_probs, **kwargs)
    raise ProbabilityError(
        f"unknown signal-probability method {method!r}; choose from {_METHODS}"
    )
