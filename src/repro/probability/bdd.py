"""A compact reduced-ordered BDD (ROBDD) engine.

First-party and dependency-free: the exact signal-probability backend and
the cut-based SP backend both build on it, and the tests use it as ground
truth for Boolean reasoning.  The implementation follows the classic
unique-table + memoized ITE construction (Brace/Rudell/Bryant).

Node ids are plain ints; ``0`` and ``1`` are the terminal constants.
Variables are identified by integer *levels* — a smaller level is closer to
the root, so the caller controls the variable order by the numbers it picks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ProbabilityError

__all__ = ["BDD"]

_TERMINAL_VAR = 1 << 60  # larger than any real level


class BDD:
    """One BDD manager: a shared unique table plus ITE/probability caches.

    Parameters
    ----------
    max_nodes:
        Hard cap on the number of allocated nodes; exceeding it raises
        :class:`~repro.errors.ProbabilityError` instead of letting an
        exponential construction consume the machine.
    """

    ZERO = 0
    ONE = 1

    def __init__(self, max_nodes: int = 2_000_000):
        # nodes[i] = (var_level, low_child, high_child); two terminal slots.
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self.max_nodes = max_nodes

    # ------------------------------------------------------------- structure

    def __len__(self) -> int:
        return len(self._var)

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduced)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._var) >= self.max_nodes:
            raise ProbabilityError(
                f"BDD exceeded max_nodes={self.max_nodes}; "
                "the function is too large for exact analysis"
            )
        node_id = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node_id
        return node_id

    def var(self, level: int) -> int:
        """The single-variable function ``x_level``."""
        if level >= _TERMINAL_VAR:
            raise ProbabilityError(f"variable level {level} too large")
        return self.mk(level, self.ZERO, self.ONE)

    def var_of(self, f: int) -> int:
        return self._var[f]

    def cofactors(self, f: int, level: int) -> tuple[int, int]:
        """(f|var=0, f|var=1) with respect to the top level ``level``."""
        if self._var[f] == level:
            return self._low[f], self._high[f]
        return f, f

    # ------------------------------------------------------------ operations

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` — the universal connective."""
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if g == self.ONE and h == self.ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self.cofactors(f, level)
        g0, g1 = self.cofactors(g, level)
        h0, h1 = self.cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self.mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.ite(f, self.ZERO, self.ONE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.ONE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def and_many(self, fs: Sequence[int]) -> int:
        acc = self.ONE
        for f in fs:
            acc = self.and_(acc, f)
        return acc

    def or_many(self, fs: Sequence[int]) -> int:
        acc = self.ZERO
        for f in fs:
            acc = self.or_(acc, f)
        return acc

    def xor_many(self, fs: Sequence[int]) -> int:
        acc = self.ZERO
        for f in fs:
            acc = self.xor_(acc, f)
        return acc

    def compose_truth_table(self, table: Sequence[int], inputs: Sequence[int]) -> int:
        """Build ``f(g_0, ..., g_{k-1})`` from ``f``'s truth table.

        ``table`` has ``2**k`` entries indexed LSB-first by input number
        (the convention of :func:`repro.netlist.gate_types.truth_table`);
        ``inputs`` are BDD functions.  Shannon-expands on the inputs.
        """
        k = len(inputs)
        if len(table) != (1 << k):
            raise ProbabilityError(
                f"truth table has {len(table)} entries, expected {1 << k}"
            )

        def expand(position: int, index: int) -> int:
            if position == k:
                return self.ONE if table[index] else self.ZERO
            low = expand(position + 1, index)
            high = expand(position + 1, index | (1 << position))
            return self.ite(inputs[position], high, low)

        return expand(0, 0)

    # --------------------------------------------------------------- queries

    def evaluate(self, f: int, assignment: Mapping[int, int]) -> int:
        """Evaluate ``f`` under a level -> 0/1 assignment."""
        while f > self.ONE:
            level = self._var[f]
            try:
                bit = assignment[level]
            except KeyError:
                raise ProbabilityError(f"assignment missing variable level {level}") from None
            f = self._high[f] if bit else self._low[f]
        return f

    def sat_prob(self, f: int, probs: Mapping[int, float]) -> float:
        """Probability that ``f`` is 1 under independent variable probabilities."""
        cache: dict[int, float] = {self.ZERO: 0.0, self.ONE: 1.0}

        def walk(node: int) -> float:
            cached = cache.get(node)
            if cached is not None:
                return cached
            level = self._var[node]
            try:
                p = probs[level]
            except KeyError:
                raise ProbabilityError(
                    f"sat_prob missing probability for variable level {level}"
                ) from None
            value = (1.0 - p) * walk(self._low[node]) + p * walk(self._high[node])
            cache[node] = value
            return value

        return walk(f)

    def support(self, f: int) -> set[int]:
        """The set of variable levels ``f`` actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= self.ONE or node in seen:
                continue
            seen.add(node)
            levels.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return levels

    def count_nodes(self, f: int) -> int:
        """Number of distinct internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= self.ONE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
