"""Table 2 regeneration: EPP vs random simulation on the ISCAS'89 roster.

For every circuit the harness measures, mirroring the paper's columns:

* **SysT** — mean EPP run time per node (milliseconds).  Measured over a
  deterministic sample of sites (cone extraction included).  With
  ``Table2Config(backend="vector")`` the sample runs through the batched
  NumPy backend instead and SysT reports the amortized per-node cost of
  the level-parallel sweep (``--backend vector`` on the CLI);
  ``backend="sharded"`` (``--backend sharded --jobs N``) fans that sweep
  across a warmed pool of ``jobs`` worker processes.
* **SimT** — mean *serial* random-simulation run time per node (seconds),
  the 2005-methodology baseline
  (:class:`~repro.core.baseline.SerialRandomSimulationEstimator`).
  Measured on a small site sample because it is exorbitantly slow — the
  same concession the paper makes ("for larger circuits, a limited number
  of gates of the circuits are simulated").
* **%Dif** — accuracy of EPP against a *statistically tight* Monte Carlo
  reference (the modern bit-parallel estimator with a large vector budget),
  as ``100 * sum|epp - ref| / sum(ref)`` over the accuracy sample.
* **SPT** — wall time of the Monte Carlo signal-probability computation
  feeding the EPP engine (the separately-charged preprocessing).
* **ISP / ESP** — speedups including/excluding SPT, recomputed with the
  paper's own accounting: ``ESP = SimT/SysT`` and
  ``ISP = (SimT * k)/(SysT * k + SPT)`` where ``k`` is the number of
  default error sites in the circuit.

Roster-level parallelism: every row is measured independently (its own
circuit, its own seeded RNGs), so ``Table2Config(circuit_jobs=N)``
(``--circuit-jobs N`` on the CLI) fans whole circuits across a
``ProcessPoolExecutor`` — the roster-level analogue of the per-site
independence the sharded EPP backend exploits.  The pool reuses the
sharded driver's machinery (:func:`repro.core.epp_shard
.preferred_mp_context` and the pickle-once initializer pattern: the
config crosses the process boundary exactly once), and workers cache
built circuits by identity so a re-submitted roster job reuses the
cached :class:`~repro.netlist.circuit.CompiledCircuit` — and with it the
batch plan and cone index already cached on it — instead of re-planning.
Rows travel the executor's pickle channel (they are a few hundred bytes
of scalars; the shm transport stays reserved for array-bearing shard
results).  Timing columns are measured inside the workers, so rows are
identical in distribution to a serial run; the deterministic columns
(``n_nodes``, ``%Dif``, ``mean_abs_dif``) are identical full stop.

Substitution note: the circuits are profile-matched synthetic stand-ins
for the ISCAS'89 netlists (see DESIGN.md §4); ``s27`` uses the real
embedded netlist.  Both estimators and the EPP engine consume the same
signal-probability map, so the accuracy comparison isolates the
propagation method itself.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.baseline import (
    RandomSimulationEstimator,
    SerialRandomSimulationEstimator,
)
from repro.core.epp import EPPEngine
from repro.errors import ConfigError
from repro.experiments.profiles import PAPER_TABLE2, TABLE2_CIRCUITS
from repro.netlist.circuit import Circuit
from repro.netlist.generate import ISCAS89_PROFILES, generate_iscas
from repro.netlist.library import s27 as make_s27
from repro.probability.monte_carlo import monte_carlo_signal_probabilities

__all__ = ["Table2Config", "Table2Row", "run_table2", "run_table2_circuit"]


@dataclass(frozen=True)
class Table2Config:
    """Budget knobs for the Table 2 run.

    The defaults are the "quick" configuration: every circuit of the
    roster, a few minutes total.  ``full()`` returns the heavyweight
    configuration used for the committed EXPERIMENTS.md numbers.
    """

    circuits: tuple[str, ...] = tuple(TABLE2_CIRCUITS)
    #: vectors per site for the serial (timed) baseline
    sim_vectors: int = 1_000
    #: sites timed with the serial baseline (it is the expensive part)
    sim_sites: int = 3
    #: sites used for the accuracy (%Dif) comparison
    accuracy_sites: int = 60
    #: vectors for the Monte Carlo accuracy reference
    reference_vectors: int = 30_000
    #: vectors for the Monte Carlo SP computation (the SPT column)
    sp_vectors: int = 50_000
    #: sites timed with the EPP engine (per-node SysT average)
    epp_sites: int = 200
    seed: int = 2005
    #: EPP propagation backend for the SysT column: ``scalar`` preserves the
    #: paper's one-cone-per-site accounting (the reference oracle);
    #: ``vector`` times the batched NumPy backend, so SysT becomes the
    #: *amortized* per-node cost of a level-parallel sweep; ``sharded``
    #: fans that sweep out across ``jobs`` worker processes (the pool is
    #: warmed outside the timed region, so SysT stays an amortized
    #: steady-state per-node cost).
    backend: str = "scalar"
    #: worker processes for the sharded backend (None: one per core)
    jobs: int | None = None
    #: roster-level parallelism: fan whole circuits across this many
    #: worker processes (None/1: measure the roster serially).  Mutually
    #: exclusive with ``backend="sharded"`` — one level of process
    #: parallelism at a time, never nested pools.
    circuit_jobs: int | None = None
    #: cone-aware sparse sweep for the vector/sharded backends
    #: (None: enabled — the backends' own default)
    prune: bool | None = None
    #: chunk scheduling for the vector/sharded backends
    #: (None: auto — cone-cluster multi-chunk site lists)
    schedule: str | None = None

    def __post_init__(self) -> None:
        for name in ("sim_vectors", "sim_sites", "accuracy_sites",
                     "reference_vectors", "sp_vectors", "epp_sites"):
            if getattr(self, name) < 1:
                raise ConfigError(f"Table2Config.{name} must be >= 1")
        if self.backend not in ("scalar", "vector", "sharded"):
            raise ConfigError(
                f"Table2Config.backend must be 'scalar', 'vector' or "
                f"'sharded', got {self.backend!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"Table2Config.jobs must be >= 1, got {self.jobs}")
        if self.jobs is not None and self.backend != "sharded":
            raise ConfigError(
                "Table2Config.jobs applies to the 'sharded' backend only, "
                f"got backend={self.backend!r}"
            )
        if self.circuit_jobs is not None and self.circuit_jobs < 1:
            raise ConfigError(
                f"Table2Config.circuit_jobs must be >= 1, got {self.circuit_jobs}"
            )
        if self.circuit_jobs is not None and self.circuit_jobs > 1 \
                and self.backend == "sharded":
            raise ConfigError(
                "Table2Config.circuit_jobs cannot be combined with "
                "backend='sharded': roster workers would spawn nested "
                "process pools"
            )
        from repro.core.schedule import SCHEDULES

        if self.schedule is not None and self.schedule not in SCHEDULES:
            raise ConfigError(
                f"Table2Config.schedule must be one of {SCHEDULES}, "
                f"got {self.schedule!r}"
            )
        if self.backend == "scalar" and not (
            self.prune is None and self.schedule is None
        ):
            # Mirror the jobs-requires-sharded guard: the scalar column
            # ignores both knobs, and silently reporting scalar timings
            # under a "dense"/"clustered" label would mislead.
            raise ConfigError(
                "Table2Config.prune/schedule apply to the 'vector' and "
                "'sharded' backends only, got backend='scalar'"
            )
        unknown = [c for c in self.circuits if c not in ISCAS89_PROFILES]
        if unknown:
            raise ConfigError(f"unknown Table 2 circuits: {unknown}")

    def analysis_config(self):
        """The roster's EPP knobs as one
        :class:`~repro.core.config.AnalysisConfig` — the SysT column's
        backend construction goes through the same typed option layer as
        ``EPPEngine.analyze`` (``circuit_jobs`` stays here: roster-level
        fan-out is a harness concern, not an analysis knob)."""
        from repro.core.config import AnalysisConfig

        return AnalysisConfig(
            backend=self.backend,
            jobs=self.jobs,
            prune=self.prune,
            schedule=self.schedule,
        )

    @staticmethod
    def quick(circuits: Sequence[str] | None = None) -> "Table2Config":
        """Small circuits only by default — finishes in well under a minute."""
        roster = tuple(circuits) if circuits else ("s953", "s1196", "s1238", "s1488")
        return Table2Config(circuits=roster, sim_vectors=300, accuracy_sites=40,
                            reference_vectors=20_000, sp_vectors=20_000, epp_sites=120)

    @staticmethod
    def full() -> "Table2Config":
        return Table2Config(sim_vectors=2_000, sim_sites=3, accuracy_sites=100,
                            reference_vectors=60_000, sp_vectors=100_000, epp_sites=300)


#: Vector budget the extrapolated columns are normalized to.  Serial
#: simulation cost is exactly linear in the vector count, and the paper's
#: SimT magnitudes imply a budget of this order on 2005 hardware.
REFERENCE_VECTORS = 100_000


@dataclass
class Table2Row:
    """Measured row, with the paper's published row alongside.

    ``simt_ref_s`` / ``isp_ref`` / ``esp_ref`` restate the baseline columns
    extrapolated (exactly linearly) to :data:`REFERENCE_VECTORS` vectors per
    site, so speedups can be compared against the paper at a comparable
    simulation budget; ``sim_vectors`` records the measured budget.
    """

    circuit: str
    n_nodes: int
    syst_ms: float
    simt_s: float
    pct_dif: float
    spt_s: float
    isp: float
    esp: float
    n_accuracy_sites: int = 0
    mean_abs_dif: float = 0.0
    sim_vectors: int = 0
    simt_ref_s: float = 0.0
    isp_ref: float = 0.0
    esp_ref: float = 0.0

    @property
    def paper(self):
        return PAPER_TABLE2.get(self.circuit)

    @staticmethod
    def header() -> str:
        return (
            f"{'Circuit':<9} {'SysT(ms)':>9} {'SimT(s)':>9} {'%Dif':>6} "
            f"{'SPT(s)':>8} {'ISP':>9} {'ESP':>10}   "
            f"{'paper:%Dif':>10} {'ISP':>8} {'ESP':>8}"
        )

    def format_row(self) -> str:
        paper = self.paper
        paper_part = (
            f"{paper.pct_dif:>10.1f} {paper.isp:>8.1f} {paper.esp:>8.0f}"
            if paper
            else f"{'-':>10} {'-':>8} {'-':>8}"
        )
        return (
            f"{self.circuit:<9} {self.syst_ms:>9.3f} {self.simt_s:>9.3f} "
            f"{self.pct_dif:>6.1f} {self.spt_s:>8.2f} {self.isp:>9.1f} "
            f"{self.esp:>10.0f}   {paper_part}"
        )


def _build_circuit(name: str) -> Circuit:
    if name == "s27":
        return make_s27()
    return generate_iscas(name)


# ------------------------------------------------------------- roster pool

#: Per-worker state of the roster pool: the once-unpickled config (the
#: initializer pattern of :mod:`repro.core.epp_shard` — the parent pickles
#: it exactly once, every task ships only a circuit name) and a circuit
#: cache keyed by circuit identity, so a re-submitted roster job reuses
#: the already-compiled circuit — and with it the batch plan / cone index
#: cached on its ``CompiledCircuit`` — instead of rebuilding and
#: re-planning.  ``circuits_built`` counts cache misses (the roster
#: analogue of the shard workers' ``plans_built``).
_ROSTER_CONFIG: "Table2Config | None" = None
_ROSTER_CIRCUITS: dict[str, Circuit] = {}
_ROSTER_STATS = {"circuits_built": 0}


def _roster_worker_init(payload: bytes) -> None:
    """Executor initializer: unpickle the roster config once per worker."""
    import pickle

    global _ROSTER_CONFIG
    _ROSTER_CONFIG = pickle.loads(payload)


def _roster_circuit(name: str) -> Circuit:
    """This worker's circuit for ``name``, built (and planned) at most once."""
    circuit = _ROSTER_CIRCUITS.get(name)
    if circuit is None:
        circuit = _build_circuit(name)
        _ROSTER_CIRCUITS[name] = circuit
        _ROSTER_STATS["circuits_built"] += 1
    return circuit


def _run_roster_job(name: str) -> Table2Row:
    """One roster task: measure a whole circuit's row inside a worker."""
    return run_table2_circuit(name, _ROSTER_CONFIG, circuit=_roster_circuit(name))


def run_table2_circuit(
    name: str, config: Table2Config, circuit: Circuit | None = None
) -> Table2Row:
    """Measure one Table 2 row (``circuit`` lets callers reuse a built one)."""
    if circuit is None:
        circuit = _build_circuit(name)

    # ---- SPT: Monte Carlo signal probabilities (charged separately) ----
    t0 = time.perf_counter()
    sp = monte_carlo_signal_probabilities(
        circuit, n_vectors=config.sp_vectors, seed=config.seed
    )
    spt_s = time.perf_counter() - t0

    state_weights = {ff: sp[ff] for ff in circuit.flip_flops}
    engine = EPPEngine(circuit, signal_probs=sp)
    sites_all = engine.default_sites()
    k = len(sites_all)

    # ---- SysT: per-node EPP time ----
    import random as _random

    rng = _random.Random(config.seed)
    epp_sites = (
        rng.sample(sites_all, config.epp_sites)
        if config.epp_sites < k
        else list(sites_all)
    )
    if config.backend in ("vector", "sharded"):
        # Amortized per-node cost of the batched level-parallel sweep,
        # through p_sensitized_many — the exact vector twin of the scalar
        # p_sensitized fast path below (no per-sink dict assembly in
        # either column, and no small-workload crossover guard), so the
        # two backends' SysT numbers measure the same quantity.  The
        # sharded variant fans the same sweep across worker processes;
        # its pool is warmed first so SysT reports the steady-state
        # amortized cost, not a one-off process spin-up.
        site_ids = [engine.compiled.index[site] for site in epp_sites]
        analysis_config = config.analysis_config()
        if config.backend == "sharded":
            # The caller asked for sharded explicitly, so bypass the
            # crossover guard — the site *sample* sits below the threshold
            # for most roster circuits, and routing it in-process would
            # silently report vector timings under a sharded label.  The
            # pool is warmed first (workers forked and initialized) so the
            # timed block below measures steady-state sweeps.
            backend = engine.sharded_backend(config=analysis_config)
            backend.min_process_work = 0
            backend.warm()
            cleanup = backend.close
        else:
            backend = engine.vector_backend(config=analysis_config)
            # Bypass the small-workload crossover: the site *sample* can
            # sit below min_vector_work on small rosters, and delegating
            # to the scalar kernel would silently report scalar timings
            # under the vector label (defeating the column's purpose and
            # the no-per-sink-dicts accounting promised above).
            backend.min_vector_work = 0
            cleanup = None
        try:
            t0 = time.perf_counter()
            backend.p_sensitized_many(site_ids)
            syst_ms = (time.perf_counter() - t0) / len(epp_sites) * 1e3
        finally:
            if cleanup is not None:
                cleanup()
    else:
        t0 = time.perf_counter()
        for site in epp_sites:
            engine.p_sensitized(site)
        syst_ms = (time.perf_counter() - t0) / len(epp_sites) * 1e3

    # ---- %Dif: EPP vs tight Monte Carlo reference ----
    accuracy_sites = (
        rng.sample(sites_all, config.accuracy_sites)
        if config.accuracy_sites < k
        else list(sites_all)
    )
    reference = RandomSimulationEstimator(
        circuit,
        n_vectors=config.reference_vectors,
        seed=config.seed + 1,
        state_weights=state_weights,
    )
    ref_values = reference.estimate(accuracy_sites)
    abs_err_sum = 0.0
    ref_sum = 0.0
    for site in accuracy_sites:
        epp_value = engine.p_sensitized(site)
        abs_err_sum += abs(epp_value - ref_values[site])
        ref_sum += ref_values[site]
    pct_dif = 100.0 * abs_err_sum / ref_sum if ref_sum > 0 else 0.0

    # ---- SimT: serial 2005-style baseline timing ----
    sim_sites = accuracy_sites[: config.sim_sites]
    serial = SerialRandomSimulationEstimator(
        circuit,
        n_vectors=config.sim_vectors,
        seed=config.seed + 2,
        state_weights=state_weights,
    )
    t0 = time.perf_counter()
    serial.estimate(sim_sites)
    simt_s = (time.perf_counter() - t0) / len(sim_sites)

    # ---- speedups, paper accounting ----
    syst_s = syst_ms / 1e3
    esp = simt_s / syst_s if syst_s > 0 else float("inf")
    isp = (simt_s * k) / (syst_s * k + spt_s) if k else 0.0
    scale = REFERENCE_VECTORS / config.sim_vectors
    simt_ref = simt_s * scale
    esp_ref = simt_ref / syst_s if syst_s > 0 else float("inf")
    isp_ref = (simt_ref * k) / (syst_s * k + spt_s) if k else 0.0

    return Table2Row(
        circuit=name,
        n_nodes=k,
        syst_ms=syst_ms,
        simt_s=simt_s,
        pct_dif=pct_dif,
        spt_s=spt_s,
        isp=isp,
        esp=esp,
        n_accuracy_sites=len(accuracy_sites),
        mean_abs_dif=abs_err_sum / len(accuracy_sites),
        sim_vectors=config.sim_vectors,
        simt_ref_s=simt_ref,
        isp_ref=isp_ref,
        esp_ref=esp_ref,
    )


def _run_table2_parallel(config: Table2Config, verbose: bool) -> list[Table2Row]:
    """The roster fanned across a worker pool, rows back in roster order."""
    import pickle
    from concurrent.futures import ProcessPoolExecutor

    from repro.core.epp_shard import preferred_mp_context

    jobs = min(config.circuit_jobs, len(config.circuits))
    payload = pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)
    if verbose:
        print(
            f"[table2] fanning {len(config.circuits)} circuits across "
            f"{jobs} workers ...",
            flush=True,
        )
    with ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=preferred_mp_context(),
        initializer=_roster_worker_init,
        initargs=(payload,),
    ) as pool:
        futures = [pool.submit(_run_roster_job, name) for name in config.circuits]
        rows = []
        for future in futures:  # roster order, regardless of completion order
            rows.append(future.result())
            if verbose:
                print("  " + rows[-1].format_row(), flush=True)
    return rows


def run_table2(config: Table2Config | None = None, verbose: bool = False) -> list[Table2Row]:
    """Measure all configured rows (in the paper's circuit order).

    ``config.circuit_jobs > 1`` runs the roster through the worker pool
    of :func:`_run_table2_parallel` — every row is an independent
    measurement (own circuit, own seeded RNGs), so fanning circuits out
    changes wall-clock, never results' distribution; the deterministic
    columns are bit-identical to a serial run.
    """
    config = config if config is not None else Table2Config()
    if config.circuit_jobs is not None and config.circuit_jobs > 1 \
            and len(config.circuits) > 1:
        return _run_table2_parallel(config, verbose)
    rows: list[Table2Row] = []
    for name in config.circuits:
        if verbose:
            print(f"[table2] {name} ...", flush=True)
        rows.append(run_table2_circuit(name, config))
        if verbose:
            print("  " + rows[-1].format_row(), flush=True)
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """ASCII rendering with paper reference columns and averages."""
    lines = [Table2Row.header()]
    lines += [row.format_row() for row in rows]
    if rows:
        n = len(rows)
        avg = (
            f"{'average':<9} {sum(r.syst_ms for r in rows)/n:>9.3f} "
            f"{sum(r.simt_s for r in rows)/n:>9.3f} "
            f"{sum(r.pct_dif for r in rows)/n:>6.1f} "
            f"{sum(r.spt_s for r in rows)/n:>8.2f} "
            f"{sum(r.isp for r in rows)/n:>9.1f} "
            f"{sum(r.esp for r in rows)/n:>10.0f}"
        )
        lines.append(avg)
        lines.append(
            "paper avg: SysT=3.243ms SimT=325.0s %Dif=5.4 SPT=110.7s* "
            "ISP=549.1 ESP=93072   (*paper column prints 110.7; "
            "the per-row mean of its SPT values is ~4212s)"
        )
        lines.append("")
        lines.append(
            f"extrapolated to {REFERENCE_VECTORS} vectors/site "
            f"(measured budget: {rows[0].sim_vectors}; serial cost is linear in vectors):"
        )
        lines.append(
            f"{'Circuit':<9} {'SimT_ref(s)':>12} {'ISP_ref':>10} {'ESP_ref':>12}"
        )
        for row in rows:
            lines.append(
                f"{row.circuit:<9} {row.simt_ref_s:>12.1f} {row.isp_ref:>10.1f} "
                f"{row.esp_ref:>12.0f}"
            )
    return "\n".join(lines)
