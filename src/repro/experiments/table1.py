"""Table 1 regeneration: EPP rules for elementary gates.

The paper's Table 1 states the closed-form rules for AND, OR and NOT.
This harness *verifies* the implementation two ways:

1. symbolically against the published formulas on a grid of four-valued
   input vectors (the closed forms in :mod:`repro.core.rules` are the
   formulas, so this guards against regressions), and
2. semantically against the generic truth-table rule, which enumerates the
   D-calculus states exhaustively — for **all** supported gate types, not
   just the three published rows.

The result doubles as a human-readable table of the rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.rules import (
    Prob4,
    and_rule,
    buf_rule,
    nand_rule,
    nor_rule,
    not_rule,
    or_rule,
    truth_table_rule,
    xnor_rule,
    xor_rule,
)
from repro.netlist.gate_types import GateType, truth_table

__all__ = ["Table1Result", "run_table1", "grid_prob4"]

_CLOSED_FORMS = {
    GateType.AND: and_rule,
    GateType.OR: or_rule,
    GateType.NOT: not_rule,
    GateType.NAND: nand_rule,
    GateType.NOR: nor_rule,
    GateType.BUF: buf_rule,
    GateType.XOR: xor_rule,
    GateType.XNOR: xnor_rule,
}

_RULE_TEXT = {
    GateType.AND: [
        "P1(out) = prod P1(Xi)",
        "Pa(out) = prod [P1(Xi)+Pa(Xi)] - P1(out)",
        "Pā(out) = prod [P1(Xi)+Pā(Xi)] - P1(out)",
        "P0(out) = 1 - [P1+Pa+Pā]",
    ],
    GateType.OR: [
        "P0(out) = prod P0(Xi)",
        "Pa(out) = prod [P0(Xi)+Pa(Xi)] - P0(out)",
        "Pā(out) = prod [P0(Xi)+Pā(Xi)] - P0(out)",
        "P1(out) = 1 - [P0+Pa+Pā]",
    ],
    GateType.NOT: [
        "P1(out) = P0(in), Pa(out) = Pā(in)",
        "Pā(out) = Pa(in), P0(out) = P1(in)",
    ],
}


def grid_prob4(steps: int = 4) -> list[Prob4]:
    """A simplex grid of valid four-valued vectors (components sum to 1)."""
    points: list[Prob4] = []
    for ia, ib, ic in itertools.product(range(steps + 1), repeat=3):
        if ia + ib + ic > steps:
            continue
        pa = ia / steps
        pa_bar = ib / steps
        p0 = ic / steps
        p1 = 1.0 - pa - pa_bar - p0
        points.append((pa, pa_bar, p0, round(p1, 12)))
    return points


@dataclass
class Table1Result:
    """Verification outcome per gate type."""

    max_error: dict[str, float] = field(default_factory=dict)
    n_cases: dict[str, int] = field(default_factory=dict)

    @property
    def all_match(self) -> bool:
        return all(err < 1e-9 for err in self.max_error.values())

    def format(self) -> str:
        lines = ["Table 1 — EPP calculation rules for elementary gates", ""]
        for gate_type, text in _RULE_TEXT.items():
            lines.append(f"  {gate_type.value}:")
            lines += [f"    {row}" for row in text]
        lines += ["", "verification (closed form vs exhaustive state enumeration):"]
        for name in self.max_error:
            lines.append(
                f"  {name:<5} cases={self.n_cases[name]:>6} "
                f"max|err|={self.max_error[name]:.2e}"
            )
        lines.append(f"status: {'ALL RULES MATCH' if self.all_match else 'MISMATCH'}")
        return "\n".join(lines)


def run_table1(steps: int = 3, arities: tuple[int, ...] = (1, 2, 3)) -> Table1Result:
    """Check every closed-form rule against the generic rule on a grid.

    ``steps`` controls grid resolution; arity-1 checks NOT/BUF, the others
    check the multi-input gates (cost grows as ``grid**arity``).
    """
    grid = grid_prob4(steps)
    result = Table1Result()
    for gate_type, closed in _CLOSED_FORMS.items():
        lo, hi = gate_type.arity_range()
        gate_arities = [a for a in arities if a >= lo and (hi is None or a <= hi)]
        worst = 0.0
        cases = 0
        for arity in gate_arities:
            table = truth_table(gate_type, arity)
            for combo in itertools.product(grid, repeat=arity):
                expected = truth_table_rule(table, combo)
                got = closed(combo)
                worst = max(
                    worst, max(abs(e - g) for e, g in zip(expected, got))
                )
                cases += 1
        result.max_error[gate_type.value] = worst
        result.n_cases[gate_type.value] = cases
    return result
