"""Figure 1 regeneration: the paper's worked EPP example.

Reconstructs the reconvergent example circuit, runs the EPP engine for an
SEU at gate A, and checks every intermediate and final value the paper
prints in Section 2:

* ``P(E) = 1(ā)``
* ``P(D) = 0.2(a) + 0.8(0)``
* ``P(G) = 0.7(ā) + 0.3(0)``
* ``P(H) = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)``
* ``P_sensitized(A) = Pa(H) + Pā(H) = 0.434``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.epp import EPPEngine
from repro.core.fourvalue import EPPValue
from repro.netlist.library import (
    FIGURE1_EXPECTED,
    FIGURE1_SIGNAL_PROBS,
    figure1_circuit,
)
from repro.probability import signal_probabilities

__all__ = ["Figure1Result", "run_figure1"]


@dataclass
class Figure1Result:
    """Computed vs expected values for the Figure 1 example."""

    values: dict[str, EPPValue] = field(default_factory=dict)
    p_sensitized: float = 0.0
    max_abs_error: float = 0.0

    @property
    def matches_paper(self) -> bool:
        return self.max_abs_error < 1e-12

    def format(self) -> str:
        lines = [
            "Figure 1 worked example (SEU at gate A; SP_B=0.2, SP_C=0.3, SP_F=0.7)",
            "",
        ]
        for name in ("E", "D", "G", "H"):
            lines.append(f"  P({name}) = {self.values[name]}")
        lines += [
            "",
            f"  P_sensitized(A) = Pa(H) + Pā(H) = {self.p_sensitized:.3f}",
            f"  paper:  P(H) = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)",
            f"  max |computed - paper| = {self.max_abs_error:.3e}"
            + ("  [MATCH]" if self.matches_paper else "  [MISMATCH]"),
        ]
        return "\n".join(lines)


def run_figure1() -> Figure1Result:
    """Regenerate the Figure 1 numbers with the real engine (no shortcuts)."""
    circuit = figure1_circuit()
    sp = signal_probabilities(
        circuit, input_probs={**FIGURE1_SIGNAL_PROBS, "A": 0.5}
    )
    engine = EPPEngine(circuit, signal_probs=sp)
    analysis = engine.node_epp("A")

    # Pull the intermediate on-path vectors out of the engine's last pass.
    result = Figure1Result()
    compiled = engine.compiled
    engine._propagate(compiled.index["A"], engine.cone("A"))
    for name in ("E", "D", "G", "H"):
        node_id = compiled.index[name]
        result.values[name] = EPPValue.clamped(
            engine._pa[node_id],
            engine._pa_bar[node_id],
            engine._p0[node_id],
            engine._p1[node_id],
        )
    result.p_sensitized = analysis.p_sensitized

    h = result.values["H"]
    result.max_abs_error = max(
        abs(h.pa - FIGURE1_EXPECTED["pa"]),
        abs(h.pa_bar - FIGURE1_EXPECTED["pa_bar"]),
        abs(h.p0 - FIGURE1_EXPECTED["p0"]),
        abs(h.p1 - FIGURE1_EXPECTED["p1"]),
        abs(result.p_sensitized - FIGURE1_EXPECTED["p_sensitized"]),
    )
    return result
