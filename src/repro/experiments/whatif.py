"""What-if demonstration: incremental re-analysis vs full re-analysis.

The design-loop workload the incremental layer (:mod:`repro.core.epp_delta`)
exists for: take a circuit, apply a local edit, and compare

* a **full** re-analysis of the edited circuit (``engine.snapshot``), and
* the **incremental** path (``analyze_delta``), which re-sweeps only the
  sites the edit can reach and splices everything else from the previous
  packed arrays

checking along the way that the two are bit-identical (``np.array_equal``
on every packed array — the tentpole invariant) and reporting the dirty /
reused split plus the wall-clock speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.core.epp import EPPEngine
from repro.core.epp_delta import EditSet
from repro.netlist.circuit import Circuit

__all__ = [
    "WhatIfResult",
    "run_whatif",
    "single_gate_edit",
    "representative_edit",
]


@dataclass(frozen=True)
class WhatIfResult:
    """Timings and verification of one incremental-vs-full comparison."""

    circuit_name: str
    n_sites: int
    dirty_sites: int
    reused_sites: int
    full_s: float
    delta_s: float
    identical: bool

    @property
    def speedup(self) -> float:
        return self.full_s / self.delta_s if self.delta_s > 0.0 else float("inf")

    def format(self) -> str:
        return (
            f"what-if on {self.circuit_name}: re-swept "
            f"{self.dirty_sites}/{self.n_sites} sites "
            f"(reused {self.reused_sites}); full {self.full_s * 1e3:.1f} ms, "
            f"delta {self.delta_s * 1e3:.1f} ms "
            f"({self.speedup:.1f}x), bit-identical: {self.identical}"
        )


def single_gate_edit(circuit: Circuit, gate: str | None = None) -> EditSet:
    """A canonical single-gate edit: swap one AND<->NAND (or OR<->NOR).

    Inverting one gate's polarity changes its cone's propagation without
    touching the netlist shape — the smallest "real" what-if edit.  With
    ``gate=None`` the first swappable gate (declaration order) is used.
    """
    from repro.netlist.gate_types import GateType

    swaps = {
        GateType.AND: "nand", GateType.NAND: "and",
        GateType.OR: "nor", GateType.NOR: "or",
    }
    candidates = [gate] if gate is not None else circuit.gates
    for name in candidates:
        replacement = swaps.get(circuit.node(name).gate_type)
        if replacement is not None:
            return EditSet().replace_gate(name, replacement)
    raise AnalysisError(
        f"no AND/NAND/OR/NOR gate to swap in circuit {circuit.name!r}"
    )


def representative_edit(prev, max_probes: int = 12) -> tuple[EditSet, dict]:
    """A single-gate edit with a *local* (small but non-empty) dirty set.

    An arbitrary gate is a bad demo: a gate near the primary inputs
    reaches almost every site and the "incremental" run degenerates to a
    full one.  This probes up to ``max_probes`` evenly spaced swappable
    gates with :func:`~repro.core.epp_delta.edit_impact` (dirty-set
    accounting only — no sweeping) and returns the edit with the
    smallest non-zero dirty count, plus its impact dict.  Deterministic
    given the circuit.
    """
    from repro.core.epp_delta import edit_impact
    from repro.netlist.gate_types import GateType

    circuit = prev.engine.circuit
    swappable = [
        name for name in circuit.gates
        if circuit.node(name).gate_type
        in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)
    ]
    if not swappable:
        raise AnalysisError(
            f"no AND/NAND/OR/NOR gate to swap in circuit {circuit.name!r}"
        )
    stride = max(1, len(swappable) // max_probes)
    best: tuple[EditSet, dict] | None = None
    for name in swappable[::stride][:max_probes]:
        edits = single_gate_edit(circuit, name)
        impact = edit_impact(prev, edits)
        if impact["dirty"] == 0:
            continue
        if best is None or impact["dirty"] < best[1]["dirty"]:
            best = (edits, impact)
    if best is None:  # every probe was dead logic; fall back to the first
        edits = single_gate_edit(circuit, swappable[0])
        return edits, edit_impact(prev, edits)
    return best


def run_whatif(
    circuit: Circuit,
    edits: EditSet | None = None,
    sites=None,
    **knobs,
) -> WhatIfResult:
    """Run one incremental-vs-full comparison on ``circuit``.

    ``edits`` defaults to :func:`single_gate_edit`.  Both paths run the
    same backend knobs; the full path is timed on the *edited* circuit's
    own engine (warm caches for both sides — the comparison is sweeps,
    not setup).
    """
    import numpy as np

    engine = EPPEngine(circuit)
    prev = engine.snapshot(sites=sites, **knobs)
    if edits is None:
        edits, _ = representative_edit(prev)

    start = time.perf_counter()
    delta = engine.analyze_delta(prev, edits)
    delta_s = time.perf_counter() - start

    start = time.perf_counter()
    full = delta.engine.snapshot(
        sites=None if delta.default_sites else delta.site_names,
        **delta.knobs,
    )
    full_s = time.perf_counter() - start

    identical = delta.site_names == full.site_names and all(
        np.array_equal(left, right)
        for left, right in zip(delta.packed, full.packed)
    )
    return WhatIfResult(
        circuit_name=circuit.name,
        n_sites=delta.stats["sites"],
        dirty_sites=delta.stats["dirty"],
        reused_sites=delta.stats["reused"],
        full_s=full_s,
        delta_s=delta_s,
        identical=identical,
    )
