"""Table 2 circuit roster and the paper's published reference numbers.

``PAPER_TABLE2`` transcribes the paper's Table 2 verbatim so reports can
print paper-vs-measured side by side.  Column meanings (per the paper):

* ``syst_ms`` — EPP ("our approach") run time per node, milliseconds;
* ``simt_s`` — random-simulation run time per node, seconds;
* ``pct_dif`` — difference between the two estimates, percent;
* ``spt_s``  — signal-probability computation time, seconds;
* ``isp`` / ``esp`` — speedup including / excluding SP time.

The published per-node times satisfy
``ESP = SimT / SysT`` and ``ISP = (SimT * k) / (SysT * k + SPT)`` with
``k`` the circuit's node count — which the harness uses to recompute the
same ratios from its own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperTable2Row", "PAPER_TABLE2", "TABLE2_CIRCUITS"]


@dataclass(frozen=True)
class PaperTable2Row:
    """One row of the paper's Table 2 (verbatim transcription)."""

    circuit: str
    syst_ms: float
    simt_s: float
    pct_dif: float
    spt_s: float
    isp: float
    esp: float


PAPER_TABLE2: dict[str, PaperTable2Row] = {
    row.circuit: row
    for row in [
        PaperTable2Row("s953", 0.354, 28.3, 4.3, 150, 74.4, 79950),
        PaperTable2Row("s1196", 0.750, 54.6, 3.6, 313, 92.2, 72800),
        PaperTable2Row("s1238", 0.532, 36.9, 3.4, 207, 90.3, 69510),
        PaperTable2Row("s1423", 2.230, 53.1, 3.9, 250, 138.5, 23810),
        PaperTable2Row("s1488", 0.425, 7.3, 4.4, 14, 316.3, 17220),
        PaperTable2Row("s1494", 0.704, 10.8, 4.4, 22, 303.7, 15480),
        PaperTable2Row("s9234", 9.368, 817.2, 11.3, 4659, 970.8, 87230),
        PaperTable2Row("s15850", 34.18, 972.1, 12.6, 5270, 1695, 28440),
        PaperTable2Row("s35932", 7.020, 1904, 4.5, 9648, 3133, 271240),
        PaperTable2Row("s38584", 13.860, 2317, 7.1, 12833, 3405, 167180),
        PaperTable2Row("s38417", 14.180, 2412, 6.0, 12951, 3480, 170126),
    ]
}

#: The circuits of Table 2, in the paper's order.
TABLE2_CIRCUITS: list[str] = list(PAPER_TABLE2)
