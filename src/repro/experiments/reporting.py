"""Report emitters shared by the experiment harnesses and the CLI."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping, Sequence
from dataclasses import asdict, is_dataclass

__all__ = ["rows_to_csv", "rows_to_json", "format_columns"]


def _as_dict(row) -> dict:
    if is_dataclass(row) and not isinstance(row, type):
        return asdict(row)
    if isinstance(row, Mapping):
        return dict(row)
    raise TypeError(f"cannot serialize row of type {type(row).__name__}")


def rows_to_csv(rows: Sequence, path: str | None = None) -> str:
    """Serialize dataclass/mapping rows to CSV text (optionally to a file)."""
    dicts = [_as_dict(row) for row in rows]
    buffer = io.StringIO()
    if dicts:
        writer = csv.DictWriter(buffer, fieldnames=list(dicts[0]))
        writer.writeheader()
        writer.writerows(dicts)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    return text


def rows_to_json(rows: Sequence, path: str | None = None) -> str:
    """Serialize dataclass/mapping rows to a JSON array (optionally to a file)."""
    text = json.dumps([_as_dict(row) for row in rows], indent=2, default=str)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def format_columns(
    header: Sequence[str], rows: Sequence[Sequence], min_width: int = 6
) -> str:
    """Simple aligned-column ASCII table."""
    table = [list(map(str, header))] + [list(map(str, row)) for row in rows]
    widths = [
        max(min_width, max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = []
    for row_number, row in enumerate(table):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if row_number == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)
