"""Runnable ablation suite — regenerates the EXPERIMENTS.md ablation tables.

Four studies, each isolating one design decision of the reproduction:

* ``polarity``  — the a/ā split on reconvergent circuits (accuracy).
* ``baseline``  — 2005 serial vs modern bit-parallel fault simulation
  (runtime; how much of the paper's speedup is baseline implementation).
* ``sp``        — signal-probability backend accuracy/runtime trade.
* ``cop``       — COP one-pass observability vs per-site EPP.

Each study returns structured rows and a formatted table; the CLI command
``python -m repro ablations`` prints all four.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.baseline import (
    RandomSimulationEstimator,
    SerialRandomSimulationEstimator,
)
from repro.core.epp import EPPEngine
from repro.netlist.generate import random_combinational
from repro.probability import signal_probabilities
from repro.probability.cop import cop_observability
from repro.probability.exact import exact_signal_probabilities
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words

__all__ = ["AblationReport", "run_ablations"]


@dataclass
class AblationReport:
    """All four studies' rows: ``{study: [(label, metrics dict), ...]}``."""

    studies: dict[str, list[tuple[str, dict[str, float]]]] = field(default_factory=dict)

    def format(self) -> str:
        lines = []
        for study, rows in self.studies.items():
            lines.append(f"== ablation: {study} ==")
            for label, metrics in rows:
                rendered = "  ".join(f"{k}={v:.4g}" for k, v in metrics.items())
                lines.append(f"  {label:<24} {rendered}")
            lines.append("")
        return "\n".join(lines)


def _ground_truth(circuit):
    injector = FaultInjector(circuit)
    words, width = exhaustive_words(circuit.inputs)
    good = injector.simulator.run(words, width)
    return {
        site: injector.detection_count(good, site, width) / width
        for site in circuit.gates
    }


def _pct_dif(values, truth):
    abs_sum = sum(abs(values[s] - t) for s, t in truth.items())
    return 100.0 * abs_sum / max(1e-12, sum(truth.values()))


def run_ablations(seed: int = 0, quick: bool = True) -> AblationReport:
    """Run all four ablation studies (deterministic given ``seed``)."""
    report = AblationReport()
    n_circuits = 2 if quick else 5
    circuits = [
        random_combinational(8, 60, seed=seed + k) for k in range(n_circuits)
    ]
    truths = [_ground_truth(c) for c in circuits]

    # -- polarity ---------------------------------------------------------
    rows = []
    for label, track in (("tracked (paper)", True), ("polarity-blind", False)):
        t0 = time.perf_counter()
        total_dif = 0.0
        for circuit, truth in zip(circuits, truths):
            engine = EPPEngine(circuit, track_polarity=track)
            values = {s: engine.p_sensitized(s) for s in circuit.gates}
            total_dif += _pct_dif(values, truth)
        rows.append(
            (label, {
                "pct_dif": total_dif / len(circuits),
                "time_ms": (time.perf_counter() - t0) * 1e3,
            })
        )
    report.studies["polarity"] = rows

    # -- baseline implementation -------------------------------------------
    circuit = circuits[0]
    sites = circuit.gates[:5]
    vectors = 200 if quick else 1000
    rows = []
    serial = SerialRandomSimulationEstimator(circuit, n_vectors=vectors, seed=seed)
    t0 = time.perf_counter()
    serial.estimate(sites)
    rows.append(("serial (2005-style)", {"time_ms": (time.perf_counter() - t0) * 1e3}))
    fast = RandomSimulationEstimator(circuit, n_vectors=vectors, seed=seed)
    t0 = time.perf_counter()
    fast.estimate(sites)
    rows.append(("bit-parallel + cone", {"time_ms": (time.perf_counter() - t0) * 1e3}))
    engine = EPPEngine(circuit)
    t0 = time.perf_counter()
    for site in sites:
        engine.p_sensitized(site)
    rows.append(("EPP (paper)", {"time_ms": (time.perf_counter() - t0) * 1e3}))
    report.studies["baseline"] = rows

    # -- SP backend ---------------------------------------------------------
    circuit = random_combinational(10, 150, seed=seed + 42)
    exact = exact_signal_probabilities(circuit)
    rows = []
    for method, options in (
        ("topological", {}),
        ("cut", {"cut_depth": 4}),
        ("monte_carlo", {"n_vectors": 20_000}),
        ("exact", {}),
    ):
        t0 = time.perf_counter()
        sp = signal_probabilities(circuit, method, **options)
        elapsed = (time.perf_counter() - t0) * 1e3
        error = sum(abs(sp[n] - exact[n]) for n in exact) / len(exact)
        rows.append((method, {"time_ms": elapsed, "mean_abs_err": error}))
    report.studies["sp"] = rows

    # -- COP vs EPP ----------------------------------------------------------
    circuit = circuits[0]
    truth = truths[0]
    rows = []
    t0 = time.perf_counter()
    cop = cop_observability(circuit)
    rows.append(
        ("COP (all nodes, 1 pass)", {
            "time_ms": (time.perf_counter() - t0) * 1e3,
            "pct_dif": _pct_dif({s: cop[s] for s in circuit.gates}, truth),
        })
    )
    engine = EPPEngine(circuit)
    t0 = time.perf_counter()
    epp_values = {s: engine.p_sensitized(s) for s in circuit.gates}
    rows.append(
        ("EPP (per node)", {
            "time_ms": (time.perf_counter() - t0) * 1e3,
            "pct_dif": _pct_dif(epp_values, truth),
        })
    )
    report.studies["cop"] = rows
    return report
