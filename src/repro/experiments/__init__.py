"""Regeneration harnesses for every figure and table in the paper.

* :mod:`repro.experiments.figure1` — the Figure 1 worked example.
* :mod:`repro.experiments.table1`  — Table 1 rule verification.
* :mod:`repro.experiments.table2`  — the Table 2 benchmark comparison.
* :mod:`repro.experiments.profiles` — the Table 2 circuit roster and the
  paper's published reference numbers.
* :mod:`repro.experiments.reporting` — ASCII/CSV/JSON emitters.

Each harness is importable (returns structured results for tests and
benchmarks) and runnable through the CLI (``python -m repro table2``).
"""

from repro.experiments.figure1 import run_figure1, Figure1Result
from repro.experiments.table1 import run_table1, Table1Result
from repro.experiments.table2 import run_table2, Table2Config, Table2Row
from repro.experiments.profiles import TABLE2_CIRCUITS, PAPER_TABLE2

__all__ = [
    "run_figure1",
    "Figure1Result",
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Config",
    "Table2Row",
    "TABLE2_CIRCUITS",
    "PAPER_TABLE2",
]
