"""Command-line interface: ``python -m repro <command>`` or ``repro-ser``.

Commands
--------
* ``figure1`` — regenerate the paper's Figure 1 worked example.
* ``table1``  — verify/print the paper's Table 1 propagation rules.
* ``table2``  — regenerate the paper's Table 2 comparison.
* ``analyze`` — SER-analyze a circuit (``.bench`` file, library name, or
  ISCAS'89 profile name) and print the vulnerability ranking.
* ``analyze-delta`` — apply what-if edits (harden/TMR/rewire/SP changes)
  and re-analyze incrementally, re-sweeping only affected sites.
* ``harden`` — greedy selective-hardening loop under an area budget,
  driven by the incremental analyzer.
* ``serve`` — run the long-lived analysis service on a unix socket
  (admission control, request deadlines, artifact cache, degradation).
* ``stats``   — print circuit statistics.
* ``generate`` — emit a synthetic ISCAS'89-profile circuit as ``.bench``.
* ``list``    — list embedded circuits and known profiles.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.netlist.bench import parse_bench_file, write_bench
from repro.netlist.circuit import Circuit
from repro.netlist.generate import (
    ISCAS85_PROFILES,
    ISCAS89_PROFILES,
    generate_iscas,
)
from repro.netlist.library import get_circuit, list_circuits
from repro.netlist.stats import circuit_stats
from repro.netlist.verilog import parse_verilog_file

__all__ = ["main", "build_parser", "resolve_circuit"]


def resolve_circuit(spec: str) -> Circuit:
    """Interpret a circuit argument: file path, library name, or profile name.

    Files ending in ``.v`` parse as structural Verilog, everything else
    file-like as ISCAS ``.bench``.
    """
    path = Path(spec)
    if path.suffix == ".v":
        return parse_verilog_file(path)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    if spec in list_circuits():
        return get_circuit(spec)
    if spec in ISCAS89_PROFILES or spec in ISCAS85_PROFILES:
        return generate_iscas(spec)
    raise ReproError(
        f"cannot resolve circuit {spec!r}: not a file, not one of the library "
        f"circuits ({', '.join(list_circuits())}), and not an ISCAS profile"
    )


def _add_delta_knob_args(parser: argparse.ArgumentParser) -> None:
    """Analysis knobs shared by the incremental subcommands."""
    parser.add_argument(
        "--backend",
        choices=("auto", "vector", "sharded"),
        default="auto",
        help="EPP backend for the packed sweeps (no scalar: the "
        "incremental layer splices packed arrays)",
    )
    parser.add_argument(
        "--batch-size", type=int, help="sites per chunk for the vector backend"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        help="worker processes (implies --backend sharded unless forced)",
    )
    parser.add_argument(
        "--schedule", choices=("auto", "cone", "input"), default="auto",
        help="chunk scheduling (auto: cone-cluster multi-chunk site lists)",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="disable the cone-aware sparse sweep",
    )
    parser.add_argument(
        "--cells", choices=("auto", "on", "off"), default="auto",
        help="cell-compaction mode of pruned sweeps",
    )
    parser.add_argument(
        "--chunking", choices=("auto", "adaptive", "fixed"), default="auto",
        help="chunk-width strategy",
    )
    parser.add_argument(
        "--rows", choices=("auto", "compact", "full"), default="auto",
        help="state-matrix row layout of pruned sweeps",
    )


def _delta_knobs(args: argparse.Namespace) -> dict:
    return dict(
        backend=None if args.backend == "auto" else args.backend,
        batch_size=args.batch_size,
        jobs=args.jobs,
        prune=False if args.no_prune else None,
        schedule=None if args.schedule == "auto" else args.schedule,
        cells=None if args.cells == "auto" else args.cells,
        chunking=None if args.chunking == "auto" else args.chunking,
        rows=None if args.rows == "auto" else args.rows,
    )


def _build_edit_set(args: argparse.Namespace):
    """Translate the repeatable --harden/--set-sp/... options into an EditSet."""
    from repro.core.epp_delta import EditSet

    edits = EditSet()
    for spec in args.harden or ():
        node, _, factor = spec.partition(":")
        try:
            edits.harden(node, float(factor) if factor else 10.0)
        except ValueError:
            raise ReproError(
                f"--harden expects NODE[:FACTOR], got {spec!r}"
            ) from None
    for spec in args.set_sp or ():
        node, sep, probability = spec.partition("=")
        if not sep:
            raise ReproError(f"--set-sp expects NODE=P, got {spec!r}")
        try:
            edits.set_sp(node, float(probability))
        except ValueError:
            raise ReproError(f"--set-sp expects NODE=P, got {spec!r}") from None
    for node in args.tmr or ():
        edits.tmr(node)
    for spec in args.rewire or ():
        parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(f"--rewire expects GATE:OLD:NEW, got {spec!r}")
        edits.rewire(*parts)
    for spec in args.replace or ():
        node, sep, gate_type = spec.partition(":")
        if not sep or not gate_type:
            raise ReproError(f"--replace expects NODE:TYPE, got {spec!r}")
        edits.replace_gate(node, gate_type)
    if not len(edits):
        raise ReproError(
            "no edits given; pass at least one of --harden/--set-sp/--tmr/"
            "--rewire/--replace"
        )
    return edits


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ser",
        description="EPP-based SER estimation (Asadi & Tahoori, DATE 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figure1", help="regenerate the Figure 1 worked example")

    table1 = commands.add_parser("table1", help="verify the Table 1 EPP rules")
    table1.add_argument("--steps", type=int, default=3, help="simplex grid resolution")

    table2 = commands.add_parser("table2", help="regenerate the Table 2 comparison")
    table2.add_argument(
        "--mode",
        choices=("quick", "default", "full"),
        default="quick",
        help="budget preset (quick: 4 small circuits; default/full: whole roster)",
    )
    table2.add_argument("--circuits", nargs="*", help="override the circuit roster")
    table2.add_argument("--csv", help="write measured rows to a CSV file")
    table2.add_argument("--json", help="write measured rows to a JSON file")
    table2.add_argument(
        "--backend",
        choices=("scalar", "vector", "sharded"),
        default="scalar",
        help="EPP backend for the SysT column (scalar keeps the paper's "
        "per-cone accounting; vector times the batched NumPy sweep; "
        "sharded fans the sweep out across --jobs worker processes)",
    )
    table2.add_argument(
        "--jobs",
        type=int,
        help="worker processes for the sharded backend (default: one per core)",
    )
    table2.add_argument(
        "--circuit-jobs",
        type=int,
        help="fan whole circuits across this many worker processes "
        "(roster-level parallelism: every row is an independent "
        "measurement, so rows are unchanged — only wall-clock drops; "
        "mutually exclusive with --backend sharded)",
    )
    table2.add_argument(
        "--schedule",
        choices=("auto", "cone", "input"),
        default="auto",
        help="chunk scheduling for the vector/sharded backends (auto: "
        "cone-cluster multi-chunk site lists)",
    )
    table2.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the cone-aware sparse sweep (dense full-circuit "
        "kernels, the PR-1 reference behaviour)",
    )

    analyze = commands.add_parser("analyze", help="SER-analyze a circuit")
    analyze.add_argument("circuit", help=".bench file, library name, or profile name")
    analyze.add_argument("--top", type=int, default=10, help="ranking rows to print")
    analyze.add_argument("--sample", type=int, help="analyze a random sample of sites")
    analyze.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    analyze.add_argument(
        "--backend",
        choices=("auto", "scalar", "vector", "sharded"),
        default="auto",
        help="EPP propagation backend (auto: vector when NumPy is available, "
        "sharded when --jobs is given)",
    )
    analyze.add_argument(
        "--batch-size",
        type=int,
        help="sites per chunk for the vector backend (default: cache-sized)",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        help="worker processes for the sharded backend (default: one per "
        "core; implies --backend sharded unless one is forced)",
    )
    analyze.add_argument(
        "--schedule",
        choices=("auto", "cone", "input"),
        default="auto",
        help="chunk scheduling for the vector/sharded backends: cone "
        "clusters sites with overlapping fanout cones into shared chunks, "
        "input keeps the site order (auto: cone for multi-chunk runs)",
    )
    analyze.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the cone-aware sparse sweep (dense full-circuit "
        "kernels, the PR-1 reference behaviour)",
    )
    analyze.add_argument(
        "--cells",
        choices=("auto", "on", "off"),
        default="auto",
        help="cell-compaction mode of pruned sweeps (auto: per-group "
        "density cost model; on/off force the compacted or row-sparse "
        "kernels — bit-identical either way)",
    )
    analyze.add_argument(
        "--chunking",
        choices=("auto", "adaptive", "fixed"),
        default="auto",
        help="chunk-width strategy (auto: calibrated full-width chunks, "
        "widened when compacted rows remove the restore overhead; "
        "adaptive aligns chunk boundaries to cone clusters)",
    )
    analyze.add_argument(
        "--rows",
        choices=("auto", "compact", "full"),
        default="auto",
        help="state-matrix row layout of pruned sweeps (auto/compact: "
        "per-chunk buffers hold only the union-of-cones rows via a "
        "cached remap; full restores the PR-4 full-circuit buffers)",
    )
    analyze.add_argument(
        "--retries",
        type=int,
        help="extra attempts per failed shard for the sharded backend "
        "(default: 2; crashes, timeouts and worker errors all re-run "
        "the shard bit-identically)",
    )
    analyze.add_argument(
        "--shard-timeout",
        type=float,
        metavar="SECONDS",
        help="per-shard deadline for the sharded backend; a slow shard "
        "is re-enqueued with backoff (wedged workers respawn the pool)",
    )
    analyze.add_argument(
        "--on-worker-failure",
        choices=("retry", "degrade", "raise"),
        help="terminal action once a shard's retry budget is spent: "
        "retry raises RetryBudgetExceededError, degrade finishes the "
        "shard in-process (bit-identical), raise fails fast",
    )
    analyze.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="journal each finished shard of a sharded sweep to DIR; a "
        "re-run after a crash loads finished shards from disk "
        "(checksum-verified, bit-identical) and only re-sweeps the rest",
    )
    analyze.add_argument(
        "--multi-cycle",
        type=int,
        metavar="CYCLES",
        help="also report multi-cycle observability of the top node",
    )
    analyze.add_argument("--csv", help="write the per-node SER rows to a CSV file")

    delta = commands.add_parser(
        "analyze-delta",
        help="apply what-if edits and re-analyze incrementally",
    )
    delta.add_argument("circuit", help=".bench file, library name, or profile name")
    delta.add_argument(
        "--harden",
        action="append",
        metavar="NODE[:FACTOR]",
        help="upsize a gate by a drive-strength factor (default 10); "
        "repeatable",
    )
    delta.add_argument(
        "--set-sp",
        action="append",
        metavar="NODE=P",
        help="override a node's signal probability; repeatable",
    )
    delta.add_argument(
        "--tmr",
        action="append",
        metavar="NODE",
        help="locally triplicate a gate with a majority voter; repeatable",
    )
    delta.add_argument(
        "--rewire",
        action="append",
        metavar="GATE:OLD:NEW",
        help="replace fanin OLD of GATE by NEW; repeatable",
    )
    delta.add_argument(
        "--replace",
        action="append",
        metavar="NODE:TYPE",
        help="swap a gate's type in place (e.g. g5:nand); repeatable",
    )
    delta.add_argument("--top", type=int, default=10, help="ranking rows to print")
    delta.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    delta.add_argument(
        "--verify",
        action="store_true",
        help="also run a full re-analysis of the edited circuit and check "
        "the incremental result is bit-identical",
    )
    _add_delta_knob_args(delta)

    harden = commands.add_parser(
        "harden",
        help="greedy selective hardening under an area budget",
    )
    harden.add_argument("circuit", help=".bench file, library name, or profile name")
    harden.add_argument(
        "--budget",
        type=float,
        required=True,
        help="area budget (upsizing a gate costs strength-1; TMR costs 3)",
    )
    harden.add_argument(
        "--strength",
        type=float,
        default=10.0,
        help="drive-strength factor per upsized gate (default 10)",
    )
    harden.add_argument(
        "--action",
        choices=("upsize", "tmr"),
        default="upsize",
        help="hardening move per step (tmr demonstrates the documented "
        "EPP limitation: estimated FIT usually rises, steps are rejected)",
    )
    harden.add_argument(
        "--max-steps",
        type=int,
        help="bound on evaluated candidates (accepted or rejected)",
    )
    harden.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    _add_delta_knob_args(harden)

    stats = commands.add_parser("stats", help="print circuit statistics")
    stats.add_argument("circuit", help=".bench file, library name, or profile name")

    generate = commands.add_parser("generate", help="emit a synthetic profile circuit")
    generate.add_argument("profile", help="ISCAS'89 profile name (e.g. s9234)")
    generate.add_argument("-o", "--output", help="output .bench path (default stdout)")
    generate.add_argument("--seed", type=int, help="override the deterministic seed")

    ablations = commands.add_parser(
        "ablations", help="run the design-decision ablation studies"
    )
    ablations.add_argument("--full", action="store_true", help="more circuits/vectors")
    ablations.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived analysis service on a unix socket",
    )
    serve.add_argument(
        "socket",
        help="unix-domain socket path to listen on (unlinked at shutdown)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="admission-queue bound; beyond it requests are shed with a "
        "retriable queue-full error carrying a retry_after estimate",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent request executors (each sweep runs in a thread "
        "and may itself fan out over a sharded process pool)",
    )
    serve.add_argument(
        "--client-inflight",
        type=int,
        default=4,
        help="per-client cap on admitted-but-unanswered requests",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        help="default sharded worker count for sweeps (default: stay on "
        "the in-process vector backend unless a request asks)",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        metavar="SECONDS",
        help="default end-to-end budget for requests that carry none; "
        "checked at the queue, plan and merge boundaries",
    )
    serve.add_argument(
        "--max-engines",
        type=int,
        default=4,
        help="live per-circuit engines kept; least-recently-used ones "
        "are closed (pools shut down) on overflow",
    )
    serve.add_argument(
        "--store-mb",
        type=int,
        default=64,
        help="artifact-store budget in MiB (checksummed circuits and "
        "finished results, LRU-evicted)",
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        help="disk tier for the artifact store: results, idempotency "
        "journal and per-circuit sweep checkpoints live in DIR "
        "(content-addressed, checksummed, atomically written) so a "
        "restarted server answers warm",
    )
    serve.add_argument(
        "--disk-mb",
        type=int,
        default=512,
        help="disk-tier budget in MiB for --store-dir (LRU-evicted)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="recover a crashed/drained server from --store-dir: reap "
        "orphan shared-memory segments, report requests persisted at "
        "the last drain as retriable, and serve journaled results warm",
    )
    serve.add_argument(
        "--warm",
        action="append",
        metavar="CIRCUIT",
        help="pre-load a circuit at start (engine built; the sharded "
        "pool is warmed too when --jobs is set); repeatable",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive sharded failures before the circuit breaker "
        "trips to the in-process backend",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a tripped breaker stays open before a half-open "
        "probe may try the pool again",
    )

    commands.add_parser("list", help="list embedded circuits and profiles")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figure1":
        from repro.experiments.figure1 import run_figure1

        result = run_figure1()
        print(result.format())
        return 0 if result.matches_paper else 1

    if args.command == "table1":
        from repro.experiments.table1 import run_table1

        result = run_table1(steps=args.steps)
        print(result.format())
        return 0 if result.all_match else 1

    if args.command == "table2":
        from repro.experiments.reporting import rows_to_csv, rows_to_json
        from repro.experiments.table2 import Table2Config, format_table2, run_table2

        if args.mode == "quick":
            config = Table2Config.quick(args.circuits)
        elif args.mode == "full":
            config = Table2Config.full()
        else:
            config = Table2Config()
        overrides = {}
        if args.circuits and args.mode != "quick":
            overrides["circuits"] = tuple(args.circuits)
        if args.backend != config.backend:
            overrides["backend"] = args.backend
        if args.jobs is not None:
            overrides["jobs"] = args.jobs
        if args.circuit_jobs is not None:
            overrides["circuit_jobs"] = args.circuit_jobs
        if args.schedule != "auto":
            overrides["schedule"] = args.schedule
        if args.no_prune:
            overrides["prune"] = False
        if overrides:
            config = Table2Config(**{**config.__dict__, **overrides})
        rows = run_table2(config, verbose=True)
        print()
        print(format_table2(rows))
        if args.csv:
            rows_to_csv(rows, args.csv)
        if args.json:
            rows_to_json(rows, args.json)
        return 0

    if args.command == "analyze":
        from repro.core.analysis import SERAnalyzer

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        backend = None if args.backend == "auto" else args.backend
        report = analyzer.analyze(
            sample=args.sample, backend=backend, batch_size=args.batch_size,
            jobs=args.jobs,
            prune=False if args.no_prune else None,
            schedule=None if args.schedule == "auto" else args.schedule,
            cells=None if args.cells == "auto" else args.cells,
            chunking=None if args.chunking == "auto" else args.chunking,
            rows=None if args.rows == "auto" else args.rows,
            retries=args.retries,
            shard_timeout=args.shard_timeout,
            on_failure=args.on_worker_failure,
            checkpoint=args.checkpoint,
        )
        print(report.format_table(top=args.top))
        if args.csv:
            from repro.experiments.reporting import rows_to_csv

            rows_to_csv(report.ranked(), args.csv)
            print(f"wrote {args.csv}")
        if args.multi_cycle:
            top_node = report.ranked(1)[0].node
            value = analyzer.multi_cycle_observability(top_node, cycles=args.multi_cycle)
            print(
                f"multi-cycle observability of {top_node} over "
                f"{args.multi_cycle} cycles: {value:.4f}"
            )
        return 0

    if args.command == "analyze-delta":
        from repro.core.analysis import SERAnalyzer

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        edits = _build_edit_set(args)
        snap = analyzer.snapshot(**_delta_knobs(args))
        delta = analyzer.analyze_delta(snap, edits)
        stats = delta.stats
        print(
            f"delta analysis of {circuit.name}: re-swept {stats['dirty']} of "
            f"{stats['sites']} sites (reused {stats['reused']}, edit "
            f"frontier {stats['frontier']} nodes)"
        )
        report = analyzer.report_for(delta)
        print(report.format_table(top=args.top))
        if args.verify:
            import numpy as np

            full = delta.engine.snapshot(**delta.knobs)
            identical = all(
                np.array_equal(left, right)
                for left, right in zip(delta.packed, full.packed)
            ) and delta.site_names == full.site_names
            print(f"verify: incremental == full re-analysis: {identical}")
            if not identical:
                return 1
        return 0

    if args.command == "harden":
        from repro.core.analysis import SERAnalyzer
        from repro.ser.hardening import optimize_hardening

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        plan = optimize_hardening(
            analyzer,
            area_budget=args.budget,
            strength_factor=args.strength,
            action=args.action,
            max_steps=args.max_steps,
            **_delta_knobs(args),
        )
        print(plan.format())
        return 0

    if args.command == "stats":
        circuit = resolve_circuit(args.circuit)
        print(circuit_stats(circuit).format())
        return 0

    if args.command == "generate":
        circuit = generate_iscas(args.profile, seed=args.seed)
        text = write_bench(circuit, args.output)
        if not args.output:
            print(text, end="")
        else:
            print(f"wrote {args.output}")
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import run_ablations

        report = run_ablations(seed=args.seed, quick=not args.full)
        print(report.format())
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "list":
        print("library circuits: " + ", ".join(list_circuits()))
        print("ISCAS'89 profiles: " + ", ".join(sorted(ISCAS89_PROFILES)))
        print("ISCAS'85 profiles: " + ", ".join(sorted(ISCAS85_PROFILES)))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.resilience import FaultPolicy
    from repro.errors import ConfigError
    from repro.server.service import AnalysisService

    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.max_queue < 1:
        raise ConfigError(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.request_deadline is not None:
        # Same validation path the sharded policy uses: rejects <= 0.
        FaultPolicy.from_knobs(deadline=args.request_deadline)
    if args.resume and not args.store_dir:
        raise ConfigError("--resume needs --store-dir (nothing to recover from)")
    service = AnalysisService(
        args.socket,
        max_queue=args.max_queue,
        workers=args.workers,
        client_inflight=args.client_inflight,
        jobs=args.jobs,
        default_deadline=args.request_deadline,
        max_engines=args.max_engines,
        store_bytes=args.store_mb * 1024 * 1024,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        warm=tuple(args.warm or ()),
        store_dir=args.store_dir,
        disk_bytes=args.disk_mb * 1024 * 1024,
        resume=args.resume,
    )

    async def _serve() -> None:
        await service.start()
        print(f"serving on {service.socket_path}", flush=True)
        if service.recovered_pending:
            print(
                f"recovered {len(service.recovered_pending)} pending "
                "request(s) from the last drain; clients may retry them "
                "against warm artifacts",
                flush=True,
            )
        await service.run()
        print("drained", flush=True)

    asyncio.run(_serve())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
