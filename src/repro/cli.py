"""Command-line interface: ``python -m repro <command>`` or ``repro-ser``.

Commands
--------
* ``figure1`` — regenerate the paper's Figure 1 worked example.
* ``table1``  — verify/print the paper's Table 1 propagation rules.
* ``table2``  — regenerate the paper's Table 2 comparison.
* ``analyze`` — SER-analyze a circuit (``.bench`` file, library name, or
  ISCAS'89 profile name) and print the vulnerability ranking.
* ``analyze-delta`` — apply what-if edits (harden/TMR/rewire/SP changes)
  and re-analyze incrementally, re-sweeping only affected sites.
* ``harden`` — greedy selective-hardening loop under an area budget,
  driven by the incremental analyzer.
* ``serve`` — run the long-lived analysis service on a unix socket
  (admission control, request deadlines, artifact cache, degradation).
* ``knobs``   — print the analysis-knob reference, generated from the
  :class:`~repro.core.config.AnalysisConfig` field metadata (the same
  table the CLI flags and the wire schema derive from).
* ``stats``   — print circuit statistics.
* ``generate`` — emit a synthetic ISCAS'89-profile circuit as ``.bench``.
* ``list``    — list embedded circuits and known profiles.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.netlist.bench import parse_bench_file, write_bench
from repro.netlist.circuit import Circuit
from repro.netlist.generate import (
    ISCAS85_PROFILES,
    ISCAS89_PROFILES,
    generate_iscas,
)
from repro.netlist.library import get_circuit, list_circuits
from repro.netlist.stats import circuit_stats
from repro.netlist.verilog import parse_verilog_file

__all__ = ["main", "build_parser", "resolve_circuit"]


def resolve_circuit(spec: str) -> Circuit:
    """Interpret a circuit argument: file path, library name, or profile name.

    Files ending in ``.v`` parse as structural Verilog, everything else
    file-like as ISCAS ``.bench``.
    """
    path = Path(spec)
    if path.suffix == ".v":
        return parse_verilog_file(path)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    if spec in list_circuits():
        return get_circuit(spec)
    if spec in ISCAS89_PROFILES or spec in ISCAS85_PROFILES:
        return generate_iscas(spec)
    raise ReproError(
        f"cannot resolve circuit {spec!r}: not a file, not one of the library "
        f"circuits ({', '.join(list_circuits())}), and not an ISCAS profile"
    )


def _add_analysis_flags(
    parser: argparse.ArgumentParser, *, delta: bool = False
) -> None:
    """Analysis-knob flags, generated from the
    :class:`~repro.core.config.AnalysisConfig` field metadata — a knob
    added there (or a backend registered in
    :data:`repro.core.backends.REGISTRY`) shows up on ``analyze`` with
    zero CLI edits.  ``delta=True`` keeps only the knobs the incremental
    layer accepts (no resilience/checkpoint surface) and restricts
    ``--backend`` to pack-capable backends (the incremental layer
    splices packed arrays, so the scalar oracle is out).
    """
    from repro.core.backends import REGISTRY
    from repro.core.config import KNOB_KEYS, field_metadata

    for name in KNOB_KEYS:
        meta = field_metadata(name)
        flag = meta["cli"]
        if flag is None or (delta and not meta["delta"]):
            continue
        if name == "backend":
            names = REGISTRY.pack_capable_names() if delta else REGISTRY.names()
            parser.add_argument(
                flag, choices=("auto",) + tuple(names), default="auto",
                help=meta["doc"],
            )
        elif meta["kind"] == "prune":
            # The config knob is tri-state (None/auto, True, False); the
            # CLI exposes only the force-dense side as --no-prune.
            parser.add_argument(
                flag, dest=name, action="store_false", default=None,
                help=meta["doc"],
            )
        elif meta["kind"] == "choice":
            parser.add_argument(
                flag, dest=name, choices=meta["choices"], help=meta["doc"]
            )
        elif meta["kind"] == "int":
            parser.add_argument(flag, dest=name, type=int, help=meta["doc"])
        elif meta["kind"] == "float":
            parser.add_argument(
                flag, dest=name, type=float, metavar="SECONDS",
                help=meta["doc"],
            )
        else:  # paths and other pass-through strings
            parser.add_argument(
                flag, dest=name, metavar="DIR", help=meta["doc"]
            )


def _analysis_knobs(args: argparse.Namespace) -> dict:
    """The knob subset of parsed args, keyed by config field name."""
    from repro.core.config import KNOB_KEYS, field_metadata

    knobs = {}
    for name in KNOB_KEYS:
        if field_metadata(name)["cli"] is None or not hasattr(args, name):
            continue
        value = getattr(args, name)
        if name == "backend" and value == "auto":
            value = None
        knobs[name] = value
    return knobs


def _build_edit_set(args: argparse.Namespace):
    """Translate the repeatable --harden/--set-sp/... options into an EditSet."""
    from repro.core.epp_delta import EditSet

    edits = EditSet()
    for spec in args.harden or ():
        node, _, factor = spec.partition(":")
        try:
            edits.harden(node, float(factor) if factor else 10.0)
        except ValueError:
            raise ReproError(
                f"--harden expects NODE[:FACTOR], got {spec!r}"
            ) from None
    for spec in args.set_sp or ():
        node, sep, probability = spec.partition("=")
        if not sep:
            raise ReproError(f"--set-sp expects NODE=P, got {spec!r}")
        try:
            edits.set_sp(node, float(probability))
        except ValueError:
            raise ReproError(f"--set-sp expects NODE=P, got {spec!r}") from None
    for node in args.tmr or ():
        edits.tmr(node)
    for spec in args.rewire or ():
        parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(f"--rewire expects GATE:OLD:NEW, got {spec!r}")
        edits.rewire(*parts)
    for spec in args.replace or ():
        node, sep, gate_type = spec.partition(":")
        if not sep or not gate_type:
            raise ReproError(f"--replace expects NODE:TYPE, got {spec!r}")
        edits.replace_gate(node, gate_type)
    if not len(edits):
        raise ReproError(
            "no edits given; pass at least one of --harden/--set-sp/--tmr/"
            "--rewire/--replace"
        )
    return edits


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ser",
        description="EPP-based SER estimation (Asadi & Tahoori, DATE 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figure1", help="regenerate the Figure 1 worked example")

    table1 = commands.add_parser("table1", help="verify the Table 1 EPP rules")
    table1.add_argument("--steps", type=int, default=3, help="simplex grid resolution")

    table2 = commands.add_parser("table2", help="regenerate the Table 2 comparison")
    table2.add_argument(
        "--mode",
        choices=("quick", "default", "full"),
        default="quick",
        help="budget preset (quick: 4 small circuits; default/full: whole roster)",
    )
    table2.add_argument("--circuits", nargs="*", help="override the circuit roster")
    table2.add_argument("--csv", help="write measured rows to a CSV file")
    table2.add_argument("--json", help="write measured rows to a JSON file")
    table2.add_argument(
        "--backend",
        choices=("scalar", "vector", "sharded"),
        default="scalar",
        help="EPP backend for the SysT column (scalar keeps the paper's "
        "per-cone accounting; vector times the batched NumPy sweep; "
        "sharded fans the sweep out across --jobs worker processes)",
    )
    table2.add_argument(
        "--jobs",
        type=int,
        help="worker processes for the sharded backend (default: one per core)",
    )
    table2.add_argument(
        "--circuit-jobs",
        type=int,
        help="fan whole circuits across this many worker processes "
        "(roster-level parallelism: every row is an independent "
        "measurement, so rows are unchanged — only wall-clock drops; "
        "mutually exclusive with --backend sharded)",
    )
    table2.add_argument(
        "--schedule",
        choices=("auto", "cone", "input"),
        default="auto",
        help="chunk scheduling for the vector/sharded backends (auto: "
        "cone-cluster multi-chunk site lists)",
    )
    table2.add_argument(
        "--no-prune",
        action="store_true",
        help="disable the cone-aware sparse sweep (dense full-circuit "
        "kernels, the PR-1 reference behaviour)",
    )

    analyze = commands.add_parser("analyze", help="SER-analyze a circuit")
    analyze.add_argument("circuit", help=".bench file, library name, or profile name")
    analyze.add_argument("--top", type=int, default=10, help="ranking rows to print")
    analyze.add_argument("--sample", type=int, help="analyze a random sample of sites")
    analyze.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    _add_analysis_flags(analyze)
    analyze.add_argument(
        "--multi-cycle",
        type=int,
        metavar="CYCLES",
        help="also report multi-cycle observability of the top node",
    )
    analyze.add_argument("--csv", help="write the per-node SER rows to a CSV file")

    delta = commands.add_parser(
        "analyze-delta",
        help="apply what-if edits and re-analyze incrementally",
    )
    delta.add_argument("circuit", help=".bench file, library name, or profile name")
    delta.add_argument(
        "--harden",
        action="append",
        metavar="NODE[:FACTOR]",
        help="upsize a gate by a drive-strength factor (default 10); "
        "repeatable",
    )
    delta.add_argument(
        "--set-sp",
        action="append",
        metavar="NODE=P",
        help="override a node's signal probability; repeatable",
    )
    delta.add_argument(
        "--tmr",
        action="append",
        metavar="NODE",
        help="locally triplicate a gate with a majority voter; repeatable",
    )
    delta.add_argument(
        "--rewire",
        action="append",
        metavar="GATE:OLD:NEW",
        help="replace fanin OLD of GATE by NEW; repeatable",
    )
    delta.add_argument(
        "--replace",
        action="append",
        metavar="NODE:TYPE",
        help="swap a gate's type in place (e.g. g5:nand); repeatable",
    )
    delta.add_argument("--top", type=int, default=10, help="ranking rows to print")
    delta.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    delta.add_argument(
        "--verify",
        action="store_true",
        help="also run a full re-analysis of the edited circuit and check "
        "the incremental result is bit-identical",
    )
    _add_analysis_flags(delta, delta=True)

    harden = commands.add_parser(
        "harden",
        help="greedy selective hardening under an area budget",
    )
    harden.add_argument("circuit", help=".bench file, library name, or profile name")
    harden.add_argument(
        "--budget",
        type=float,
        required=True,
        help="area budget (upsizing a gate costs strength-1; TMR costs 3)",
    )
    harden.add_argument(
        "--strength",
        type=float,
        default=10.0,
        help="drive-strength factor per upsized gate (default 10)",
    )
    harden.add_argument(
        "--action",
        choices=("upsize", "tmr"),
        default="upsize",
        help="hardening move per step (tmr demonstrates the documented "
        "EPP limitation: estimated FIT usually rises, steps are rejected)",
    )
    harden.add_argument(
        "--max-steps",
        type=int,
        help="bound on evaluated candidates (accepted or rejected)",
    )
    harden.add_argument(
        "--sp-method",
        default="topological",
        choices=("topological", "cut", "monte_carlo", "exact"),
        help="signal-probability backend",
    )
    _add_analysis_flags(harden, delta=True)

    stats = commands.add_parser("stats", help="print circuit statistics")
    stats.add_argument("circuit", help=".bench file, library name, or profile name")

    generate = commands.add_parser("generate", help="emit a synthetic profile circuit")
    generate.add_argument("profile", help="ISCAS'89 profile name (e.g. s9234)")
    generate.add_argument("-o", "--output", help="output .bench path (default stdout)")
    generate.add_argument("--seed", type=int, help="override the deterministic seed")

    ablations = commands.add_parser(
        "ablations", help="run the design-decision ablation studies"
    )
    ablations.add_argument("--full", action="store_true", help="more circuits/vectors")
    ablations.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived analysis service on a unix socket",
    )
    serve.add_argument(
        "socket",
        help="unix-domain socket path to listen on (unlinked at shutdown)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="admission-queue bound; beyond it requests are shed with a "
        "retriable queue-full error carrying a retry_after estimate",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent request executors (each sweep runs in a thread "
        "and may itself fan out over a sharded process pool)",
    )
    serve.add_argument(
        "--client-inflight",
        type=int,
        default=4,
        help="per-client cap on admitted-but-unanswered requests",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        help="default sharded worker count for sweeps (default: stay on "
        "the in-process vector backend unless a request asks)",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        metavar="SECONDS",
        help="default end-to-end budget for requests that carry none; "
        "checked at the queue, plan and merge boundaries",
    )
    serve.add_argument(
        "--max-engines",
        type=int,
        default=4,
        help="live per-circuit engines kept; least-recently-used ones "
        "are closed (pools shut down) on overflow",
    )
    serve.add_argument(
        "--store-mb",
        type=int,
        default=64,
        help="artifact-store budget in MiB (checksummed circuits and "
        "finished results, LRU-evicted)",
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        help="disk tier for the artifact store: results, idempotency "
        "journal and per-circuit sweep checkpoints live in DIR "
        "(content-addressed, checksummed, atomically written) so a "
        "restarted server answers warm",
    )
    serve.add_argument(
        "--disk-mb",
        type=int,
        default=512,
        help="disk-tier budget in MiB for --store-dir (LRU-evicted)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="recover a crashed/drained server from --store-dir: reap "
        "orphan shared-memory segments, report requests persisted at "
        "the last drain as retriable, and serve journaled results warm",
    )
    serve.add_argument(
        "--warm",
        action="append",
        metavar="CIRCUIT",
        help="pre-load a circuit at start (engine built; the sharded "
        "pool is warmed too when --jobs is set); repeatable",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive sharded failures before the circuit breaker "
        "trips to the in-process backend",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a tripped breaker stays open before a half-open "
        "probe may try the pool again",
    )

    knobs = commands.add_parser(
        "knobs",
        help="print the analysis-knob reference (generated from the "
        "AnalysisConfig field metadata)",
    )
    knobs.add_argument(
        "--markdown",
        action="store_true",
        help="emit the Markdown table embedded in the README",
    )

    commands.add_parser("list", help="list embedded circuits and profiles")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figure1":
        from repro.experiments.figure1 import run_figure1

        result = run_figure1()
        print(result.format())
        return 0 if result.matches_paper else 1

    if args.command == "table1":
        from repro.experiments.table1 import run_table1

        result = run_table1(steps=args.steps)
        print(result.format())
        return 0 if result.all_match else 1

    if args.command == "table2":
        from repro.experiments.reporting import rows_to_csv, rows_to_json
        from repro.experiments.table2 import Table2Config, format_table2, run_table2

        if args.mode == "quick":
            config = Table2Config.quick(args.circuits)
        elif args.mode == "full":
            config = Table2Config.full()
        else:
            config = Table2Config()
        overrides = {}
        if args.circuits and args.mode != "quick":
            overrides["circuits"] = tuple(args.circuits)
        if args.backend != config.backend:
            overrides["backend"] = args.backend
        if args.jobs is not None:
            overrides["jobs"] = args.jobs
        if args.circuit_jobs is not None:
            overrides["circuit_jobs"] = args.circuit_jobs
        if args.schedule != "auto":
            overrides["schedule"] = args.schedule
        if args.no_prune:
            overrides["prune"] = False
        if overrides:
            config = Table2Config(**{**config.__dict__, **overrides})
        rows = run_table2(config, verbose=True)
        print()
        print(format_table2(rows))
        if args.csv:
            rows_to_csv(rows, args.csv)
        if args.json:
            rows_to_json(rows, args.json)
        return 0

    if args.command == "analyze":
        from repro.core.analysis import SERAnalyzer

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        from repro.core.config import AnalysisConfig

        report = analyzer.analyze(
            sample=args.sample,
            config=AnalysisConfig.from_knobs(**_analysis_knobs(args)),
        )
        print(report.format_table(top=args.top))
        if args.csv:
            from repro.experiments.reporting import rows_to_csv

            rows_to_csv(report.ranked(), args.csv)
            print(f"wrote {args.csv}")
        if args.multi_cycle:
            top_node = report.ranked(1)[0].node
            value = analyzer.multi_cycle_observability(top_node, cycles=args.multi_cycle)
            print(
                f"multi-cycle observability of {top_node} over "
                f"{args.multi_cycle} cycles: {value:.4f}"
            )
        return 0

    if args.command == "analyze-delta":
        from repro.core.analysis import SERAnalyzer

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        edits = _build_edit_set(args)
        snap = analyzer.snapshot(**_analysis_knobs(args))
        delta = analyzer.analyze_delta(snap, edits)
        stats = delta.stats
        print(
            f"delta analysis of {circuit.name}: re-swept {stats['dirty']} of "
            f"{stats['sites']} sites (reused {stats['reused']}, edit "
            f"frontier {stats['frontier']} nodes)"
        )
        report = analyzer.report_for(delta)
        print(report.format_table(top=args.top))
        if args.verify:
            import numpy as np

            full = delta.engine.snapshot(**delta.knobs)
            identical = all(
                np.array_equal(left, right)
                for left, right in zip(delta.packed, full.packed)
            ) and delta.site_names == full.site_names
            print(f"verify: incremental == full re-analysis: {identical}")
            if not identical:
                return 1
        return 0

    if args.command == "harden":
        from repro.core.analysis import SERAnalyzer
        from repro.ser.hardening import optimize_hardening

        circuit = resolve_circuit(args.circuit)
        analyzer = SERAnalyzer(circuit, sp_method=args.sp_method)
        plan = optimize_hardening(
            analyzer,
            area_budget=args.budget,
            strength_factor=args.strength,
            action=args.action,
            max_steps=args.max_steps,
            **_analysis_knobs(args),
        )
        print(plan.format())
        return 0

    if args.command == "stats":
        circuit = resolve_circuit(args.circuit)
        print(circuit_stats(circuit).format())
        return 0

    if args.command == "generate":
        circuit = generate_iscas(args.profile, seed=args.seed)
        text = write_bench(circuit, args.output)
        if not args.output:
            print(text, end="")
        else:
            print(f"wrote {args.output}")
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import run_ablations

        report = run_ablations(seed=args.seed, quick=not args.full)
        print(report.format())
        return 0

    if args.command == "knobs":
        from repro.core.config import knob_reference

        print(knob_reference(markdown=args.markdown), end="")
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "list":
        print("library circuits: " + ", ".join(list_circuits()))
        print("ISCAS'89 profiles: " + ", ".join(sorted(ISCAS89_PROFILES)))
        print("ISCAS'85 profiles: " + ", ".join(sorted(ISCAS85_PROFILES)))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.resilience import FaultPolicy
    from repro.errors import ConfigError
    from repro.server.service import AnalysisService

    if args.workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {args.workers}")
    if args.max_queue < 1:
        raise ConfigError(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.request_deadline is not None:
        # Same validation path the sharded policy uses: rejects <= 0.
        FaultPolicy.from_knobs(deadline=args.request_deadline)
    if args.resume and not args.store_dir:
        raise ConfigError("--resume needs --store-dir (nothing to recover from)")
    service = AnalysisService(
        args.socket,
        max_queue=args.max_queue,
        workers=args.workers,
        client_inflight=args.client_inflight,
        jobs=args.jobs,
        default_deadline=args.request_deadline,
        max_engines=args.max_engines,
        store_bytes=args.store_mb * 1024 * 1024,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        warm=tuple(args.warm or ()),
        store_dir=args.store_dir,
        disk_bytes=args.disk_mb * 1024 * 1024,
        resume=args.resume,
    )

    async def _serve() -> None:
        await service.start()
        print(f"serving on {service.socket_path}", flush=True)
        if service.recovered_pending:
            print(
                f"recovered {len(service.recovered_pending)} pending "
                "request(s) from the last drain; clients may retry them "
                "against warm artifacts",
                flush=True,
            )
        await service.run()
        print("drained", flush=True)

    asyncio.run(_serve())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
