"""Multi-cycle SEU fault simulation (sequential ground truth).

The single-cycle injector (:mod:`repro.sim.fault_sim`) stops at the
flip-flop boundary: an error captured into state is counted as observable.
The multi-cycle simulator follows the story further — the corrupted state
propagates through subsequent cycles and may (or may not) eventually reach
a primary output.  It is the ground truth against which
:meth:`repro.core.analysis.SERAnalyzer.multi_cycle_observability`'s
independence-based dynamic program is validated.

Semantics: at cycle 0 the SEU flips ``site`` for the current evaluation
(transient — the flip is not re-applied afterwards).  Good and faulty
circuits then run in lockstep with identical inputs for ``cycles`` clock
cycles; the SEU is *observed* in a pattern if any primary output differs
in any simulated cycle.  Flip-flop divergence alone does not count —
that is exactly the latent-error case the multi-cycle analysis handles.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.logic_sim import BitParallelSimulator
from repro.sim.vectors import RandomVectorSource

__all__ = ["MultiCycleFaultSimulator"]


class MultiCycleFaultSimulator:
    """Lockstep good/faulty sequential simulation with one injected SEU.

    Parameters
    ----------
    circuit:
        Sequential (or combinational) circuit under analysis.
    seed:
        Seed for the input and initial-state streams.
    input_weights / state_weights:
        Per-signal probability of 1 for primary inputs and the *initial*
        flip-flop state (both default 0.5) — match these to the SP map
        used by the analytical model for an apples-to-apples comparison.
    word_width:
        Patterns simulated per bit-parallel pass.
    """

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 0,
        input_weights: Mapping[str, float] | None = None,
        state_weights: Mapping[str, float] | None = None,
        word_width: int = 256,
    ):
        if word_width < 1:
            raise SimulationError(f"word_width must be >= 1, got {word_width}")
        self.circuit = circuit
        self.seed = seed
        self.word_width = word_width
        self.simulator = BitParallelSimulator(circuit)
        self.compiled = self.simulator.compiled
        self._eval_order = self.simulator._eval_order
        self._order_position = {
            node_id: position for position, node_id in enumerate(self._eval_order)
        }
        self._input_weights = dict(input_weights or {})
        self._state_weights = dict(state_weights or {})
        self._d_driver = {
            self.compiled.names[dff]: self.compiled.fanin(dff)[0]
            for dff in self.compiled.dff_ids
        }

    def p_observed(self, site: str, cycles: int, n_vectors: int = 4096) -> float:
        """P(SEU at ``site`` reaches a primary output within ``cycles``)."""
        if cycles < 1:
            raise SimulationError(f"cycles must be >= 1, got {cycles}")
        if n_vectors < 1:
            raise SimulationError(f"n_vectors must be >= 1, got {n_vectors}")
        compiled = self.compiled
        if site not in compiled.index:
            raise SimulationError(f"unknown error site {site!r}")
        site_id = compiled.index[site]

        input_source = RandomVectorSource(
            self.circuit.inputs, seed=self.seed, weights=self._input_weights
        )
        state_source = RandomVectorSource(
            self.circuit.flip_flops, seed=self.seed ^ 0xABCD, weights=self._state_weights
        )
        output_ids = compiled.output_ids

        detected_total = 0
        remaining = n_vectors
        while remaining > 0:
            width = min(self.word_width, remaining)
            mask = (1 << width) - 1
            state_good = state_source.next_words(width)
            state_faulty = dict(state_good)
            detect = 0
            for cycle in range(cycles):
                inputs = input_source.next_words(width)
                good_sources = {**state_good, **inputs}
                faulty_sources = {**state_faulty, **inputs}
                good = self.simulator.run(good_sources, width)
                if cycle == 0:
                    faulty = self._run_with_flip(faulty_sources, site_id, width, mask)
                else:
                    faulty = self.simulator.run(faulty_sources, width)
                for output_id in output_ids:
                    detect |= (good[output_id] ^ faulty[output_id]) & mask
                if detect == mask:
                    break  # every pattern already detected
                state_good = {
                    name: good[driver] for name, driver in self._d_driver.items()
                }
                state_faulty = {
                    name: faulty[driver] for name, driver in self._d_driver.items()
                }
            detected_total += detect.bit_count()
            remaining -= width
        return detected_total / n_vectors

    def _run_with_flip(
        self, sources: Mapping[str, int], site_id: int, width: int, mask: int
    ) -> list[int]:
        """Full evaluation with the site's word flipped as it is produced."""
        compiled = self.compiled
        if not compiled.gate_type(site_id).is_combinational:
            flipped = dict(sources)
            name = compiled.names[site_id]
            flipped[name] = (flipped.get(name, 0) ^ mask) & mask
            return self.simulator.run(flipped, width)
        values = self.simulator.run(sources, width)
        position = self._order_position[site_id]
        values[site_id] ^= mask
        self.simulator.run_into(values, mask, self._eval_order[position + 1 :])
        return values
