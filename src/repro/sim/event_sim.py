"""Event-driven logic simulation with switching-activity statistics.

Complements the levelized bit-parallel simulator: instead of evaluating
every gate for every pattern, only the fanout of *changed* signals is
re-evaluated — the classic event-driven style.  Two uses in this library:

* an **independent cross-check** of the levelized simulator (different
  algorithm, same answers — the tests diff them on random stimuli);
* **switching-activity** collection (toggle counts per node), the standard
  input to dynamic-power and, notably, to activity-weighted SER studies
  where a node's upset matters more while the circuit is active.

Scalar (one pattern at a time) by design; bulk workloads belong to the
bit-parallel engine.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, eval_gate_bool

__all__ = ["EventDrivenSimulator"]


class EventDrivenSimulator:
    """Incremental evaluator over one circuit.

    Call :meth:`initialize` once with a full source assignment, then
    :meth:`apply` with only the signals that changed; the simulator
    propagates events level by level and reports which nodes toggled.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.compiled = circuit.compiled()
        self._values: list[int] | None = None
        self.activity: dict[str, int] = {name: 0 for name in circuit.node_names()}
        self.events_processed = 0

    # ---------------------------------------------------------------- state

    @property
    def initialized(self) -> bool:
        return self._values is not None

    def value(self, name: str) -> int:
        """Current value of a node."""
        if self._values is None:
            raise SimulationError("initialize() must be called before value()")
        try:
            return self._values[self.compiled.index[name]]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def values(self) -> dict[str, int]:
        """Snapshot of every node's current value."""
        if self._values is None:
            raise SimulationError("initialize() must be called before values()")
        return {
            self.compiled.names[i]: self._values[i] for i in range(self.compiled.n)
        }

    def reset_activity(self) -> None:
        self.activity = {name: 0 for name in self.circuit.node_names()}
        self.events_processed = 0

    # ------------------------------------------------------------ evaluation

    def initialize(self, assignment: Mapping[str, int]) -> dict[str, int]:
        """Full evaluation establishing the baseline values."""
        full = self.circuit.evaluate(assignment)
        self._values = [full[name] for name in self.compiled.names]
        return full

    def apply(self, changes: Mapping[str, int]) -> set[str]:
        """Propagate source changes; returns the set of toggled node names.

        ``changes`` maps primary inputs (and DFF outputs, for sequential
        circuits) to their new values; unchanged sources may be included
        (they simply generate no events).
        """
        if self._values is None:
            raise SimulationError("initialize() must be called before apply()")
        compiled = self.compiled
        values = self._values
        level = compiled.level

        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        toggled: set[str] = set()

        for name, new_value in changes.items():
            node_id = compiled.index.get(name)
            if node_id is None:
                raise SimulationError(f"unknown source {name!r}")
            gate_type = compiled.gate_type(node_id)
            if gate_type.is_combinational:
                raise SimulationError(
                    f"apply() takes source changes only; {name!r} is a gate"
                )
            if new_value not in (0, 1):
                raise SimulationError(f"{name!r} must be 0/1, got {new_value!r}")
            if values[node_id] != new_value:
                values[node_id] = new_value
                toggled.add(name)
                self.activity[name] += 1
                for user in compiled.fanout(node_id):
                    if user not in queued and compiled.gate_type(user).is_combinational:
                        queued.add(user)
                        heapq.heappush(heap, (level[user], user))

        while heap:
            _, node_id = heapq.heappop(heap)
            queued.discard(node_id)
            self.events_processed += 1
            new_value = eval_gate_bool(
                compiled.gate_type(node_id),
                [values[p] for p in compiled.fanin(node_id)],
            )
            if new_value == values[node_id]:
                continue  # event dies: no toggle, no downstream work
            values[node_id] = new_value
            name = compiled.names[node_id]
            toggled.add(name)
            self.activity[name] += 1
            for user in compiled.fanout(node_id):
                if user not in queued and compiled.gate_type(user).is_combinational:
                    queued.add(user)
                    heapq.heappush(heap, (level[user], user))
        return toggled

    def run_stimuli(
        self, initial: Mapping[str, int], stimuli: list[Mapping[str, int]]
    ) -> dict[str, float]:
        """Apply a stimulus sequence; returns per-node toggle rates.

        Toggle rate = toggles / number of applied stimulus steps — the
        switching-activity figure power/SER flows consume.
        """
        self.reset_activity()
        self.initialize(initial)
        for changes in stimuli:
            self.apply(changes)
        steps = max(1, len(stimuli))
        return {name: count / steps for name, count in self.activity.items()}
