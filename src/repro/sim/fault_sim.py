"""SEU (single-event-upset) fault injection with cone-restricted resimulation.

An SEU at node ``s`` flips the logic value of ``s`` for the current input
pattern.  The injector answers, bit-parallel over a word of patterns: *in
which patterns does the flip reach an observable sink* (a primary output or
a flip-flop D pin)?  That per-pattern detection indicator is exactly what
the random-simulation baseline of the paper averages into
``P_sensitized``.

Only the fanout cone of the error site is resimulated; values are saved and
restored in place, so the cost per site is proportional to the cone size,
not the circuit size.  Traversal stops at flip-flops: an error arriving at
a D pin is *captured*, not combinationally propagated (the multi-cycle
behaviour is modeled at the analysis layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.netlist.gate_types import GateType
from repro.sim.logic_sim import BitParallelSimulator

__all__ = ["FaultInjector", "FanoutCone"]


@dataclass(frozen=True)
class FanoutCone:
    """Precomputed fanout cone of one error site.

    ``eval_order`` — combinational gates strictly downstream of the site, in
    topological order (the site itself is not re-evaluated; its value is the
    injected one).  ``sinks`` — observable sink node ids reachable from the
    site (including the site itself when it is directly observable).
    """

    site: int
    members: frozenset[int]
    eval_order: tuple[int, ...]
    sinks: tuple[int, ...]


class FaultInjector:
    """Bit-parallel SEU injector bound to one circuit."""

    def __init__(self, circuit: Circuit | CompiledCircuit):
        self.simulator = BitParallelSimulator(circuit)
        self.compiled = self.simulator.compiled
        self._sink_set = frozenset(self.compiled.sink_ids)
        self._topo_position = {
            node_id: position for position, node_id in enumerate(self.compiled.topo)
        }
        self._cone_cache: dict[int, FanoutCone] = {}

    # ------------------------------------------------------------------ cones

    def fanout_cone(self, site: int | str) -> FanoutCone:
        """The (cached) fanout cone of an error site."""
        site_id = self._resolve(site)
        cone = self._cone_cache.get(site_id)
        if cone is None:
            cone = self._build_cone(site_id)
            self._cone_cache[site_id] = cone
        return cone

    def _resolve(self, site: int | str) -> int:
        if isinstance(site, str):
            try:
                return self.compiled.index[site]
            except KeyError:
                raise SimulationError(f"unknown error site {site!r}") from None
        if not 0 <= site < self.compiled.n:
            raise SimulationError(f"error site id {site} out of range")
        return site

    def _build_cone(self, site_id: int) -> FanoutCone:
        compiled = self.compiled
        members: set[int] = set()
        stack = [site_id]
        while stack:
            node_id = stack.pop()
            for user in compiled.fanout(node_id):
                if user in members:
                    continue
                if compiled.gate_type(user) is GateType.DFF:
                    # Captured at the clock edge; not combinationally traversed.
                    continue
                members.add(user)
                stack.append(user)
        eval_order = tuple(sorted(members, key=self._topo_position.__getitem__))
        sinks = tuple(
            node_id
            for node_id in ((site_id,) + eval_order)
            if node_id in self._sink_set
        )
        return FanoutCone(site_id, frozenset(members), eval_order, sinks)

    # -------------------------------------------------------------- injection

    def detection_word(self, good_values: list[int], site: int | str, width: int) -> int:
        """Bit ``p`` set iff flipping the site in pattern ``p`` reaches a sink.

        ``good_values`` is the fault-free word per node id (as produced by
        :meth:`BitParallelSimulator.run`); it is left unmodified.
        """
        per_sink = self.sink_detection_words(good_values, site, width)
        detect = 0
        for word in per_sink.values():
            detect |= word
        return detect

    def sink_detection_words(
        self, good_values: list[int], site: int | str, width: int
    ) -> dict[int, int]:
        """Per-sink divergence words for one injected flip.

        Returns ``{sink_id: word}`` where bit ``p`` of ``word`` is 1 iff the
        flipped site changes that sink's value in pattern ``p``.  Sinks not
        reachable from the site are omitted (their divergence is identically
        zero).
        """
        cone = self.fanout_cone(site)
        mask = (1 << width) - 1
        values = good_values

        saved_site = values[cone.site]
        saved = [(node_id, values[node_id]) for node_id in cone.eval_order]
        values[cone.site] = saved_site ^ mask
        self.simulator.run_into(values, mask, order=cone.eval_order)

        divergence: dict[int, int] = {}
        good_at = dict(saved)
        good_at[cone.site] = saved_site
        for sink in cone.sinks:
            diff = (values[sink] ^ good_at[sink]) & mask
            if diff:
                divergence[sink] = diff

        values[cone.site] = saved_site
        for node_id, word in saved:
            values[node_id] = word
        return divergence

    def detection_count(self, good_values: list[int], site: int | str, width: int) -> int:
        """Number of patterns (bits) in which the flip is observable."""
        return self.detection_word(good_values, site, width).bit_count()

    # -------------------------------------------------- multi-site (MBU)

    def multi_detection_word(
        self, good_values: list[int], sites: Sequence[int | str], width: int
    ) -> int:
        """Detection word for *simultaneous* flips at several sites (MBU).

        All sites flip in the same pattern (a single particle upsetting
        several adjacent nodes).  Exact semantics: every site's value is
        inverted as it is produced, and the union of the fanout cones is
        resimulated.  ``good_values`` is left unmodified.
        """
        if not sites:
            raise SimulationError("multi_detection_word needs at least one site")
        site_ids = sorted(
            {self._resolve(site) for site in sites},
            key=self._topo_position.__getitem__,
        )
        if len(site_ids) == 1:
            return self.detection_word(good_values, site_ids[0], width)

        compiled = self.compiled
        mask = (1 << width) - 1
        members: set[int] = set()
        for site_id in site_ids:
            members |= self.fanout_cone(site_id).members
        site_set = set(site_ids)
        eval_order = sorted(
            members - site_set, key=self._topo_position.__getitem__
        )

        values = good_values
        saved = [(node_id, values[node_id]) for node_id in eval_order]
        saved_sites = [(site_id, values[site_id]) for site_id in site_ids]
        good_at = dict(saved)
        good_at.update(saved_sites)

        # Interleave: evaluate cone gates in topo order, applying each
        # site's flip at its topological position (a site inside another
        # site's cone must be re-evaluated *then* flipped).
        merged = sorted(
            members | site_set, key=self._topo_position.__getitem__
        )
        for node_id in merged:
            if compiled.gate_type(node_id).is_combinational:
                self.simulator.run_into(values, mask, order=(node_id,))
            if node_id in site_set:
                values[node_id] ^= mask

        detect = 0
        for sink in self._sink_set:
            if sink in members or sink in site_set:
                detect |= (values[sink] ^ good_at.get(sink, values[sink])) & mask

        for node_id, word in saved_sites:
            values[node_id] = word
        for node_id, word in saved:
            values[node_id] = word
        return detect
