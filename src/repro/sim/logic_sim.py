"""Levelized bit-parallel logic simulation.

:class:`BitParallelSimulator` evaluates a circuit's combinational network
over word assignments (one pattern per bit).  The hot loop dispatches on
integer gate codes and indexes plain Python lists, which is the fastest
interpretation strategy available in pure Python; with 1024-bit words one
pass through an N-gate circuit costs ~N big-int operations for 1024
patterns.

:func:`simulate_sequential` drives a sequential circuit cycle by cycle:
flip-flop outputs are sources for the current cycle, and each DFF captures
the word at its D driver for the next cycle.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_CONST0,
    CODE_CONST1,
    CODE_DFF,
    CODE_INPUT,
    CODE_MAJ,
    CODE_MUX,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    GateType,
    eval_gate_word,
)

__all__ = ["BitParallelSimulator", "simulate_sequential", "SequentialTrace"]


class BitParallelSimulator:
    """Bit-parallel evaluator bound to one circuit.

    The simulator precomputes per-node fanin lists and the topological
    order once, then :meth:`run` evaluates any number of word assignments.
    """

    def __init__(self, circuit: Circuit | CompiledCircuit):
        self.compiled = circuit.compiled() if isinstance(circuit, Circuit) else circuit
        compiled = self.compiled
        self._fanin: list[list[int]] = [compiled.fanin(i) for i in range(compiled.n)]
        self._code: list[int] = compiled.code
        # Gate evaluation order: topological, sources excluded (their words
        # come from the caller).
        self._eval_order: list[int] = [
            i for i in compiled.topo if compiled.gate_type(i).is_combinational
        ]
        self._source_ids: list[int] = [
            i for i in compiled.topo if not compiled.gate_type(i).is_combinational
        ]

    def run(self, source_words: Mapping[str, int], width: int) -> list[int]:
        """Evaluate one word assignment; returns a word per node id.

        ``source_words`` must provide a word for every primary input and —
        for sequential circuits — every DFF output (current state).
        Constants are filled in automatically.
        """
        compiled = self.compiled
        values = [0] * compiled.n
        mask = (1 << width) - 1
        for node_id in self._source_ids:
            code = self._code[node_id]
            if code == CODE_CONST0:
                continue
            if code == CODE_CONST1:
                values[node_id] = mask
                continue
            name = compiled.names[node_id]
            try:
                values[node_id] = source_words[name] & mask
            except KeyError:
                kind = "input" if code == CODE_INPUT else "state (DFF output)"
                raise SimulationError(f"missing {kind} word for {name!r}") from None
        self.run_into(values, mask)
        return values

    def run_into(self, values: list[int], mask: int, order: Sequence[int] | None = None) -> None:
        """Evaluate gates in ``order`` (default: all) into a preloaded buffer.

        ``values`` must already hold source words; entries for evaluated
        gates are overwritten.  Exposed so the fault injector can resimulate
        just a fanout cone.
        """
        fanin = self._fanin
        code = self._code
        for node_id in order if order is not None else self._eval_order:
            gate_code = code[node_id]
            pins = fanin[node_id]
            if gate_code == CODE_NAND:
                acc = mask
                for pin in pins:
                    acc &= values[pin]
                values[node_id] = acc ^ mask
            elif gate_code == CODE_AND:
                acc = mask
                for pin in pins:
                    acc &= values[pin]
                values[node_id] = acc
            elif gate_code == CODE_NOR:
                acc = 0
                for pin in pins:
                    acc |= values[pin]
                values[node_id] = acc ^ mask
            elif gate_code == CODE_OR:
                acc = 0
                for pin in pins:
                    acc |= values[pin]
                values[node_id] = acc
            elif gate_code == CODE_NOT:
                values[node_id] = values[pins[0]] ^ mask
            elif gate_code == CODE_BUF:
                values[node_id] = values[pins[0]]
            elif gate_code == CODE_XOR:
                acc = 0
                for pin in pins:
                    acc ^= values[pin]
                values[node_id] = acc
            elif gate_code == CODE_XNOR:
                acc = 0
                for pin in pins:
                    acc ^= values[pin]
                values[node_id] = acc ^ mask
            elif gate_code == CODE_MUX:
                sel, a, b = (values[p] for p in pins)
                values[node_id] = (a & (sel ^ mask)) | (b & sel)
            else:  # MAJ and any future exotic cell: generic path
                values[node_id] = eval_gate_word(
                    self.compiled.gate_type(node_id),
                    [values[p] for p in pins],
                    mask,
                )

    def run_named(self, source_words: Mapping[str, int], width: int) -> dict[str, int]:
        """Like :meth:`run` but returns words keyed by node name."""
        values = self.run(source_words, width)
        return {self.compiled.names[i]: values[i] for i in range(self.compiled.n)}


class SequentialTrace:
    """Cycle-by-cycle record of a sequential simulation.

    ``node_words[t]`` holds the word per node id at cycle ``t``;
    ``state_words[t]`` the flip-flop state entering cycle ``t``.
    """

    def __init__(self, compiled: CompiledCircuit, width: int):
        self.compiled = compiled
        self.width = width
        self.node_words: list[list[int]] = []
        self.state_words: list[dict[str, int]] = []

    def word(self, cycle: int, name: str) -> int:
        return self.node_words[cycle][self.compiled.index[name]]

    @property
    def cycles(self) -> int:
        return len(self.node_words)


def simulate_sequential(
    circuit: Circuit,
    input_words: Sequence[Mapping[str, int]] | Callable[[int], Mapping[str, int]],
    cycles: int,
    width: int,
    initial_state: Mapping[str, int] | None = None,
    keep_trace: bool = True,
) -> SequentialTrace:
    """Simulate ``cycles`` clock cycles of a sequential circuit.

    ``input_words`` provides the primary-input word assignment per cycle
    (a sequence or a ``cycle -> words`` callable).  Flip-flops start at
    ``initial_state`` (default all zeros) and capture their D-driver word at
    every cycle boundary.  With ``keep_trace=False`` only the final cycle's
    node words are retained (memory-friendly warmup runs).
    """
    simulator = BitParallelSimulator(circuit)
    compiled = simulator.compiled
    trace = SequentialTrace(compiled, width)

    state: dict[str, int] = {name: 0 for name in circuit.flip_flops}
    if initial_state:
        for name, word in initial_state.items():
            if name not in state:
                raise SimulationError(f"initial_state names unknown flip-flop {name!r}")
            state[name] = word

    d_driver = {
        compiled.names[dff_id]: compiled.fanin(dff_id)[0] for dff_id in compiled.dff_ids
    }

    for cycle in range(cycles):
        cycle_inputs = input_words(cycle) if callable(input_words) else input_words[cycle]
        source_words = dict(state)
        source_words.update(cycle_inputs)
        values = simulator.run(source_words, width)
        if keep_trace or cycle == cycles - 1:
            trace.node_words.append(values)
            trace.state_words.append(dict(state))
        state = {name: values[driver] for name, driver in d_driver.items()}
    return trace
