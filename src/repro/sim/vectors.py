"""Pattern sources for bit-parallel simulation.

A *word* is a Python int whose bit ``p`` carries the value of one signal in
pattern ``p``; a *word assignment* maps each source signal to one word of a
common width.  All sources here are deterministic given their seed.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping, Sequence

from repro.errors import SimulationError

__all__ = [
    "RandomVectorSource",
    "exhaustive_words",
    "pack_patterns",
    "unpack_word",
    "popcount",
]


def popcount(word: int) -> int:
    """Number of set bits (patterns where the signal is 1)."""
    return word.bit_count()


def pack_patterns(patterns: Sequence[Mapping[str, int]], signals: Sequence[str]) -> dict[str, int]:
    """Pack per-pattern scalar assignments into one word per signal.

    ``patterns[p][signal]`` becomes bit ``p`` of the signal's word.
    """
    words = {signal: 0 for signal in signals}
    for position, pattern in enumerate(patterns):
        for signal in signals:
            value = pattern[signal]
            if value not in (0, 1):
                raise SimulationError(
                    f"pattern {position}: signal {signal!r} must be 0/1, got {value!r}"
                )
            if value:
                words[signal] |= 1 << position
    return words


def unpack_word(word: int, width: int) -> list[int]:
    """Inverse of packing: word -> list of per-pattern bits."""
    return [(word >> p) & 1 for p in range(width)]


def exhaustive_words(signals: Sequence[str]) -> tuple[dict[str, int], int]:
    """All ``2**len(signals)`` input combinations as one word assignment.

    Signal ``k`` gets the truth-table column pattern of variable ``k``
    (LSB-first), so pattern ``p`` assigns bit ``(p >> k) & 1`` to signal
    ``k``.  Returns ``(words, width)``.  Refuses more than 24 signals
    (16M-bit words) to protect the caller from accidental blowup.
    """
    n = len(signals)
    if n > 24:
        raise SimulationError(
            f"exhaustive enumeration over {n} signals is not tractable (limit 24)"
        )
    width = 1 << n
    words: dict[str, int] = {}
    for k, signal in enumerate(signals):
        block = (1 << (1 << k)) - 1  # 2^k zeros then 2^k ones, repeated
        period = 1 << (k + 1)
        word = 0
        for start in range(1 << k, width, period):
            word |= block << start
        words[signal] = word
    return words, width


class RandomVectorSource:
    """Seeded uniform (or per-signal weighted) random word generator.

    Parameters
    ----------
    signals:
        The source signal names to drive.
    seed:
        PRNG seed; identical seeds give identical streams.
    weights:
        Optional map signal -> probability of 1 (default 0.5 for all).
        Weighted words are built by thresholding blocks of uniform bits,
        which keeps generation O(width) per signal.
    rng:
        Optional externally-owned :class:`random.Random` instance to draw
        from instead of constructing one from ``seed``.  Callers composing
        several stochastic components (e.g. the Monte Carlo
        cross-validation harness) pass one generator through explicitly so
        the whole experiment is a pure function of a single seed — no
        module-level random state is ever consulted.
    """

    def __init__(
        self,
        signals: Sequence[str],
        seed: int = 0,
        weights: Mapping[str, float] | None = None,
        rng: random.Random | None = None,
    ):
        self.signals = list(signals)
        self._rng = rng if rng is not None else random.Random(seed)
        self._weights = dict(weights) if weights else {}
        for signal, weight in self._weights.items():
            if not 0.0 <= weight <= 1.0:
                raise SimulationError(
                    f"weight for {signal!r} must be in [0, 1], got {weight}"
                )

    def next_words(self, width: int) -> dict[str, int]:
        """One word assignment of ``width`` fresh random patterns."""
        if width < 1:
            raise SimulationError(f"word width must be >= 1, got {width}")
        words: dict[str, int] = {}
        for signal in self.signals:
            weight = self._weights.get(signal, 0.5)
            words[signal] = self._weighted_word(width, weight)
        return words

    def stream(self, width: int) -> Iterator[dict[str, int]]:
        """Endless stream of word assignments (caller slices what it needs)."""
        while True:
            yield self.next_words(width)

    def _weighted_word(self, width: int, weight: float) -> int:
        if weight == 0.5:
            return self._rng.getrandbits(width)
        if weight <= 0.0:
            return 0
        if weight >= 1.0:
            return (1 << width) - 1
        # Per-bit Bernoulli via 16-bit threshold comparison, vectorized in
        # chunks to limit Python-loop overhead.
        threshold = int(weight * 65536)
        word = 0
        for position in range(width):
            if self._rng.getrandbits(16) < threshold:
                word |= 1 << position
        return word
