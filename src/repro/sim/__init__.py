"""Logic and fault simulation substrate.

* :mod:`repro.sim.vectors` — seeded pattern sources (random, weighted,
  exhaustive) packed as bit-parallel words.
* :mod:`repro.sim.logic_sim` — levelized bit-parallel logic simulation of
  combinational and sequential circuits.
* :mod:`repro.sim.fault_sim` — SEU (bit-flip) injection with cone-restricted
  resimulation and sink observation.

The bit-parallel representation packs one simulation pattern per bit of an
arbitrary-width Python integer, so a single pass of Python-level work
evaluates hundreds or thousands of patterns.
"""

from repro.sim.vectors import RandomVectorSource, exhaustive_words, pack_patterns
from repro.sim.logic_sim import BitParallelSimulator, simulate_sequential
from repro.sim.fault_sim import FaultInjector

__all__ = [
    "RandomVectorSource",
    "exhaustive_words",
    "pack_patterns",
    "BitParallelSimulator",
    "simulate_sequential",
    "FaultInjector",
]
