"""Deterministic fault injection for the sharded EPP worker pool.

A :class:`FaultInjector` is a picklable, *seeded* description of
failures to stage inside worker processes.  The sharded driver threads
it through the executor initializer
(``ShardedEPPEngine(fault_injector=...)``); every worker consults it at
two well-defined stages of :func:`repro.core.epp_shard._run_shard`:

* ``"kernel"`` — immediately before the shard's sweep: ``crash`` kills
  the worker process outright (``os._exit``, the BrokenProcessPool
  shape), ``stall`` sleeps past any per-shard deadline (the wedged-
  worker shape), ``kernel_error`` raises :class:`InjectedFault` (the
  mid-kernel exception shape).
* ``"export"`` — inside the shared-memory export of the shard's packed
  result: ``shm_poison`` raises :class:`~repro.errors.TransportError`
  before a segment is created (the failed-``/dev/shm``-export shape,
  which the worker must survive by falling back to the pickle
  transport).

Matching is exact and deterministic: a :class:`FaultSpec` names the
shard index and attempt number it fires on (``None`` wildcards either),
plus an optional firing ``probability`` drawn from a generator seeded by
``(seed, kind, shard, attempt)`` — the *same* decision in every process
and every rerun.  Determinism is the point: each recovery path is pinned
in tests with ``np.array_equal`` against a clean run, which only means
something if the failure schedule is exactly reproducible.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.errors import AnalysisError, TransportError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "KillAfterShards",
    "SERVICE_FAULT_KINDS",
    "ServiceFaultInjector",
    "ServiceFaultSpec",
]

#: The failure modes the harness can stage, and the stage each fires at.
FAULT_KINDS = ("crash", "stall", "kernel_error", "shm_poison")

_STAGE_BY_KIND = {
    "crash": "kernel",
    "stall": "kernel",
    "kernel_error": "kernel",
    "shm_poison": "export",
}


class InjectedFault(RuntimeError):
    """The exception an injected ``kernel_error`` raises mid-shard.

    Deliberately *not* a :class:`~repro.errors.ReproError`: real kernel
    failures (a NumPy error, a MemoryError) are arbitrary exceptions,
    and the driver's recovery paths must not depend on the library's own
    hierarchy.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One staged failure: what, where, and when.

    ``shard`` / ``attempt`` match the driver's shard index and 1-based
    submission count (``None`` matches any).  ``probability < 1``
    converts the spec into a seeded coin flip per ``(shard, attempt)``
    pair — deterministic chaos, for soak tests that want randomized but
    replayable failure schedules.  ``stall_s`` is how long a ``stall``
    sleeps; make it comfortably larger than the policy's
    ``shard_timeout`` so the deadline, not the stall, ends the wait.
    """

    kind: str
    shard: int | None = None
    attempt: int | None = 1
    probability: float = 1.0
    stall_s: float = 30.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise AnalysisError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise AnalysisError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.stall_s < 0.0:
            raise AnalysisError(f"stall_s must be >= 0, got {self.stall_s}")


@dataclass(frozen=True)
class FaultInjector:
    """A seeded, picklable schedule of worker-side failures.

    Built in the parent, shipped once through the pool initializer, and
    consulted by every worker at each stage of every shard attempt.
    Stateless by design — firing decisions are pure functions of
    ``(seed, spec, shard, attempt)`` — so the injector needs no
    cross-process coordination and survives pool respawns unchanged:
    a fault specified for attempt 1 does *not* re-fire when the respawned
    pool re-runs the shard as attempt 2, which is exactly how the chaos
    tests let recovery succeed.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        # Accept any iterable of specs but store a hashable tuple.
        object.__setattr__(self, "specs", tuple(self.specs))

    def _fires(self, spec: FaultSpec, shard: int, attempt: int) -> bool:
        if spec.shard is not None and spec.shard != shard:
            return False
        if spec.attempt is not None and spec.attempt != attempt:
            return False
        if spec.probability >= 1.0:
            return True
        rng = random.Random(f"{self.seed}:{spec.kind}:{shard}:{attempt}")
        return rng.random() < spec.probability

    def matching(self, stage: str, shard: int, attempt: int):
        """The specs firing at ``stage`` for this ``(shard, attempt)``."""
        return [
            spec
            for spec in self.specs
            if _STAGE_BY_KIND[spec.kind] == stage
            and self._fires(spec, shard, attempt)
        ]

    def fire(self, stage: str, shard: int, attempt: int) -> None:
        """Stage any matching failure *inside the worker process*.

        ``crash`` never returns (the process exits immediately, without
        flushing or cleanup — exactly what a SIGKILL'd or OOMed worker
        looks like to the parent pool).  ``stall`` returns after
        sleeping.  ``kernel_error`` / ``shm_poison`` raise.
        """
        for spec in self.matching(stage, shard, attempt):
            if spec.kind == "crash":
                os._exit(17)
            if spec.kind == "stall":
                time.sleep(spec.stall_s)
            elif spec.kind == "kernel_error":
                raise InjectedFault(
                    f"injected kernel fault (shard {shard}, attempt {attempt})"
                )
            elif spec.kind == "shm_poison":
                raise TransportError(
                    "injected shm export failure",
                    attempts=attempt,
                    worker_pid=os.getpid(),
                )


# --------------------------------------------------------------------------
# Checkpoint chaos (PR 9): kill the *host* process mid-sweep.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KillAfterShards:
    """SIGKILL the calling process after ``n`` shards reach the journal.

    Wire it to ``ShardedEPPEngine._checkpoint_on_store`` in a sacrificial
    subprocess: the checkpoint calls the hook *after* each shard record
    is durably on disk and *before* the shard's result is merged, so a
    fire at ``stored == n`` is the exact "power cut between journal write
    and merge" point the restart-recovery pin needs.  ``signal.SIGKILL``
    (not ``os._exit``) so no ``atexit``/``finally`` cleanup runs — the
    crashed process leaves its temp files and shm segments behind, and
    recovery must sweep them.
    """

    n: int

    def __call__(self, index: int, stored: int) -> None:
        del index
        if stored >= self.n:
            os.kill(os.getpid(), 9)


# --------------------------------------------------------------------------
# Service-level chaos (PR 8): faults staged inside the analysis service.
# --------------------------------------------------------------------------

#: The service-level failure modes:
#:
#: * ``corrupt_artifact`` — flip a byte of the request's artifact-store
#:   entry before the lookup, so the integrity check must quarantine it
#:   and the service must recompute (pinned ``np.array_equal`` to clean).
#: * ``stall_request`` — sleep inside the worker thread before the sweep
#:   (the slow-backend shape, for deadline and queue-saturation tests).
#: * ``worker_error`` — raise a synthetic
#:   :class:`~repro.errors.WorkerCrashError` before the sweep (the
#:   mid-request pool-failure shape, driving the circuit breaker without
#:   needing a live pool; pair with :class:`FaultInjector` via
#:   ``AnalysisService(engine_faults=...)`` for *real* worker crashes).
SERVICE_FAULT_KINDS = ("corrupt_artifact", "stall_request", "worker_error")


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One staged service failure.

    ``op`` matches the request op (``None``: any); ``request`` matches
    the service's 0-based admitted-request index (``None``: any).
    ``probability < 1`` is a seeded per-request coin flip, exactly like
    :class:`FaultSpec` — deterministic chaos schedules.
    """

    kind: str
    op: str | None = None
    request: int | None = None
    probability: float = 1.0
    stall_s: float = 0.2

    def __post_init__(self):
        if self.kind not in SERVICE_FAULT_KINDS:
            raise AnalysisError(
                f"unknown service fault kind {self.kind!r}; "
                f"choose from {SERVICE_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise AnalysisError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.stall_s < 0.0:
            raise AnalysisError(f"stall_s must be >= 0, got {self.stall_s}")


@dataclass(frozen=True)
class ServiceFaultInjector:
    """A seeded schedule of service-level failures.

    The :class:`~repro.server.service.AnalysisService` consults it per
    admitted request: :meth:`apply` stages the in-band faults (stall,
    synthetic worker error) at the start of request execution, and
    :meth:`should` answers side-channel questions ("corrupt this
    request's artifact entry?") the service acts on itself.  Stateless
    and deterministic, like :class:`FaultInjector`: firing is a pure
    function of ``(seed, spec, op, request index)``.
    """

    specs: tuple[ServiceFaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def _fires(self, spec: ServiceFaultSpec, op: str, index: int) -> bool:
        if spec.op is not None and spec.op != op:
            return False
        if spec.request is not None and spec.request != index:
            return False
        if spec.probability >= 1.0:
            return True
        rng = random.Random(f"{self.seed}:{spec.kind}:{op}:{index}")
        return rng.random() < spec.probability

    def matching(self, op: str, index: int):
        return [spec for spec in self.specs if self._fires(spec, op, index)]

    def should(self, kind: str, op: str, index: int) -> bool:
        """Does a ``kind`` spec fire for this request? (side-channel)"""
        return any(spec.kind == kind for spec in self.matching(op, index))

    def apply(self, stage: str, op: str, index: int) -> None:
        """Stage the in-band faults for this request (worker thread).

        ``stall_request`` sleeps, ``worker_error`` raises; the
        side-channel ``corrupt_artifact`` is queried via :meth:`should`
        instead.  ``stage`` is recorded for symmetry with
        :meth:`FaultInjector.fire` (currently only ``"request"``).
        """
        del stage
        for spec in self.matching(op, index):
            if spec.kind == "stall_request":
                time.sleep(spec.stall_s)
            elif spec.kind == "worker_error":
                from repro.errors import WorkerCrashError

                raise WorkerCrashError(
                    f"injected service worker fault (request {index})",
                    attempts=1,
                )
