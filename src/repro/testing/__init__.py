"""Deterministic test machinery shipped with the library.

* :mod:`repro.testing.faults` — the seeded fault-injection harness the
  chaos tests thread into sharded worker pools: crash a worker at a
  chosen shard, stall it past its deadline, poison a shared-memory
  export, or raise mid-kernel — every one deterministic, so each
  recovery path of :class:`~repro.core.epp_shard.ShardedEPPEngine` can
  be pinned bit-identical against a clean run.  The service-level
  counterparts (:class:`ServiceFaultInjector`) stage failures inside
  the long-lived analysis server the same way: corrupt an artifact,
  stall a request, fail a sweep.

Shipped as a package (not buried in ``tests/``) because downstream
service layers want the same harness: a deployment's smoke test can
inject the exact failure modes its runbook claims to survive.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ServiceFaultInjector,
    ServiceFaultSpec,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "ServiceFaultInjector",
    "ServiceFaultSpec",
]
