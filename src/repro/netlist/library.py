"""Embedded reference circuits.

Real benchmark circuits that are small enough to reproduce exactly from the
literature are embedded as ``.bench`` text:

* ``s27``  — the smallest ISCAS'89 sequential benchmark (4 PI, 1 PO, 3 DFF,
  10 gates including the two inverters).
* ``c17``  — the smallest ISCAS'85 combinational benchmark (5 PI, 2 PO,
  6 NAND gates).

The paper's **Figure 1** example circuit is provided by
:func:`figure1_circuit` together with the signal probabilities used in the
worked example; the golden numbers it must reproduce live in
:data:`FIGURE1_EXPECTED`.

A set of parametric teaching circuits (adders, parity trees, mux trees,
decoders, a sequential counter) rounds out the library; they are used by the
unit tests, the property-based tests and the examples.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import NetlistError
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = [
    "S27_BENCH",
    "C17_BENCH",
    "FIGURE1_SIGNAL_PROBS",
    "FIGURE1_EXPECTED",
    "s27",
    "c17",
    "figure1_circuit",
    "half_adder",
    "full_adder",
    "ripple_carry_adder",
    "parity_tree",
    "mux_tree",
    "decoder",
    "equality_comparator",
    "counter",
    "list_circuits",
    "get_circuit",
]

S27_BENCH = """\
# s27 — ISCAS'89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

C17_BENCH = """\
# c17 — ISCAS'85
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
"""


def s27() -> Circuit:
    """The ISCAS'89 s27 benchmark (sequential)."""
    return parse_bench(S27_BENCH, name="s27")


def c17() -> Circuit:
    """The ISCAS'85 c17 benchmark (combinational)."""
    return parse_bench(C17_BENCH, name="c17")


# --------------------------------------------------------------------------
# Paper Figure 1 example
# --------------------------------------------------------------------------

#: Off-path signal probabilities used by the paper's Figure 1 walkthrough.
FIGURE1_SIGNAL_PROBS: dict[str, float] = {"B": 0.2, "C": 0.3, "F": 0.7}

#: Golden EPP vector at node H for an SEU at gate A (paper Section 2):
#: P(H) = 0.042(a) + 0.392(a_bar) + 0.168(0) + 0.398(1).
FIGURE1_EXPECTED: dict[str, float] = {
    "pa": 0.042,
    "pa_bar": 0.392,
    "p0": 0.168,
    "p1": 0.398,
    "p_sensitized": 0.042 + 0.392,
}


def figure1_circuit() -> Circuit:
    """The reconvergent example circuit of the paper's Figure 1.

    Structure (reconstructed from the worked numbers in Section 2):

    * ``A`` is the error-site gate output (modeled as a primary input here —
      the SEU analysis places the erroneous value on it directly);
    * ``E = NOT(A)`` — so ``P(E) = 1(a_bar)``;
    * ``D = AND(A, B)`` with off-path ``SP_B = 0.2`` — ``P(D) = 0.2(a) + 0.8(0)``;
    * ``G = AND(E, F)`` with off-path ``SP_F = 0.7`` — ``P(G) = 0.7(a_bar) + 0.3(0)``;
    * ``H = OR(C, D, G)`` with off-path ``SP_C = 0.3`` — the reconvergent gate;
    * ``H`` is the primary output.

    The two paths A→D→H and A→E→G→H reconverge at H with opposite error
    polarities, which is exactly what the four-valued rules must handle.
    """
    circuit = Circuit("figure1")
    for name in ("A", "B", "C", "F"):
        circuit.add_input(name)
    circuit.add_gate("E", GateType.NOT, ["A"])
    circuit.add_gate("D", GateType.AND, ["A", "B"])
    circuit.add_gate("G", GateType.AND, ["E", "F"])
    circuit.add_gate("H", GateType.OR, ["C", "D", "G"])
    circuit.mark_output("H")
    circuit.compiled()
    return circuit


# --------------------------------------------------------------------------
# Parametric teaching circuits
# --------------------------------------------------------------------------


def half_adder() -> Circuit:
    """2-input half adder: sum = a XOR b, carry = a AND b."""
    circuit = Circuit("half_adder")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("sum", GateType.XOR, ["a", "b"])
    circuit.add_gate("carry", GateType.AND, ["a", "b"])
    circuit.mark_output("sum")
    circuit.mark_output("carry")
    return circuit


def full_adder(name: str = "full_adder") -> Circuit:
    """1-bit full adder built from two half adders and an OR."""
    circuit = Circuit(name)
    for pin in ("a", "b", "cin"):
        circuit.add_input(pin)
    circuit.add_gate("s1", GateType.XOR, ["a", "b"])
    circuit.add_gate("c1", GateType.AND, ["a", "b"])
    circuit.add_gate("sum", GateType.XOR, ["s1", "cin"])
    circuit.add_gate("c2", GateType.AND, ["s1", "cin"])
    circuit.add_gate("cout", GateType.OR, ["c1", "c2"])
    circuit.mark_output("sum")
    circuit.mark_output("cout")
    return circuit


def ripple_carry_adder(width: int) -> Circuit:
    """``width``-bit ripple-carry adder (a[i], b[i] -> s[i], final cout)."""
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    circuit = Circuit(f"rca{width}")
    carry = None
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        circuit.add_input(a)
        circuit.add_input(b)
        if carry is None:
            circuit.add_gate(f"s{i}", GateType.XOR, [a, b])
            circuit.add_gate(f"c{i}", GateType.AND, [a, b])
        else:
            circuit.add_gate(f"x{i}", GateType.XOR, [a, b])
            circuit.add_gate(f"s{i}", GateType.XOR, [f"x{i}", carry])
            circuit.add_gate(f"g{i}", GateType.AND, [a, b])
            circuit.add_gate(f"p{i}", GateType.AND, [f"x{i}", carry])
            circuit.add_gate(f"c{i}", GateType.OR, [f"g{i}", f"p{i}"])
        circuit.mark_output(f"s{i}")
        carry = f"c{i}"
    circuit.mark_output(carry)
    return circuit


def parity_tree(width: int) -> Circuit:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    if width < 1:
        raise NetlistError(f"parity width must be >= 1, got {width}")
    circuit = Circuit(f"parity{width}")
    layer = [circuit.add_input(f"x{i}") for i in range(width)]
    level = 0
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer) - 1, 2):
            name = f"p{level}_{i // 2}"
            circuit.add_gate(name, GateType.XOR, [layer[i], layer[i + 1]])
            next_layer.append(name)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    if circuit.node(layer[0]).gate_type is GateType.INPUT:
        circuit.add_gate("parity", GateType.BUF, [layer[0]])
        circuit.mark_output("parity")
    else:
        circuit.mark_output(layer[0])
    return circuit


def mux_tree(select_bits: int) -> Circuit:
    """A ``2**select_bits``-to-1 multiplexer built from 2:1 MUX cells."""
    if select_bits < 1:
        raise NetlistError(f"mux tree needs >= 1 select bit, got {select_bits}")
    circuit = Circuit(f"mux{1 << select_bits}")
    selects = [circuit.add_input(f"s{i}") for i in range(select_bits)]
    layer = [circuit.add_input(f"d{i}") for i in range(1 << select_bits)]
    for level, select in enumerate(selects):
        next_layer = []
        for i in range(0, len(layer), 2):
            name = f"m{level}_{i // 2}"
            circuit.add_gate(name, GateType.MUX, [select, layer[i], layer[i + 1]])
            next_layer.append(name)
        layer = next_layer
    circuit.mark_output(layer[0])
    return circuit


def decoder(address_bits: int) -> Circuit:
    """``address_bits``-to-``2**address_bits`` one-hot decoder."""
    if address_bits < 1:
        raise NetlistError(f"decoder needs >= 1 address bit, got {address_bits}")
    circuit = Circuit(f"dec{address_bits}")
    addresses = [circuit.add_input(f"a{i}") for i in range(address_bits)]
    inverted = []
    for i, addr in enumerate(addresses):
        inv = f"n{i}"
        circuit.add_gate(inv, GateType.NOT, [addr])
        inverted.append(inv)
    for row in range(1 << address_bits):
        terms = [
            addresses[bit] if (row >> bit) & 1 else inverted[bit]
            for bit in range(address_bits)
        ]
        name = f"y{row}"
        circuit.add_gate(name, GateType.AND, terms)
        circuit.mark_output(name)
    return circuit


def equality_comparator(width: int) -> Circuit:
    """``width``-bit equality comparator: eq = AND of per-bit XNORs."""
    if width < 1:
        raise NetlistError(f"comparator width must be >= 1, got {width}")
    circuit = Circuit(f"eq{width}")
    bits = []
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        circuit.add_input(a)
        circuit.add_input(b)
        name = f"e{i}"
        circuit.add_gate(name, GateType.XNOR, [a, b])
        bits.append(name)
    circuit.add_gate("eq", GateType.AND, bits)
    circuit.mark_output("eq")
    return circuit


def counter(width: int) -> Circuit:
    """``width``-bit synchronous binary up-counter with enable (sequential).

    State bit i toggles when enable and all lower bits are 1.
    """
    if width < 1:
        raise NetlistError(f"counter width must be >= 1, got {width}")
    circuit = Circuit(f"counter{width}")
    enable = circuit.add_input("en")
    carry = enable
    for i in range(width):
        q = f"q{i}"
        d = f"d{i}"
        circuit.add_gate(d, GateType.XOR, [q, carry])
        circuit.add_dff(q, d)
        circuit.mark_output(q)
        if i + 1 < width:
            nxt = f"cy{i}"
            circuit.add_gate(nxt, GateType.AND, [carry, q])
            carry = nxt
    return circuit


_REGISTRY: dict[str, Callable[[], Circuit]] = {
    "s27": s27,
    "c17": c17,
    "figure1": figure1_circuit,
    "half_adder": half_adder,
    "full_adder": full_adder,
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "parity8": lambda: parity_tree(8),
    "parity16": lambda: parity_tree(16),
    "mux8": lambda: mux_tree(3),
    "dec3": lambda: decoder(3),
    "eq8": lambda: equality_comparator(8),
    "counter4": lambda: counter(4),
}


def list_circuits() -> list[str]:
    """Names accepted by :func:`get_circuit`."""
    return sorted(_REGISTRY)


def get_circuit(name: str) -> Circuit:
    """Build a library circuit by name (fresh instance each call)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise NetlistError(
            f"unknown library circuit {name!r}; available: {', '.join(list_circuits())}"
        ) from None
    return factory()
