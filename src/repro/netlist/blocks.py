"""Parametric structured blocks: datapath and sequential building blocks.

Complements :mod:`repro.netlist.library` (tiny fixed circuits) with
generators for the shapes real designs — and SER studies — are made of:

* :func:`carry_lookahead_adder` — two-level carry logic (wide AND/OR
  terms, heavy reconvergence: a stress test for the EPP independence
  assumption);
* :func:`array_multiplier` — grade-school partial-product array with
  full-adder rows (deep, massively reconvergent, the c6288 shape);
* :func:`lfsr` — Fibonacci linear-feedback shift register (sequential,
  XOR feedback);
* :func:`shift_register` — serial-in shift chain;
* :func:`johnson_counter` — twisted-ring counter.

Every block's function is independently checkable (integer arithmetic,
known periods), which the test suite exploits.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = [
    "carry_lookahead_adder",
    "array_multiplier",
    "lfsr",
    "shift_register",
    "johnson_counter",
]


def carry_lookahead_adder(width: int) -> Circuit:
    """``width``-bit adder with fully expanded two-level carry lookahead.

    Inputs ``a{i}``, ``b{i}``; outputs ``s{i}`` and ``cout``.  Carry
    ``c_{i+1} = OR_{j<=i} (g_j AND p_{j+1} AND ... AND p_i)`` — wide gates
    whose shared generate/propagate terms reconverge at every sum bit.
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    circuit = Circuit(f"cla{width}")
    for i in range(width):
        circuit.add_input(f"a{i}")
        circuit.add_input(f"b{i}")
        circuit.add_gate(f"g{i}", GateType.AND, [f"a{i}", f"b{i}"])
        circuit.add_gate(f"p{i}", GateType.XOR, [f"a{i}", f"b{i}"])

    carry: list[str | None] = [None] * (width + 1)  # carry[i] into bit i
    for i in range(1, width + 1):
        terms = []
        for j in range(i):
            # g_j propagated through p_{j+1}..p_{i-1}
            chain = [f"g{j}"] + [f"p{k}" for k in range(j + 1, i)]
            if len(chain) == 1:
                terms.append(chain[0])
            else:
                name = f"t{i}_{j}"
                circuit.add_gate(name, GateType.AND, chain)
                terms.append(name)
        if len(terms) == 1:
            circuit.add_gate(f"c{i}", GateType.BUF, terms)
        else:
            circuit.add_gate(f"c{i}", GateType.OR, terms)

    for i in range(width):
        if i == 0:
            circuit.add_gate("s0", GateType.BUF, ["p0"])
        else:
            circuit.add_gate(f"s{i}", GateType.XOR, [f"p{i}", f"c{i}"])
        circuit.mark_output(f"s{i}")
    circuit.add_gate("cout", GateType.BUF, [f"c{width}"])
    circuit.mark_output("cout")
    circuit.compiled()
    return circuit


def array_multiplier(width: int) -> Circuit:
    """``width x width`` unsigned array multiplier (grade-school rows).

    Inputs ``a{i}``, ``b{j}``; outputs ``m0 .. m{2*width-1}``.  Built from
    AND partial products and ripple rows of full-adder cells — the same
    structure that makes c6288 the classic hard case for analysis tools.
    """
    if width < 1:
        raise NetlistError(f"multiplier width must be >= 1, got {width}")
    circuit = Circuit(f"mult{width}")
    for i in range(width):
        circuit.add_input(f"a{i}")
    for j in range(width):
        circuit.add_input(f"b{j}")
    for i in range(width):
        for j in range(width):
            circuit.add_gate(f"pp{i}_{j}", GateType.AND, [f"a{i}", f"b{j}"])

    def full_adder_cell(name: str, x: str, y: str, z: str) -> tuple[str, str]:
        """Returns (sum, carry) net names."""
        circuit.add_gate(f"{name}_x", GateType.XOR, [x, y])
        circuit.add_gate(f"{name}_s", GateType.XOR, [f"{name}_x", z])
        circuit.add_gate(f"{name}_c1", GateType.AND, [x, y])
        circuit.add_gate(f"{name}_c2", GateType.AND, [f"{name}_x", z])
        circuit.add_gate(f"{name}_c", GateType.OR, [f"{name}_c1", f"{name}_c2"])
        return f"{name}_s", f"{name}_c"

    def half_adder_cell(name: str, x: str, y: str) -> tuple[str, str]:
        circuit.add_gate(f"{name}_s", GateType.XOR, [x, y])
        circuit.add_gate(f"{name}_c", GateType.AND, [x, y])
        return f"{name}_s", f"{name}_c"

    # Row 0 is just the partial products of b0.
    row = [f"pp{i}_0" for i in range(width)]
    outputs = [row[0]]  # m0
    row = row[1:]

    for j in range(1, width):
        incoming = [f"pp{i}_{j}" for i in range(width)]
        next_row: list[str] = []
        carry: str | None = None
        for position in range(width):
            partial = incoming[position]
            accumulated = row[position] if position < len(row) else None
            operands = [s for s in (partial, accumulated, carry) if s is not None]
            cell = f"r{j}_{position}"
            if len(operands) == 1:
                next_row.append(operands[0])
                carry = None
            elif len(operands) == 2:
                total, carry = half_adder_cell(cell, *operands)
                next_row.append(total)
            else:
                total, carry = full_adder_cell(cell, *operands)
                next_row.append(total)
        if carry is not None:
            next_row.append(carry)
        outputs.append(next_row[0])  # bit j of the product
        row = next_row[1:]

    outputs.extend(row)  # the remaining high bits
    while len(outputs) < 2 * width:  # width=1: the high product bit is 0
        pad = f"const0_{len(outputs)}"
        circuit.add_const(pad, 0)
        outputs.append(pad)
    for bit, net in enumerate(outputs):
        alias = f"m{bit}"
        if net != alias:
            circuit.add_gate(alias, GateType.BUF, [net])
        circuit.mark_output(alias)
    circuit.compiled()
    return circuit


def lfsr(width: int, taps: Sequence[int] | None = None) -> Circuit:
    """Fibonacci LFSR: shift chain ``q0 <- q1 <- ... <- feedback``.

    ``taps`` lists the 1-based stages XORed into the feedback bit that
    enters at ``q{width-1}``.  The default ``(1, 2)`` is maximal-period
    (``2^width - 1``) for widths 3, 4 and 6 in this orientation; pass the
    appropriate taps for other widths.  Output is every state bit.  Note
    the all-zero state is a fixed point, as in hardware.
    """
    if width < 2:
        raise NetlistError(f"lfsr width must be >= 2, got {width}")
    taps = tuple(taps) if taps is not None else (1, 2)
    if any(not 1 <= t <= width for t in taps) or len(set(taps)) < 2:
        raise NetlistError(f"taps must be >= 2 distinct stages in 1..{width}")
    circuit = Circuit(f"lfsr{width}")
    circuit.add_input("en")  # enables observation of a running register
    tap_nets = [f"q{t - 1}" for t in taps]
    circuit.add_gate("fb", GateType.XOR, tap_nets)
    for i in range(width):
        source = f"q{i + 1}" if i + 1 < width else "fb"
        circuit.add_gate(f"d{i}", GateType.BUF, [source])
        circuit.add_dff(f"q{i}", f"d{i}")
        circuit.add_gate(f"o{i}", GateType.AND, [f"q{i}", "en"])
        circuit.mark_output(f"o{i}")
    circuit.compiled()
    return circuit


def shift_register(width: int) -> Circuit:
    """Serial-in parallel-out shift register (``sin`` shifts toward q0)."""
    if width < 1:
        raise NetlistError(f"shift register width must be >= 1, got {width}")
    circuit = Circuit(f"shift{width}")
    circuit.add_input("sin")
    previous = "sin"
    for i in range(width - 1, -1, -1):
        circuit.add_dff(f"q{i}", previous)
        previous = f"q{i}"
    for i in range(width):
        circuit.mark_output(f"q{i}")
    circuit.compiled()
    return circuit


def johnson_counter(width: int) -> Circuit:
    """Twisted-ring (Johnson) counter: period ``2*width`` from reset."""
    if width < 1:
        raise NetlistError(f"johnson width must be >= 1, got {width}")
    circuit = Circuit(f"johnson{width}")
    circuit.add_gate("nq_last", GateType.NOT, [f"q{width - 1}"])
    circuit.add_dff("q0", "nq_last")
    for i in range(1, width):
        circuit.add_dff(f"q{i}", f"q{i - 1}")
    for i in range(width):
        circuit.mark_output(f"q{i}")
    circuit.compiled()
    return circuit
