"""Seeded synthetic benchmark circuit generator.

The original ISCAS'89 netlists are not redistributable in this offline
workspace, so the Table 2 experiment runs on *profile-matched synthetic
circuits*: for each benchmark the generator reproduces the published
interface and size statistics — primary inputs/outputs, flip-flop count,
combinational gate count, approximate logic depth and a realistic gate-type
mix — while the Boolean functions themselves are random.

Why this preserves the experiment: the EPP method's accuracy is governed by
reconvergent-fanout structure and its runtime by cone sizes; the random
baseline's runtime is governed by circuit size and vector count.  None of
these depend on the specific logic functions, so a structurally matched
circuit reproduces the *shape* of Table 2 (accuracy within a few percent,
orders-of-magnitude speedup).  See DESIGN.md §4.

Everything is deterministic: the default seed is derived from the circuit
name, so ``generate_iscas("s9234")`` always returns the same netlist.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = [
    "GenerationProfile",
    "ISCAS85_PROFILES",
    "ISCAS89_PROFILES",
    "generate_circuit",
    "generate_iscas",
    "random_combinational",
]

#: Default gate-type mix, shaped after the ISCAS'89 distribution
#: (NAND/NOR-heavy with a tail of inverters and a pinch of XOR).
DEFAULT_GATE_MIX: dict[GateType, float] = {
    GateType.AND: 0.20,
    GateType.NAND: 0.21,
    GateType.OR: 0.16,
    GateType.NOR: 0.16,
    GateType.NOT: 0.19,
    GateType.BUF: 0.04,
    GateType.XOR: 0.03,
    GateType.XNOR: 0.01,
}

#: Default fanin-count distribution for multi-input gates.
DEFAULT_FANIN_DIST: dict[int, float] = {2: 0.62, 3: 0.24, 4: 0.11, 5: 0.03}


@dataclass(frozen=True)
class GenerationProfile:
    """Target statistics for one synthetic circuit.

    ``depth`` is the *approximate* target combinational depth; the generator
    ramps gate levels linearly, so the realized depth lands within a couple
    of levels of the target.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    depth: int
    gate_mix: dict[GateType, float] = field(default_factory=lambda: dict(DEFAULT_GATE_MIX))
    fanin_dist: dict[int, float] = field(default_factory=lambda: dict(DEFAULT_FANIN_DIST))

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ConfigError(f"profile {self.name!r}: need at least one input")
        if self.n_gates < 1:
            raise ConfigError(f"profile {self.name!r}: need at least one gate")
        if self.n_outputs < 1 and self.n_flip_flops < 1:
            raise ConfigError(f"profile {self.name!r}: need an output or a flip-flop")
        if self.depth < 1:
            raise ConfigError(f"profile {self.name!r}: depth must be >= 1")


#: Approximate published profiles of the Table 2 ISCAS'89 circuits
#: (PI, PO, FF, combinational gates incl. inverters, logic depth).
#: Sizes follow the commonly cited benchmark tables; small deviations do not
#: affect the experiment (see module docstring).
ISCAS89_PROFILES: dict[str, GenerationProfile] = {
    profile.name: profile
    for profile in [
        GenerationProfile("s27", 4, 1, 3, 10, 5),
        GenerationProfile("s953", 16, 23, 29, 424, 16),
        GenerationProfile("s1196", 14, 14, 18, 547, 24),
        GenerationProfile("s1238", 14, 14, 18, 526, 22),
        GenerationProfile("s1423", 17, 5, 74, 731, 59),
        GenerationProfile("s1488", 8, 19, 6, 659, 17),
        GenerationProfile("s1494", 8, 19, 6, 653, 17),
        GenerationProfile("s9234", 36, 39, 211, 5808, 58),
        GenerationProfile("s15850", 77, 150, 534, 10306, 82),
        GenerationProfile("s35932", 35, 320, 1728, 16065, 29),
        GenerationProfile("s38584", 38, 304, 1426, 19253, 56),
        GenerationProfile("s38417", 28, 106, 1636, 22179, 47),
    ]
}


#: Approximate published profiles of the ISCAS'85 combinational benchmarks
#: (PI, PO, 0 FF, gates, depth) — used for combinational-only studies and
#: the COP/EPP ablations.
ISCAS85_PROFILES: dict[str, GenerationProfile] = {
    profile.name: profile
    for profile in [
        GenerationProfile("c17", 5, 2, 0, 6, 3),
        GenerationProfile("c432", 36, 7, 0, 160, 17),
        GenerationProfile("c499", 41, 32, 0, 202, 11),
        GenerationProfile("c880", 60, 26, 0, 383, 24),
        GenerationProfile("c1355", 41, 32, 0, 546, 24),
        GenerationProfile("c1908", 33, 25, 0, 880, 40),
        GenerationProfile("c2670", 233, 140, 0, 1193, 32),
        GenerationProfile("c3540", 50, 22, 0, 1669, 47),
        GenerationProfile("c5315", 178, 123, 0, 2307, 49),
        GenerationProfile("c6288", 32, 32, 0, 2406, 124),
        GenerationProfile("c7552", 207, 108, 0, 3512, 43),
    ]
}


def _seed_from_name(name: str) -> int:
    """Stable cross-run seed (Python's hash() is salted, crc32 is not)."""
    return zlib.crc32(name.encode("utf-8"))


def generate_iscas(name: str, seed: int | None = None) -> Circuit:
    """Generate the profile-matched synthetic stand-in for an ISCAS circuit.

    Accepts both ISCAS'89 (``s*``) and ISCAS'85 (``c*``) profile names.
    """
    profile = ISCAS89_PROFILES.get(name) or ISCAS85_PROFILES.get(name)
    if profile is None:
        known = sorted(ISCAS89_PROFILES) + sorted(ISCAS85_PROFILES)
        raise ConfigError(
            f"no ISCAS profile named {name!r}; known: {', '.join(known)}"
        )
    return generate_circuit(profile, seed=seed)


def generate_circuit(profile: GenerationProfile, seed: int | None = None) -> Circuit:
    """Generate a random circuit matching ``profile``.

    Construction: primary inputs and flip-flop Q nets form level 0; gates are
    created with linearly ramped target levels so the final depth matches the
    profile.  Each gate draws one driver from the level directly below it
    (realizing the target level) and the rest from anywhere lower, with a
    bias toward not-yet-consumed signals (keeps dead logic rare) and shared
    drivers (creates reconvergent fanout).  Primary outputs and DFF D-pins
    are then chosen, preferring unconsumed deep signals.
    """
    rng = random.Random(_seed_from_name(profile.name) if seed is None else seed)
    circuit = Circuit(profile.name)

    inputs = [circuit.add_input(f"pi{i}") for i in range(profile.n_inputs)]
    ff_names = [f"ff{i}" for i in range(profile.n_flip_flops)]
    # DFF nodes are added *after* the gates (forward references are legal),
    # but their Q nets participate as level-0 drivers from the start.
    sources = inputs + ff_names

    gate_types, gate_weights = zip(*profile.gate_mix.items())
    fanin_counts, fanin_weights = zip(*profile.fanin_dist.items())

    by_level: list[list[str]] = [list(sources)]
    level_of: dict[str, int] = {name: 0 for name in sources}
    fanout_count: dict[str, int] = {name: 0 for name in sources}
    unconsumed: set[str] = set(sources)
    gate_names: list[str] = []

    max_level = max(1, profile.depth)
    for i in range(profile.n_gates):
        if profile.n_gates > 1:
            target = 1 + (i * (max_level - 1)) // (profile.n_gates - 1)
        else:
            target = 1
        target = min(target, len(by_level))  # can't exceed current frontier + 1

        gate_type = rng.choices(gate_types, weights=gate_weights, k=1)[0]
        if gate_type in (GateType.NOT, GateType.BUF):
            n_fanin = 1
        else:
            n_fanin = rng.choices(fanin_counts, weights=fanin_weights, k=1)[0]

        drivers = _pick_drivers(rng, by_level, target, n_fanin, unconsumed, fanout_count)
        name = f"g{i}"
        circuit.add_gate(name, gate_type, drivers)
        gate_names.append(name)

        realized = 1 + max(level_of[d] for d in drivers)
        level_of[name] = realized
        while len(by_level) <= realized:
            by_level.append([])
        by_level[realized].append(name)
        fanout_count[name] = 0
        unconsumed.add(name)
        for driver in drivers:
            fanout_count[driver] += 1
            unconsumed.discard(driver)

    # Sinks: prefer unconsumed gates (deepest first) so little logic is dead.
    dangling = sorted(
        (g for g in gate_names if g in unconsumed),
        key=lambda g: (-level_of[g], g),
    )
    po_pool = dangling + [g for g in gate_names if g not in unconsumed]
    if not gate_names:
        po_pool = list(sources)
    outputs = po_pool[: profile.n_outputs]
    while len(outputs) < profile.n_outputs:
        outputs.append(rng.choice(po_pool))
    for name in dict.fromkeys(outputs):  # preserve order, drop duplicates
        circuit.mark_output(name)

    remaining = [g for g in dangling if g not in set(outputs)]
    candidates = remaining + gate_names + inputs
    for k, ff_name in enumerate(ff_names):
        d_driver = candidates[k] if k < len(remaining) else rng.choice(candidates)
        circuit.add_dff(ff_name, d_driver)

    circuit.compiled()
    return circuit


def _pick_drivers(
    rng: random.Random,
    by_level: list[list[str]],
    target: int,
    n_fanin: int,
    unconsumed: set[str],
    fanout_count: dict[str, int],
) -> list[str]:
    """Choose ``n_fanin`` distinct drivers realizing (approximately) ``target``.

    One driver comes from the deepest non-empty level below ``target`` so the
    gate lands near its target level; the remainder are drawn from all lower
    levels, preferring unconsumed signals half of the time.
    """
    anchor_level = min(target - 1, len(by_level) - 1)
    while anchor_level > 0 and not by_level[anchor_level]:
        anchor_level -= 1
    anchor = rng.choice(by_level[anchor_level])
    drivers = [anchor]

    eligible: list[str] = []
    for level in range(0, min(target, len(by_level))):
        eligible.extend(by_level[level])
    attempts = 0
    while len(drivers) < n_fanin and attempts < 64:
        attempts += 1
        pick_unconsumed = unconsumed and rng.random() < 0.5
        if pick_unconsumed:
            # Cheap biased pick: sample a few candidates, keep an unconsumed
            # one if present (avoids materializing the intersection).
            candidate = None
            for _ in range(4):
                probe = rng.choice(eligible)
                if probe in unconsumed:
                    candidate = probe
                    break
            if candidate is None:
                candidate = rng.choice(eligible)
        else:
            candidate = rng.choice(eligible)
        if candidate not in drivers:
            drivers.append(candidate)
    while len(drivers) < n_fanin:
        # Tiny pools may not offer enough distinct drivers; duplicates are
        # legal (AND(x, x) is just x) and exceedingly rare in real profiles.
        drivers.append(rng.choice(eligible))
    del fanout_count
    return drivers


def random_combinational(
    n_inputs: int,
    n_gates: int,
    seed: int,
    n_outputs: int | None = None,
    depth: int | None = None,
    gate_mix: dict[GateType, float] | None = None,
) -> Circuit:
    """Small random *combinational* circuit, for tests and property checks.

    Unlike :func:`generate_circuit` this never creates flip-flops, making the
    result directly comparable against exhaustive-vector ground truth.
    """
    if depth is None:
        depth = max(2, n_gates // max(1, n_inputs))
    profile = GenerationProfile(
        name=f"rand_{n_inputs}x{n_gates}_{seed}",
        n_inputs=n_inputs,
        n_outputs=n_outputs if n_outputs is not None else max(1, n_gates // 8),
        n_flip_flops=0,
        n_gates=n_gates,
        depth=depth,
        gate_mix=dict(gate_mix) if gate_mix is not None else dict(DEFAULT_GATE_MIX),
    )
    return generate_circuit(profile, seed=seed)
