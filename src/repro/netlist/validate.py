"""Structural lint for circuits.

:func:`validate_circuit` collects *all* problems instead of stopping at the
first, so a tool run reports everything wrong with a netlist at once.
Checks performed:

* every fanin reference resolves to a defined node;
* no combinational cycles (DFF boundaries legitimately break cycles);
* gate arities are legal (also enforced at construction, re-checked here);
* every primary output names a defined node;
* no dangling combinational nodes (drive nothing and are not outputs) —
  reported as warnings, not errors, since dead logic is legal;
* at least one observable sink exists (PO or DFF), otherwise every analysis
  would be trivially zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError, ValidationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, check_arity

__all__ = ["ValidationReport", "validate_circuit"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`.

    ``errors`` make a circuit unusable; ``warnings`` are suspicious but legal
    constructs (dead logic, unused inputs).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValidationError(self.errors)


def validate_circuit(circuit: Circuit, strict: bool = False) -> ValidationReport:
    """Run all structural checks on ``circuit``.

    With ``strict=True`` a failing report raises
    :class:`~repro.errors.ValidationError` immediately.
    """
    report = ValidationReport()

    defined = set(circuit.node_names())
    for node in circuit:
        for driver in node.fanin:
            if driver not in defined:
                report.errors.append(
                    f"node {node.name!r} references undefined driver {driver!r}"
                )
        try:
            check_arity(node.gate_type, len(node.fanin), node.name)
        except NetlistError as exc:
            report.errors.append(str(exc))

    for output in circuit.outputs:
        if output not in defined:
            report.errors.append(f"OUTPUT marker names undefined node {output!r}")

    if not report.errors:
        try:
            circuit.compiled()
        except NetlistError as exc:
            report.errors.append(str(exc))

    if not report.errors:
        compiled = circuit.compiled()
        output_set = set(compiled.output_ids)
        for node_id in range(compiled.n):
            gate_type = compiled.gate_type(node_id)
            has_users = bool(compiled.fanout(node_id))
            if node_id in output_set or has_users:
                continue
            if gate_type is GateType.INPUT:
                report.warnings.append(f"unused primary input {compiled.names[node_id]!r}")
            elif gate_type.is_combinational or gate_type is GateType.DFF:
                report.warnings.append(
                    f"dead node {compiled.names[node_id]!r} "
                    f"({gate_type.value}): drives nothing and is not an output"
                )
        if not compiled.sink_ids:
            report.errors.append(
                "circuit has no observable sinks (no primary outputs and no flip-flops)"
            )

    if strict:
        report.raise_if_failed()
    return report
