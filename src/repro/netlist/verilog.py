"""Structural Verilog reader/writer (gate-level subset).

Gate-level SER flows live in two interchange formats: ISCAS ``.bench`` and
structural Verilog netlists built from primitive gates (the form the
ISCAS'89 circuits are distributed in by several benchmark mirrors).  This
module supports the structural subset those netlists use:

* one ``module``/``endmodule`` per source;
* ``input`` / ``output`` / ``wire`` declarations (comma lists, repeated
  declarations, multi-line statements);
* primitive gate instantiations with positional ports, output first:
  ``nand g1 (out, in1, in2);`` for ``and/nand/or/nor/xor/xnor/not/buf``;
* flip-flops as ``dff`` instances, positional ``(Q, D)`` or named
  ``(.Q(q), .D(d))`` ports (both appear in the wild);
* extended cells ``mux s a b`` (``mux m (out, sel, a, b);``) and odd-arity
  ``maj``, matching this library's gate alphabet;
* continuous assigns limited to aliases and constants:
  ``assign a = b;``, ``assign a = 1'b0;``.

Out of scope (rejected with a :class:`~repro.errors.ParseError` naming the
line): vectors/buses, expressions in ``assign``, parameters, hierarchy.

The writer emits exactly this subset, so write→parse round-trips.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = ["parse_verilog", "parse_verilog_file", "write_verilog"]

_PRIMITIVES: dict[str, GateType] = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "mux": GateType.MUX,
    "maj": GateType.MAJ,
    "dff": GateType.DFF,
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_MODULE_RE = re.compile(rf"^module\s+({_IDENT})\s*(?:\((.*?)\))?\s*$", re.DOTALL)
_DECL_RE = re.compile(r"^(input|output|wire)\s+(.+)$", re.DOTALL)
_INST_RE = re.compile(rf"^({_IDENT})\s+({_IDENT})\s*\((.*)\)$", re.DOTALL)
_ASSIGN_RE = re.compile(rf"^assign\s+({_IDENT})\s*=\s*(.+)$", re.DOTALL)
_NAMED_PORT_RE = re.compile(rf"^\.({_IDENT})\s*\(\s*({_IDENT})\s*\)$")
_CONST_RE = re.compile(r"^1'b([01])$")


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def _statements(text: str) -> list[tuple[str, int]]:
    """Split on ';' / 'endmodule', keeping the starting line of each statement."""
    statements: list[tuple[str, int]] = []
    buffer: list[str] = []
    start_line = 1
    line = 1
    for char in text:
        if char == "\n":
            line += 1
        if char == ";":
            statement = "".join(buffer).strip()
            if statement:
                statements.append((statement, start_line))
            buffer = []
            start_line = line
            continue
        buffer.append(char)
    tail = "".join(buffer).strip()
    if tail:
        statements.append((tail, start_line))
    return statements


def parse_verilog(text: str, name: str | None = None) -> Circuit:
    """Parse a structural Verilog module into a :class:`Circuit`.

    ``name`` overrides the module name for the returned circuit.
    """
    source = _strip_comments(text)
    statements = _statements(source)
    if not statements:
        raise ParseError("empty Verilog source")

    circuit: Circuit | None = None
    outputs: list[str] = []
    instance_count = 0
    ended = False

    for statement, line in statements:
        statement = re.sub(r"\s+", " ", statement).strip()
        if not statement:
            continue
        # 'endmodule' has no terminating ';', so it may share a statement
        # with whatever follows it.
        if statement.startswith("endmodule"):
            ended = True
            statement = statement[len("endmodule"):].strip()
            if not statement:
                continue
        if ended:
            raise ParseError("statements after endmodule", line)

        module = _MODULE_RE.match(statement)
        if module:
            if circuit is not None:
                raise ParseError("only one module per source is supported", line)
            circuit = Circuit(name if name is not None else module.group(1))
            continue
        if circuit is None:
            raise ParseError("statement before module header", line)

        declaration = _DECL_RE.match(statement)
        if declaration:
            kind, names_text = declaration.groups()
            if "[" in names_text:
                raise ParseError("vector/bus declarations are not supported", line)
            names = [n.strip() for n in names_text.split(",") if n.strip()]
            for signal in names:
                if not re.fullmatch(_IDENT, signal):
                    raise ParseError(f"bad identifier {signal!r}", line)
                if kind == "input":
                    if signal not in circuit:
                        circuit.add_input(signal)
                elif kind == "output":
                    outputs.append(signal)
                # 'wire' declarations carry no structure; drivers define nodes.
            continue

        assign = _ASSIGN_RE.match(statement)
        if assign:
            target, expression = assign.groups()
            expression = expression.strip()
            constant = _CONST_RE.match(expression)
            try:
                if constant:
                    circuit.add_const(target, int(constant.group(1)))
                elif re.fullmatch(_IDENT, expression):
                    circuit.add_gate(target, GateType.BUF, [expression])
                else:
                    raise ParseError(
                        f"only alias/constant assigns are supported, got {expression!r}",
                        line,
                    )
            except ParseError:
                raise
            except Exception as exc:
                raise ParseError(str(exc), line) from exc
            continue

        instance = _INST_RE.match(statement)
        if instance:
            keyword, _instance_name, ports_text = instance.groups()
            gate_type = _PRIMITIVES.get(keyword.lower())
            if gate_type is None:
                raise ParseError(f"unknown primitive {keyword!r}", line)
            ports = [p.strip() for p in ports_text.split(",") if p.strip()]
            if not ports:
                raise ParseError(f"instance {keyword} has no ports", line)
            instance_count += 1
            try:
                _add_instance(circuit, gate_type, ports, line)
            except ParseError:
                raise
            except Exception as exc:
                raise ParseError(str(exc), line) from exc
            continue

        raise ParseError(f"unrecognized statement: {statement[:60]!r}", line)

    if circuit is None:
        raise ParseError("no module found")
    if not ended:
        raise ParseError("missing endmodule")
    for signal in outputs:
        if signal not in circuit:
            raise ParseError(f"output {signal!r} is never driven")
        circuit.mark_output(signal)
    try:
        circuit.compiled()
    except Exception as exc:
        raise ParseError(str(exc)) from exc
    return circuit


def _add_instance(circuit: Circuit, gate_type: GateType, ports: list[str], line: int) -> None:
    named = [_NAMED_PORT_RE.match(port) for port in ports]
    if any(named):
        if not all(named):
            raise ParseError("cannot mix named and positional ports", line)
        if gate_type is not GateType.DFF:
            raise ParseError("named ports are only supported on dff instances", line)
        by_name = {m.group(1).upper(): m.group(2) for m in named}
        missing = {"Q", "D"} - set(by_name)
        if missing:
            raise ParseError(f"dff instance missing port(s) {sorted(missing)}", line)
        circuit.add_dff(by_name["Q"], by_name["D"])
        return
    out, *fanin = ports
    if gate_type is GateType.DFF:
        if len(fanin) != 1:
            raise ParseError("dff takes exactly (Q, D)", line)
        circuit.add_dff(out, fanin[0])
    else:
        circuit.add_gate(out, gate_type, fanin)


def parse_verilog_file(path: str | Path, name: str | None = None) -> Circuit:
    """Parse a structural Verilog file (circuit name defaults to the module's)."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), name=name)


def write_verilog(circuit: Circuit, path: str | Path | None = None) -> str:
    """Serialize a circuit as a structural Verilog module.

    Round-trips with :func:`parse_verilog` (constants become assigns; MUX
    and MAJ use the extended ``mux``/``maj`` primitives).
    """
    buffer = io.StringIO()
    module_name = re.sub(r"[^A-Za-z0-9_$]", "_", circuit.name) or "top"
    if not re.match(r"[A-Za-z_]", module_name):
        module_name = "m_" + module_name
    port_list = circuit.inputs + circuit.outputs
    buffer.write(f"// generated by repro.netlist.verilog\n")
    buffer.write(f"module {module_name} ({', '.join(port_list)});\n")
    if circuit.inputs:
        buffer.write(f"  input {', '.join(circuit.inputs)};\n")
    if circuit.outputs:
        buffer.write(f"  output {', '.join(circuit.outputs)};\n")
    interior = [
        node.name
        for node in circuit
        if node.gate_type is not GateType.INPUT and node.name not in circuit.outputs
    ]
    if interior:
        buffer.write(f"  wire {', '.join(interior)};\n")
    buffer.write("\n")

    index = 0
    for node in circuit:
        if node.gate_type is GateType.INPUT:
            continue
        if node.gate_type is GateType.CONST0:
            buffer.write(f"  assign {node.name} = 1'b0;\n")
            continue
        if node.gate_type is GateType.CONST1:
            buffer.write(f"  assign {node.name} = 1'b1;\n")
            continue
        keyword = node.gate_type.value.lower()
        ports = ", ".join((node.name,) + node.fanin)
        buffer.write(f"  {keyword} U{index} ({ports});\n")
        index += 1
    buffer.write("endmodule\n")
    text = buffer.getvalue()
    if path is not None:
        with open(Path(path), "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
