"""The :class:`Circuit` container and its compiled integer-array views.

Design
------
``Circuit`` is the friendly, name-based API: nodes are looked up by string
name, mutation methods validate as they go, and structure queries (fanout,
levels, topological order) are computed lazily and cached.

The analysis engines never walk the name-based structure.  They call
:meth:`Circuit.compiled` to obtain a :class:`CompiledCircuit`: a frozen
snapshot holding flat integer arrays (gate codes, CSR fanin/fanout,
topological order).  Hot loops index Python lists by int, which is the
fastest dispatch available without native code.

Terminology used throughout the library:

* *source* nodes drive values into the combinational network: primary
  inputs, constants, and DFF outputs (a DFF's Q pin is a source for the
  current cycle).
* *sink* signals are observed: primary outputs and DFF inputs (D pins).
* the *combinational interior* is everything else.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import NetlistError
from repro.netlist.gate_types import (
    GATE_CODES,
    GateType,
    check_arity,
    eval_gate_bool,
)

__all__ = ["Node", "Circuit", "CompiledCircuit"]


@dataclass(frozen=True)
class Node:
    """One named node: a primary input, constant, logic gate, or DFF.

    ``fanin`` holds driver *names* in pin order.  Node objects are immutable;
    mutating a circuit replaces the node.
    """

    name: str
    gate_type: GateType
    fanin: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        check_arity(self.gate_type, len(self.fanin), self.name)


class Circuit:
    """A gate-level netlist with named nodes.

    Nodes are created through :meth:`add_input`, :meth:`add_gate`,
    :meth:`add_dff` and :meth:`add_const`; output markers through
    :meth:`mark_output`.  Forward references are allowed while building —
    a gate may name a fanin that is added later — and are checked when the
    circuit is compiled or validated.

    Parameters
    ----------
    name:
        Circuit name, used in reports and as the default generator seed.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._outputs: list[str] = []
        self._mutation = 0
        self._compiled: CompiledCircuit | None = None
        self._compiled_mutation = -1

    # ------------------------------------------------------------------ build

    def _add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise NetlistError(f"duplicate node name {node.name!r} in circuit {self.name!r}")
        if not node.name:
            raise NetlistError("node names must be non-empty strings")
        self._nodes[node.name] = node
        self._mutation += 1

    def add_input(self, name: str) -> str:
        """Declare a primary input. Returns the name for chaining."""
        self._add_node(Node(name, GateType.INPUT))
        return name

    def add_const(self, name: str, value: int) -> str:
        """Declare a constant-0 or constant-1 source node."""
        if value not in (0, 1):
            raise NetlistError(f"constant node {name!r} must be 0 or 1, got {value!r}")
        gate_type = GateType.CONST1 if value else GateType.CONST0
        self._add_node(Node(name, gate_type))
        return name

    def add_gate(self, name: str, gate_type: GateType | str, fanin: Sequence[str]) -> str:
        """Add a combinational gate driven by ``fanin`` (driver names, in pin order)."""
        if isinstance(gate_type, str):
            try:
                gate_type = GateType[gate_type.upper()]
            except KeyError:
                raise NetlistError(f"unknown gate type {gate_type!r} for node {name!r}") from None
        if not gate_type.is_combinational:
            raise NetlistError(
                f"add_gate({name!r}): {gate_type.value} is not a combinational gate; "
                "use add_input/add_dff/add_const"
            )
        self._add_node(Node(name, gate_type, tuple(fanin)))
        return name

    def add_dff(self, name: str, d_input: str) -> str:
        """Add a D flip-flop. ``name`` is the Q output net, ``d_input`` the D pin driver."""
        self._add_node(Node(name, GateType.DFF, (d_input,)))
        return name

    def mark_output(self, name: str) -> str:
        """Mark a node as a primary output. Idempotent; order of first marking is kept."""
        if name not in self._outputs:
            self._outputs.append(name)
            self._mutation += 1
        return name

    def remove_node(self, name: str) -> None:
        """Remove a node. Fails if any other node still references it as fanin."""
        if name not in self._nodes:
            raise NetlistError(f"cannot remove unknown node {name!r}")
        users = [n.name for n in self._nodes.values() if name in n.fanin]
        if users:
            raise NetlistError(
                f"cannot remove {name!r}: still drives {len(users)} node(s), e.g. {users[:3]}"
            )
        del self._nodes[name]
        if name in self._outputs:
            self._outputs.remove(name)
        self._mutation += 1

    def replace_fanin(self, name: str, old: str, new: str) -> None:
        """Rewire every occurrence of ``old`` in ``name``'s fanin to ``new``."""
        node = self.node(name)
        if old not in node.fanin:
            raise NetlistError(f"{old!r} is not a fanin of {name!r}")
        fanin = tuple(new if f == old else f for f in node.fanin)
        self._nodes[name] = Node(node.name, node.gate_type, fanin)
        self._mutation += 1

    def replace_gate(
        self,
        name: str,
        gate_type: GateType | str | None = None,
        fanin: Sequence[str] | None = None,
    ) -> str:
        """Swap an existing combinational gate's type and/or fanin in place.

        The node keeps its name, its declaration-order position and its
        output marking; every user keeps referencing it unchanged.  Only
        combinational gates can be replaced (inputs, constants and DFFs
        have structural roles an in-place swap would silently break).
        """
        node = self.node(name)
        if not node.gate_type.is_combinational:
            raise NetlistError(
                f"replace_gate({name!r}): only combinational gates can be "
                f"replaced, not {node.gate_type.value}"
            )
        if gate_type is None:
            gate_type = node.gate_type
        elif isinstance(gate_type, str):
            try:
                gate_type = GateType[gate_type.upper()]
            except KeyError:
                raise NetlistError(
                    f"unknown gate type {gate_type!r} for node {name!r}"
                ) from None
        if not gate_type.is_combinational:
            raise NetlistError(
                f"replace_gate({name!r}): {gate_type.value} is not a "
                "combinational gate"
            )
        new_fanin = node.fanin if fanin is None else tuple(fanin)
        self._nodes[name] = Node(name, gate_type, new_fanin)
        self._mutation += 1
        return name

    @property
    def mutation_token(self) -> int:
        """Monotonic edit counter — changes whenever the circuit mutates.

        Consumers holding derived state (a compiled view, an analysis
        engine) capture the token at build time and compare later to
        detect that their snapshot went stale.
        """
        return self._mutation

    # ------------------------------------------------------------------ query

    def node(self, name: str) -> Node:
        """Look up a node by name (raises :class:`NetlistError` if absent)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r} in circuit {self.name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def inputs(self) -> list[str]:
        """Primary input names, in declaration order."""
        return [n.name for n in self._nodes.values() if n.gate_type is GateType.INPUT]

    @property
    def outputs(self) -> list[str]:
        """Primary output names, in marking order."""
        return list(self._outputs)

    @property
    def flip_flops(self) -> list[str]:
        """DFF (Q net) names, in declaration order."""
        return [n.name for n in self._nodes.values() if n.gate_type is GateType.DFF]

    @property
    def gates(self) -> list[str]:
        """Combinational gate names, in declaration order."""
        return [n.name for n in self._nodes.values() if n.gate_type.is_combinational]

    @property
    def is_sequential(self) -> bool:
        return any(n.gate_type is GateType.DFF for n in self._nodes.values())

    def fanout_map(self) -> dict[str, list[str]]:
        """Map from node name to the names of nodes it drives (pin duplicates kept once)."""
        fanout: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            seen: set[str] = set()
            for driver in node.fanin:
                if driver in fanout and driver not in seen:
                    fanout[driver].append(node.name)
                    seen.add(driver)
        return fanout

    # --------------------------------------------------------------- compiled

    def compiled(self) -> CompiledCircuit:
        """Return the cached compiled view, rebuilding it if the circuit changed."""
        if self._compiled is None or self._compiled_mutation != self._mutation:
            self._compiled = CompiledCircuit(self)
            self._compiled_mutation = self._mutation
        return self._compiled

    def topological_order(self) -> list[str]:
        """Node names in combinational topological order (sources first).

        DFFs appear as sources (their Q value is available at cycle start);
        their D fanin does not constrain their position.
        """
        compiled = self.compiled()
        return [compiled.names[i] for i in compiled.topo]

    def levels(self) -> dict[str, int]:
        """Combinational level per node (sources at level 0)."""
        compiled = self.compiled()
        return {compiled.names[i]: compiled.level[i] for i in range(compiled.n)}

    def depth(self) -> int:
        """Maximum combinational level in the circuit."""
        compiled = self.compiled()
        return max(compiled.level, default=0)

    # ------------------------------------------------------------- evaluation

    def evaluate(self, assignment: Mapping[str, int]) -> dict[str, int]:
        """Evaluate the combinational network for one input assignment.

        ``assignment`` must provide a 0/1 value for every primary input and —
        if the circuit is sequential — for every DFF output (the current
        state).  Returns values for every node.  This is the slow reference
        evaluator used by tests; simulation workloads should use
        :mod:`repro.sim.logic_sim`.
        """
        compiled = self.compiled()
        values: list[int] = [0] * compiled.n
        for i in compiled.topo:
            gate_type = compiled.gate_type(i)
            if gate_type is GateType.INPUT or gate_type is GateType.DFF:
                name = compiled.names[i]
                if name not in assignment:
                    kind = "input" if gate_type is GateType.INPUT else "state (DFF)"
                    raise NetlistError(f"evaluate: missing {kind} value for {name!r}")
                value = int(assignment[name])
                if value not in (0, 1):
                    raise NetlistError(f"evaluate: {name!r} must be 0/1, got {value!r}")
                values[i] = value
            else:
                fanin_values = [values[j] for j in compiled.fanin(i)]
                values[i] = eval_gate_bool(gate_type, fanin_values)
        return {compiled.names[i]: values[i] for i in range(compiled.n)}

    # ---------------------------------------------------------------- utility

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep-enough copy (nodes are immutable, so sharing them is safe)."""
        clone = Circuit(name if name is not None else self.name)
        clone._nodes = dict(self._nodes)
        clone._outputs = list(self._outputs)
        return clone

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}: {len(self.inputs)} PI, {len(self._outputs)} PO, "
            f"{len(self.flip_flops)} DFF, {len(self.gates)} gates)"
        )


class CompiledCircuit:
    """Frozen integer-array snapshot of a :class:`Circuit`.

    Attributes (all plain Python lists; indexing a list by int is the fastest
    per-element access in CPython):

    * ``n`` — node count; node ids are ``0..n-1`` in declaration order.
    * ``names`` / ``index`` — id↔name maps.
    * ``code`` — gate code per node (see :mod:`repro.netlist.gate_types`).
    * ``fanin_ptr`` / ``fanin_flat`` — CSR fanin ids (pin order preserved).
    * ``fanout_ptr`` / ``fanout_flat`` — CSR fanout ids (deduplicated).
    * ``topo`` — node ids in combinational topological order, sources first.
    * ``level`` — combinational level per node (sources = 0).
    * ``output_ids`` — primary output ids in marking order.
    * ``input_ids`` / ``dff_ids`` — source ids in declaration order.
    * ``sink_ids`` — observation points: POs followed by DFF D-pin drivers
      (deduplicated, order stable).  An SEU is *observable* iff it reaches a
      sink, matching the paper's "primary outputs or flip-flops".
    """

    def __init__(self, circuit: Circuit):
        nodes = list(circuit)
        self.n = len(nodes)
        self.names: list[str] = [node.name for node in nodes]
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self._types: list[GateType] = [node.gate_type for node in nodes]
        self.code: list[int] = [GATE_CODES[node.gate_type] for node in nodes]

        # CSR fanin (also validates that every referenced driver exists).
        self.fanin_ptr: list[int] = [0]
        self.fanin_flat: list[int] = []
        for node in nodes:
            for driver in node.fanin:
                driver_id = self.index.get(driver)
                if driver_id is None:
                    raise NetlistError(
                        f"node {node.name!r} references unknown driver {driver!r}"
                    )
                self.fanin_flat.append(driver_id)
            self.fanin_ptr.append(len(self.fanin_flat))

        # CSR fanout, deduplicated per (driver, user) pair.
        fanout_lists: list[list[int]] = [[] for _ in range(self.n)]
        for user_id in range(self.n):
            seen: set[int] = set()
            for driver_id in self.fanin(user_id):
                if driver_id not in seen:
                    fanout_lists[driver_id].append(user_id)
                    seen.add(driver_id)
        self.fanout_ptr = [0]
        self.fanout_flat: list[int] = []
        for lst in fanout_lists:
            self.fanout_flat.extend(lst)
            self.fanout_ptr.append(len(self.fanout_flat))

        self.input_ids: list[int] = [
            i for i, t in enumerate(self._types) if t is GateType.INPUT
        ]
        self.dff_ids: list[int] = [i for i, t in enumerate(self._types) if t is GateType.DFF]
        self.output_ids: list[int] = [self.index[name] for name in circuit.outputs]

        self.topo, self.level = self._toposort(nodes)

        sink_ids: list[int] = []
        sink_seen: set[int] = set()
        for out_id in self.output_ids:
            if out_id not in sink_seen:
                sink_ids.append(out_id)
                sink_seen.add(out_id)
        for dff_id in self.dff_ids:
            d_driver = self.fanin(dff_id)[0]
            if d_driver not in sink_seen:
                sink_ids.append(d_driver)
                sink_seen.add(d_driver)
        self.sink_ids = sink_ids

    # -- pickling -----------------------------------------------------------

    #: Attributes holding lazily-built execution plans cached on the
    #: compiled circuit by the vectorized engines: the batch EPP plan, the
    #: level-parallel SP plan, and the cone-scheduling index
    #: (:class:`~repro.core.schedule.ConeIndex`).  They contain kernel
    #: closures or derived structure and are cheap to rebuild, so pickling
    #: drops them — this is what lets a compiled circuit cross a process
    #: boundary once and be re-planned inside each worker
    #: (:mod:`repro.core.epp_shard`).
    _PLAN_CACHE_ATTRS = ("_batch_epp_plan", "_sp_level_plan", "_cone_index")

    def __getstate__(self):
        state = self.__dict__.copy()
        for attr in self._PLAN_CACHE_ATTRS:
            state.pop(attr, None)
        return state

    # -- small accessors ----------------------------------------------------

    def fanin(self, node_id: int) -> list[int]:
        return self.fanin_flat[self.fanin_ptr[node_id] : self.fanin_ptr[node_id + 1]]

    def fanout(self, node_id: int) -> list[int]:
        return self.fanout_flat[self.fanout_ptr[node_id] : self.fanout_ptr[node_id + 1]]

    def gate_type(self, node_id: int) -> GateType:
        return self._types[node_id]

    def is_source(self, node_id: int) -> bool:
        gate_type = self._types[node_id]
        return gate_type.is_source or gate_type is GateType.DFF

    # -- topology -----------------------------------------------------------

    def level_gate_groups(
        self,
        merge_codes: frozenset[int] | set[int],
        pad_one_codes: frozenset[int] | set[int],
    ) -> list[tuple[int, int, list[int], list[list[int]], int]]:
        """Combinational gates bucketed into rectangular per-level blocks.

        The common execution-plan shape of the vectorized engines (the
        batch EPP backend and the level-parallel SP pass): gates grouped by
        ``(level, gate code)`` — per exact arity normally, with mixed
        arities of ``merge_codes`` sharing one block via sentinel padding.
        Short fanin rows of merged blocks are padded to the block width
        with sentinel node id ``n`` (a constant-1 input, for codes in
        ``pad_one_codes``) or ``n + 1`` (constant 0); padding with a
        kernel's exact neutral element is a float identity, so consumers
        lose no precision.  Returns ``(level, code, out_ids, fanin_rows,
        width)`` tuples sorted by level; ``fanin_rows`` is rectangular.
        """
        one_id, zero_id = self.n, self.n + 1
        buckets: dict[tuple, tuple[list[int], list[list[int]]]] = {}
        for node_id in range(self.n):
            if not self.gate_type(node_id).is_combinational:
                continue
            pins = self.fanin(node_id)
            code = self.code[node_id]
            arity = -1 if code in merge_codes else len(pins)
            outs, fins = buckets.setdefault(
                (self.level[node_id], code, arity), ([], [])
            )
            outs.append(node_id)
            fins.append(pins)
        groups = []
        for (level, code, arity), (outs, fins) in sorted(buckets.items()):
            width = max(len(pins) for pins in fins)
            if arity == -1 and any(len(pins) != width for pins in fins):
                pad = one_id if code in pad_one_codes else zero_id
                fins = [pins + [pad] * (width - len(pins)) for pins in fins]
            groups.append((level, code, outs, fins, width))
        return groups

    def _toposort(self, nodes: list[Node]) -> tuple[list[int], list[int]]:
        """Kahn's algorithm over combinational edges.

        DFF nodes have no combinational in-edges (their D dependency crosses
        a cycle boundary), so they seed the frontier together with inputs and
        constants.  A nonempty remainder means a combinational cycle.
        """
        indegree = [0] * self.n
        for node_id in range(self.n):
            if self._types[node_id].is_combinational:
                # Count *unique* drivers to mirror the deduplicated fanout
                # edges (a gate may legally list the same driver twice).
                indegree[node_id] = len(set(self.fanin(node_id)))
        order: list[int] = []
        level = [0] * self.n
        frontier = [
            i
            for i in range(self.n)
            if indegree[i] == 0 and not self._types[i].is_combinational
        ]
        frontier += [
            i for i in range(self.n) if self._types[i].is_combinational and indegree[i] == 0
        ]
        head = 0
        order.extend(frontier)
        while head < len(order):
            node_id = order[head]
            head += 1
            for user_id in self.fanout(node_id):
                if not self._types[user_id].is_combinational:
                    continue  # DFF D-pin edge: crosses the clock boundary
                indegree[user_id] -= 1
                if level[user_id] < level[node_id] + 1:
                    level[user_id] = level[node_id] + 1
                if indegree[user_id] == 0:
                    order.append(user_id)
        if len(order) != self.n:
            stuck = [self.names[i] for i in range(self.n) if indegree[i] > 0][:5]
            raise NetlistError(
                f"combinational cycle detected involving nodes {stuck} "
                f"({self.n - len(order)} node(s) unordered)"
            )
        return order, level
