"""Reader/writer for the ISCAS ``.bench`` netlist format.

The format (as used by the ISCAS'85/'89 distributions) is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)

Accepted gate keywords are case-insensitive: AND, NAND, OR, NOR, XOR, XNOR,
NOT, BUF/BUFF, DFF, MUX, MAJ, plus the constant aliases GND/CONST0 and
VCC/CONST1.  Output declarations may precede the definition of the node they
name; gates may reference drivers defined later in the file.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = ["parse_bench", "parse_bench_file", "write_bench"]

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$"
)

_TYPE_ALIASES: dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "MUX": GateType.MUX,
    "MAJ": GateType.MAJ,
    "GND": GateType.CONST0,
    "CONST0": GateType.CONST0,
    "VCC": GateType.CONST1,
    "CONST1": GateType.CONST1,
}

_BENCH_NAMES: dict[GateType, str] = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.MUX: "MUX",
    GateType.MAJ: "MAJ",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Raises :class:`~repro.errors.ParseError` with a line number on malformed
    input, and :class:`~repro.errors.NetlistError` on structural problems
    (duplicate definitions, unknown drivers) discovered while building.
    """
    circuit = Circuit(name)
    outputs: list[tuple[str, int]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        decl = _DECL_RE.match(line)
        if decl:
            keyword, signal = decl.group(1).upper(), decl.group(2)
            if keyword == "INPUT":
                if signal in circuit:
                    raise ParseError(f"duplicate INPUT({signal})", line_number)
                circuit.add_input(signal)
            else:
                outputs.append((signal, line_number))
            continue

        assign = _ASSIGN_RE.match(line)
        if assign:
            target, keyword, arg_text = assign.groups()
            gate_type = _TYPE_ALIASES.get(keyword.upper())
            if gate_type is None:
                raise ParseError(f"unknown gate type {keyword!r}", line_number)
            args = [a.strip() for a in arg_text.split(",")] if arg_text.strip() else []
            args = [a for a in args if a]
            try:
                if gate_type is GateType.DFF:
                    if len(args) != 1:
                        raise ParseError(
                            f"DFF takes exactly one input, got {len(args)}", line_number
                        )
                    circuit.add_dff(target, args[0])
                elif gate_type in (GateType.CONST0, GateType.CONST1):
                    if args:
                        raise ParseError("constants take no inputs", line_number)
                    circuit.add_const(target, 1 if gate_type is GateType.CONST1 else 0)
                else:
                    circuit.add_gate(target, gate_type, args)
            except ParseError:
                raise
            except Exception as exc:  # NetlistError with line context
                raise ParseError(str(exc), line_number) from exc
            continue

        raise ParseError(f"unrecognized statement: {line!r}", line_number)

    for signal, line_number in outputs:
        if signal not in circuit:
            raise ParseError(f"OUTPUT({signal}) names an undefined signal", line_number)
        circuit.mark_output(signal)

    # Force driver resolution now so a broken file fails at parse time.
    try:
        circuit.compiled()
    except ParseError:
        raise
    except Exception as exc:
        raise ParseError(str(exc)) from exc
    return circuit


def parse_bench_file(path: str | Path, name: str | None = None) -> Circuit:
    """Parse a ``.bench`` file; the circuit name defaults to the file stem."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_bench(text, name=name if name is not None else path.stem)


def write_bench(circuit: Circuit, path: str | Path | None = None) -> str:
    """Serialize a circuit to ``.bench`` text; optionally also write ``path``.

    Round-trips with :func:`parse_bench` (modulo comment lines).
    """
    buffer = io.StringIO()
    buffer.write(f"# {circuit.name}\n")
    buffer.write(
        f"# {len(circuit.inputs)} inputs, {len(circuit.outputs)} outputs, "
        f"{len(circuit.flip_flops)} flip-flops, {len(circuit.gates)} gates\n"
    )
    for name in circuit.inputs:
        buffer.write(f"INPUT({name})\n")
    for name in circuit.outputs:
        buffer.write(f"OUTPUT({name})\n")
    buffer.write("\n")
    for node in circuit:
        if node.gate_type is GateType.INPUT:
            continue
        keyword = _BENCH_NAMES[node.gate_type]
        buffer.write(f"{node.name} = {keyword}({', '.join(node.fanin)})\n")
    text = buffer.getvalue()
    if path is not None:
        with open(Path(path), "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
