"""The gate alphabet: types, arities, controlling values and evaluation.

Two views of every gate type coexist:

* :class:`GateType` — a friendly :class:`enum.Enum` used by the public API,
  the ``.bench`` parser and everything that handles circuits by name.
* integer *gate codes* (module constants ``CODE_AND`` ...) — used by the
  compiled circuit views so the hot loops (logic simulation, EPP) dispatch on
  plain ints instead of enum members.

Evaluation is provided at three granularities:

* :func:`eval_gate_bool` — single boolean vector, reference semantics.
* :func:`eval_gate_word` — bit-parallel over arbitrary-width Python ints
  (W simulation patterns per call).
* :func:`truth_table` — the full truth table of a gate as a tuple of output
  bits, used by the generic EPP rule and the BDD builder.

The alphabet covers the ISCAS ``.bench`` vocabulary (AND, NAND, OR, NOR, NOT,
BUFF, DFF) plus XOR/XNOR (present in several ISCAS'85 netlists), constants,
and two extended cells used by the hardening flow and examples: a 2:1 MUX
(``MUX(sel, a, b)`` = ``a`` when ``sel`` is 0, else ``b``) and a majority
voter ``MAJ`` (odd arity; used by the TMR transform).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.errors import NetlistError

__all__ = [
    "GateType",
    "GATE_CODES",
    "CODE_INPUT",
    "CODE_AND",
    "CODE_NAND",
    "CODE_OR",
    "CODE_NOR",
    "CODE_XOR",
    "CODE_XNOR",
    "CODE_NOT",
    "CODE_BUF",
    "CODE_DFF",
    "CODE_CONST0",
    "CODE_CONST1",
    "CODE_MUX",
    "CODE_MAJ",
    "eval_gate_bool",
    "eval_gate_word",
    "truth_table",
    "check_arity",
]


class GateType(enum.Enum):
    """Every node kind a :class:`~repro.netlist.circuit.Circuit` may hold.

    ``INPUT`` and ``DFF`` are node kinds rather than logic gates: an INPUT has
    no fanin and a DFF has exactly one (its D pin).  The analysis engines cut
    circuits at DFF boundaries, so DFFs never appear inside a combinational
    evaluation.
    """

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    MUX = "MUX"
    MAJ = "MAJ"

    @property
    def is_sequential(self) -> bool:
        """True for state-holding elements (only DFF in this alphabet)."""
        return self is GateType.DFF

    @property
    def is_source(self) -> bool:
        """True for nodes that take no fanin (inputs and constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    @property
    def is_combinational(self) -> bool:
        """True for ordinary logic gates (everything but INPUT/DFF/consts)."""
        return not self.is_source and not self.is_sequential

    @property
    def inverting(self) -> bool:
        """True if the gate inverts the parity of a single propagating error.

        Only meaningful for gates where a single input change always flips
        through with fixed parity (NOT/BUF and the N-variants at their
        controlling-value-free point); used by diagnostics, not the EPP rules.
        """
        return self in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)

    @property
    def controlling_value(self) -> int | None:
        """The input value that forces the output regardless of other inputs.

        0 for AND/NAND, 1 for OR/NOR, ``None`` for gates without one
        (XOR/XNOR/NOT/BUF/MUX/MAJ and non-gates).
        """
        if self in (GateType.AND, GateType.NAND):
            return 0
        if self in (GateType.OR, GateType.NOR):
            return 1
        return None

    def arity_range(self) -> tuple[int, int | None]:
        """(min_arity, max_arity) — ``None`` max means unbounded."""
        return _ARITY[self]


_ARITY: dict[GateType, tuple[int, int | None]] = {
    GateType.INPUT: (0, 0),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.DFF: (1, 1),
    GateType.AND: (1, None),
    GateType.NAND: (1, None),
    GateType.OR: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
    GateType.MUX: (3, 3),
    GateType.MAJ: (3, None),  # odd arity enforced in check_arity
}

# Integer gate codes for the compiled views.  Order is stable and part of the
# on-disk/compiled-view contract; append only.
CODE_INPUT = 0
CODE_AND = 1
CODE_NAND = 2
CODE_OR = 3
CODE_NOR = 4
CODE_XOR = 5
CODE_XNOR = 6
CODE_NOT = 7
CODE_BUF = 8
CODE_DFF = 9
CODE_CONST0 = 10
CODE_CONST1 = 11
CODE_MUX = 12
CODE_MAJ = 13

GATE_CODES: dict[GateType, int] = {
    GateType.INPUT: CODE_INPUT,
    GateType.AND: CODE_AND,
    GateType.NAND: CODE_NAND,
    GateType.OR: CODE_OR,
    GateType.NOR: CODE_NOR,
    GateType.XOR: CODE_XOR,
    GateType.XNOR: CODE_XNOR,
    GateType.NOT: CODE_NOT,
    GateType.BUF: CODE_BUF,
    GateType.DFF: CODE_DFF,
    GateType.CONST0: CODE_CONST0,
    GateType.CONST1: CODE_CONST1,
    GateType.MUX: CODE_MUX,
    GateType.MAJ: CODE_MAJ,
}

CODE_TO_TYPE: dict[int, GateType] = {code: gt for gt, code in GATE_CODES.items()}


def check_arity(gate_type: GateType, n_inputs: int, node_name: str = "?") -> None:
    """Raise :class:`NetlistError` unless ``n_inputs`` is legal for the type."""
    lo, hi = gate_type.arity_range()
    if n_inputs < lo or (hi is not None and n_inputs > hi):
        bound = f"exactly {lo}" if lo == hi else f"at least {lo}"
        if hi is not None and lo != hi:
            bound = f"between {lo} and {hi}"
        raise NetlistError(
            f"node {node_name!r}: {gate_type.value} takes {bound} input(s), got {n_inputs}"
        )
    if gate_type is GateType.MAJ and n_inputs % 2 == 0:
        raise NetlistError(
            f"node {node_name!r}: MAJ needs an odd number of inputs, got {n_inputs}"
        )


def eval_gate_bool(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate one gate on scalar 0/1 inputs.  Reference semantics.

    DFF evaluates as a transparent buffer here; sequential behaviour is the
    simulator's job, not the gate function's.
    """
    if gate_type is GateType.AND:
        return int(all(inputs))
    if gate_type is GateType.NAND:
        return int(not all(inputs))
    if gate_type is GateType.OR:
        return int(any(inputs))
    if gate_type is GateType.NOR:
        return int(not any(inputs))
    if gate_type is GateType.XOR:
        return _parity(inputs)
    if gate_type is GateType.XNOR:
        return 1 - _parity(inputs)
    if gate_type is GateType.NOT:
        return 1 - inputs[0]
    if gate_type in (GateType.BUF, GateType.DFF):
        return inputs[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type is GateType.MUX:
        sel, a, b = inputs
        return b if sel else a
    if gate_type is GateType.MAJ:
        return int(sum(inputs) * 2 > len(inputs))
    raise NetlistError(f"cannot evaluate node kind {gate_type.value}")


def _parity(inputs: Sequence[int]) -> int:
    acc = 0
    for value in inputs:
        acc ^= value
    return acc & 1


def eval_gate_word(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Bit-parallel gate evaluation over Python-int words.

    Each bit position of the word is an independent simulation pattern;
    ``mask`` is the all-ones word for the active width (needed to express
    NOT without infinite sign extension).
    """
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        acc = mask
        for word in inputs:
            acc &= word
        return acc if gate_type is GateType.AND else acc ^ mask
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        acc = 0
        for word in inputs:
            acc |= word
        return acc if gate_type is GateType.OR else acc ^ mask
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        acc = 0
        for word in inputs:
            acc ^= word
        return acc if gate_type is GateType.XOR else acc ^ mask
    if gate_type is GateType.NOT:
        return inputs[0] ^ mask
    if gate_type in (GateType.BUF, GateType.DFF):
        return inputs[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    if gate_type is GateType.MUX:
        sel, a, b = inputs
        return (a & (sel ^ mask)) | (b & sel)
    if gate_type is GateType.MAJ:
        return _majority_word(inputs, mask)
    raise NetlistError(f"cannot evaluate node kind {gate_type.value}")


def _majority_word(inputs: Sequence[int], mask: int) -> int:
    """Bitwise majority of an odd number of words.

    Implemented as a bit-sliced counter: per bit position, count ones across
    the inputs and compare against the threshold.  The counter is kept as a
    small list of bit-planes (binary representation), so the cost is
    O(n * log n) word operations for n inputs.
    """
    planes: list[int] = []  # planes[i] = i-th bit of the per-position count
    for word in inputs:
        carry = word
        i = 0
        while carry:
            if i == len(planes):
                planes.append(0)
                # fall through to add into the fresh plane
            new_carry = planes[i] & carry
            planes[i] ^= carry
            carry = new_carry
            i += 1
    threshold = len(inputs) // 2 + 1
    # Accumulate positions where count >= threshold via a per-plane compare:
    # do a bit-sliced subtraction count - threshold and take the no-borrow mask.
    borrow = 0
    for i in range(max(len(planes), threshold.bit_length())):
        plane = planes[i] if i < len(planes) else 0
        tbit = mask if (threshold >> i) & 1 else 0
        diff_borrow = ((plane ^ mask) & tbit) | (((plane ^ mask) | tbit) & borrow)
        borrow = diff_borrow
    return borrow ^ mask  # positions with no final borrow have count >= threshold


def truth_table(gate_type: GateType, n_inputs: int) -> tuple[int, ...]:
    """Full truth table of the gate: entry ``i`` is the output for the input
    assignment whose bit ``k`` (LSB = input 0) is ``(i >> k) & 1``.
    """
    check_arity(gate_type, n_inputs)
    rows = []
    for assignment in range(1 << n_inputs):
        bits = [(assignment >> k) & 1 for k in range(n_inputs)]
        rows.append(eval_gate_bool(gate_type, bits))
    return tuple(rows)
