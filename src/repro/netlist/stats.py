"""Circuit statistics: size, shape, and reconvergence structure.

The synthetic benchmark generator (:mod:`repro.netlist.generate`) targets
these statistics when reproducing the ISCAS'89 Table 2 circuits, and the
experiment reports print them so a reader can compare the synthetic
substitutes against the published profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = ["CircuitStats", "circuit_stats", "count_reconvergent_stems"]


@dataclass
class CircuitStats:
    """Summary statistics for one circuit."""

    name: str
    n_nodes: int
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    depth: int
    gate_histogram: dict[str, int] = field(default_factory=dict)
    max_fanin: int = 0
    avg_fanin: float = 0.0
    max_fanout: int = 0
    avg_fanout: float = 0.0
    n_fanout_stems: int = 0
    n_reconvergent_stems: int = 0

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"circuit {self.name}:",
            f"  nodes={self.n_nodes} (PI={self.n_inputs} PO={self.n_outputs} "
            f"DFF={self.n_flip_flops} gates={self.n_gates}) depth={self.depth}",
            f"  fanin avg/max = {self.avg_fanin:.2f}/{self.max_fanin}  "
            f"fanout avg/max = {self.avg_fanout:.2f}/{self.max_fanout}",
            f"  fanout stems={self.n_fanout_stems} "
            f"reconvergent={self.n_reconvergent_stems}",
            "  gates: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.gate_histogram.items())),
        ]
        return "\n".join(lines)


def circuit_stats(circuit: Circuit, reconvergence_limit: int = 2000) -> CircuitStats:
    """Compute :class:`CircuitStats` for ``circuit``.

    ``reconvergence_limit`` caps how many fanout stems are tested for
    reconvergence (the test walks each stem's cone); pass 0 to skip it.
    """
    compiled = circuit.compiled()
    histogram = Counter(
        node.gate_type.value for node in circuit if node.gate_type.is_combinational
    )
    gate_ids = [
        i for i in range(compiled.n) if compiled.gate_type(i).is_combinational
    ]
    fanin_sizes = [len(compiled.fanin(i)) for i in gate_ids]
    fanout_sizes = [len(compiled.fanout(i)) for i in range(compiled.n)]
    stems = [i for i in range(compiled.n) if len(compiled.fanout(i)) >= 2]

    n_reconv = 0
    if reconvergence_limit:
        for stem in stems[:reconvergence_limit]:
            if _is_reconvergent(compiled, stem):
                n_reconv += 1

    return CircuitStats(
        name=circuit.name,
        n_nodes=compiled.n,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        n_flip_flops=len(circuit.flip_flops),
        n_gates=len(gate_ids),
        depth=circuit.depth(),
        gate_histogram=dict(histogram),
        max_fanin=max(fanin_sizes, default=0),
        avg_fanin=(sum(fanin_sizes) / len(fanin_sizes)) if fanin_sizes else 0.0,
        max_fanout=max(fanout_sizes, default=0),
        avg_fanout=(sum(fanout_sizes) / len(fanout_sizes)) if fanout_sizes else 0.0,
        n_fanout_stems=len(stems),
        n_reconvergent_stems=n_reconv,
    )


def count_reconvergent_stems(circuit: Circuit, limit: int = 0) -> int:
    """Count fanout stems whose branches re-meet downstream.

    ``limit`` > 0 restricts the scan to the first ``limit`` stems (useful on
    very large circuits); 0 means scan all stems.
    """
    compiled = circuit.compiled()
    stems = [i for i in range(compiled.n) if len(compiled.fanout(i)) >= 2]
    if limit:
        stems = stems[:limit]
    return sum(1 for stem in stems if _is_reconvergent(compiled, stem))


def _is_reconvergent(compiled, stem: int) -> bool:
    """True if >= 2 distinct fanout branches of ``stem`` reach a common node.

    Walks forward from each branch accumulating a per-node branch bitmask;
    a node collecting two different branch bits proves reconvergence.
    Traversal stops at DFFs (a reconvergence across a clock boundary is not
    a combinational reconvergence).
    """
    branches = compiled.fanout(stem)
    mask: dict[int, int] = {}
    stack: list[tuple[int, int]] = []
    for k, branch in enumerate(branches):
        stack.append((branch, 1 << k))
    while stack:
        node, bit = stack.pop()
        prev = mask.get(node, 0)
        if prev & bit:
            continue
        mask[node] = prev | bit
        if prev:  # a different branch already reached this node
            return True
        if compiled.gate_type(node) is GateType.DFF:
            continue
        for user in compiled.fanout(node):
            stack.append((user, bit))
    return False
