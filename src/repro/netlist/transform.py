"""Netlist transforms: sequential cut, constant folding, buffer sweep, TMR.

The EPP and simulation engines work on sequential circuits directly (they
treat DFF outputs as sources and DFF D-pins as sinks), but several backends
(BDD-based exact analysis, exhaustive enumeration) need a genuinely
combinational netlist.  :func:`to_combinational` produces that cut.

:func:`triplicate` implements triple modular redundancy with majority
voters — the classic hardening transform the paper motivates ("identify the
most vulnerable components to be protected by soft error hardening
techniques") — and is exercised by the hardening examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = [
    "CombinationalView",
    "to_combinational",
    "propagate_constants",
    "sweep_buffers",
    "strip_dead",
    "extract_cone",
    "triplicate",
    "triplicate_nodes",
]


@dataclass
class CombinationalView:
    """Result of cutting a sequential circuit at its DFF boundary.

    ``circuit`` is pure-combinational: every DFF Q net became a primary
    input (same name), and every DFF D driver is marked as an output.

    ``state_inputs`` maps pseudo-input name -> original DFF name (identical
    strings; kept as an explicit map for clarity), ``state_outputs`` maps
    the D-driver net -> list of DFF names it feeds (one driver may feed
    several flip-flops).
    """

    circuit: Circuit
    state_inputs: dict[str, str] = field(default_factory=dict)
    state_outputs: dict[str, list[str]] = field(default_factory=dict)

    @property
    def is_identity(self) -> bool:
        """True when the original circuit had no flip-flops."""
        return not self.state_inputs


def to_combinational(circuit: Circuit) -> CombinationalView:
    """Cut ``circuit`` at the flip-flop boundary.

    The returned view's circuit preserves node names, gate types and primary
    input/output order; DFF nodes are replaced by INPUT nodes of the same
    name, and each DFF's D driver is additionally marked as an output.
    """
    cut = Circuit(f"{circuit.name}__comb")
    view = CombinationalView(cut)
    for node in circuit:
        if node.gate_type is GateType.INPUT:
            cut.add_input(node.name)
        elif node.gate_type is GateType.DFF:
            cut.add_input(node.name)
            view.state_inputs[node.name] = node.name
            d_driver = node.fanin[0]
            view.state_outputs.setdefault(d_driver, []).append(node.name)
        elif node.gate_type in (GateType.CONST0, GateType.CONST1):
            cut.add_const(node.name, 1 if node.gate_type is GateType.CONST1 else 0)
        else:
            cut.add_gate(node.name, node.gate_type, node.fanin)
    for output in circuit.outputs:
        cut.mark_output(output)
    for d_driver in view.state_outputs:
        cut.mark_output(d_driver)
    cut.compiled()
    return view


def propagate_constants(circuit: Circuit) -> Circuit:
    """Fold constants forward through the combinational network.

    Returns a new circuit in which every gate whose value is forced by
    constant fanins is replaced by a constant node, and constant fanins at
    non-controlling values are dropped from AND/NAND/OR/NOR gates.  Names,
    outputs and DFFs are preserved (a DFF driven by a constant is kept — its
    behaviour is still sequential until an initial state is chosen).
    """
    compiled = circuit.compiled()
    const_value: dict[str, int] = {}
    folded = Circuit(circuit.name)

    for node_id in compiled.topo:
        node = circuit.node(compiled.names[node_id])
        if node.gate_type is GateType.INPUT:
            folded.add_input(node.name)
            continue
        if node.gate_type is GateType.CONST0:
            folded.add_const(node.name, 0)
            const_value[node.name] = 0
            continue
        if node.gate_type is GateType.CONST1:
            folded.add_const(node.name, 1)
            const_value[node.name] = 1
            continue
        if node.gate_type is GateType.DFF:
            folded.add_dff(node.name, node.fanin[0])
            continue

        known = [const_value.get(f) for f in node.fanin]
        value = _fold_gate(node.gate_type, known)
        if value is not None:
            folded.add_const(node.name, value)
            const_value[node.name] = value
            continue

        fanin = node.fanin
        noncontrolling = _noncontrolling_value(node.gate_type)
        if noncontrolling is not None:
            kept = tuple(
                f for f, v in zip(fanin, known) if v is None or v != noncontrolling
            )
            if kept:
                fanin = kept
        folded.add_gate(node.name, node.gate_type, fanin)

    for output in circuit.outputs:
        folded.mark_output(output)
    folded.compiled()
    return folded


def _noncontrolling_value(gate_type: GateType) -> int | None:
    controlling = gate_type.controlling_value
    if controlling is None:
        return None
    return 1 - controlling


def _fold_gate(gate_type: GateType, known: list[int | None]) -> int | None:
    """Output value if forced by the known constant inputs, else ``None``."""
    controlling = gate_type.controlling_value
    inverting = gate_type in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)
    if controlling is not None and any(v == controlling for v in known):
        out = controlling if gate_type in (GateType.AND, GateType.OR) else 1 - controlling
        return out
    if all(v is not None for v in known):
        from repro.netlist.gate_types import eval_gate_bool

        return eval_gate_bool(gate_type, [v for v in known if v is not None])
    if gate_type in (GateType.NOT, GateType.BUF) and known[0] is not None:
        return known[0] if gate_type is GateType.BUF else 1 - known[0]
    del inverting
    return None


def sweep_buffers(circuit: Circuit) -> Circuit:
    """Remove BUF nodes by rewiring their users to the buffer's driver.

    Buffers that are primary outputs or DFF inputs are kept only if removing
    them would erase an output name; in that case they stay (a PO must keep
    its declared name).
    """
    keep = set(circuit.outputs)
    alias: dict[str, str] = {}
    for node in circuit:
        if node.gate_type is GateType.BUF and node.name not in keep:
            alias[node.name] = node.fanin[0]

    def resolve(name: str) -> str:
        seen = set()
        while name in alias:
            if name in seen:
                raise NetlistError(f"buffer cycle at {name!r}")
            seen.add(name)
            name = alias[name]
        return name

    swept = Circuit(circuit.name)
    for node in circuit:
        if node.name in alias:
            continue
        fanin = tuple(resolve(f) for f in node.fanin)
        if node.gate_type is GateType.INPUT:
            swept.add_input(node.name)
        elif node.gate_type is GateType.DFF:
            swept.add_dff(node.name, fanin[0])
        elif node.gate_type in (GateType.CONST0, GateType.CONST1):
            swept.add_const(node.name, 1 if node.gate_type is GateType.CONST1 else 0)
        else:
            swept.add_gate(node.name, node.gate_type, fanin)
    for output in circuit.outputs:
        swept.mark_output(output)
    swept.compiled()
    return swept


def strip_dead(circuit: Circuit) -> Circuit:
    """Remove logic that cannot influence any primary output.

    A node is *live* if it lies in the transitive fanin of a primary
    output, where reaching a flip-flop's Q net pulls in its D-pin cone
    (state feeding an output is live; state feeding only dead logic is
    not).  Returns a new circuit containing only live nodes, preserving
    names, order and output markers.
    """
    live: set[str] = set()
    stack = list(circuit.outputs)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(circuit.node(name).fanin)

    stripped = Circuit(circuit.name)
    for node in circuit:
        if node.name not in live:
            continue
        if node.gate_type is GateType.INPUT:
            stripped.add_input(node.name)
        elif node.gate_type is GateType.DFF:
            stripped.add_dff(node.name, node.fanin[0])
        elif node.gate_type in (GateType.CONST0, GateType.CONST1):
            stripped.add_const(node.name, 1 if node.gate_type is GateType.CONST1 else 0)
        else:
            stripped.add_gate(node.name, node.gate_type, node.fanin)
    for output in circuit.outputs:
        stripped.mark_output(output)
    stripped.compiled()
    return stripped


def extract_cone(circuit: Circuit, roots: list[str], through_dff: bool = False) -> Circuit:
    """Extract the transitive-fanin subcircuit of ``roots``.

    The cone keeps original node names.  With ``through_dff=False`` (the
    default) traversal stops at flip-flops: the DFF is included and its Q net
    becomes part of the cone, but its D-pin fanin is not pulled in; the DFF
    is converted to a primary input of the cone, making the result
    combinational.  With ``through_dff=True`` DFFs are kept as DFFs and their
    transitive fanin is included.
    """
    for root in roots:
        circuit.node(root)  # raises on unknown names

    needed: set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in needed:
            continue
        needed.add(name)
        node = circuit.node(name)
        if node.gate_type is GateType.DFF and not through_dff:
            continue
        stack.extend(node.fanin)

    cone = Circuit(f"{circuit.name}__cone")
    for node in circuit:  # declaration order keeps determinism
        if node.name not in needed:
            continue
        if node.gate_type is GateType.INPUT:
            cone.add_input(node.name)
        elif node.gate_type is GateType.DFF:
            if through_dff:
                cone.add_dff(node.name, node.fanin[0])
            else:
                cone.add_input(node.name)
        elif node.gate_type in (GateType.CONST0, GateType.CONST1):
            cone.add_const(node.name, 1 if node.gate_type is GateType.CONST1 else 0)
        else:
            cone.add_gate(node.name, node.gate_type, node.fanin)
    for root in roots:
        cone.mark_output(root)
    cone.compiled()
    return cone


def _pick_suffixes(
    base_names,
    reserved: set[str],
    suffixes: tuple[str, str, str] | None,
    context: str,
) -> tuple[str, str, str]:
    """Collision-free replica suffixes for ``base_names`` vs ``reserved``.

    With ``suffixes=None`` start from ``("__r0", "__r1", "__r2")`` and
    deterministically escalate (append ``"_"`` to all three) until no
    ``base + suffix`` lands on a reserved name — a circuit that already
    contains ``__r0``-suffixed nodes (e.g. from a previous TMR pass) must
    not make replica creation explode.  The three candidates stay equal
    length and differ at a fixed position, so replicas of distinct bases
    can never collide with *each other*; only the reserved set needs
    checking.  Explicitly passed suffixes are the caller's contract:
    distinctness is required and a reserved-name collision raises instead
    of silently renaming.
    """
    explicit = suffixes is not None
    chosen: tuple[str, str, str] = (
        tuple(suffixes) if explicit else ("__r0", "__r1", "__r2")
    )
    if len(set(chosen)) != 3:
        raise NetlistError(f"{context} needs three distinct suffixes")

    def collisions(candidate: tuple[str, str, str]) -> list[str]:
        return [
            name + suffix
            for name in base_names
            for suffix in candidate
            if name + suffix in reserved
        ]

    clashes = collisions(chosen)
    if explicit:
        if clashes:
            raise NetlistError(
                f"{context}: replica suffixes {chosen!r} collide with "
                f"existing node name(s) {sorted(clashes)[:3]!r}"
            )
        return chosen
    while clashes:
        chosen = tuple(suffix + "_" for suffix in chosen)
        clashes = collisions(chosen)
    return chosen


def triplicate(
    circuit: Circuit, suffixes: tuple[str, str, str] | None = None
) -> Circuit:
    """Triple-modular-redundancy transform.

    Primary inputs are shared across the three replicas; every gate and DFF
    is triplicated with the given name suffixes; each primary output becomes
    a MAJ voter over the three replica copies, keeping the original output
    name.  The returned circuit is a drop-in functional replacement whose
    single-SEU P_sensitized at any interior replica node is (ideally) zero.

    By default the replica suffixes are ``__r0``/``__r1``/``__r2``,
    deterministically escalated if the circuit already contains nodes with
    those suffixes (so re-running the transform, or applying it after
    :func:`triplicate_nodes`, never raises a duplicate-name error);
    explicitly passed suffixes raise on collision instead.
    """
    replicated = [
        node.name for node in circuit if node.gate_type is not GateType.INPUT
    ]
    # Names present in the TMR circuit besides the replicas: shared
    # inputs, plus voter names (every original output keeps its name).
    reserved = set(circuit.inputs) | set(circuit.outputs)
    suffixes = _pick_suffixes(replicated, reserved, suffixes, "triplicate")
    tmr = Circuit(f"{circuit.name}__tmr")
    for name in circuit.inputs:
        tmr.add_input(name)

    def replica_name(name: str, k: int) -> str:
        if circuit.node(name).gate_type is GateType.INPUT:
            return name  # inputs are shared
        return name + suffixes[k]

    for node in circuit:
        if node.gate_type is GateType.INPUT:
            continue
        for k in range(3):
            fanin = tuple(replica_name(f, k) for f in node.fanin)
            new_name = replica_name(node.name, k)
            if node.gate_type is GateType.DFF:
                tmr.add_dff(new_name, fanin[0])
            elif node.gate_type in (GateType.CONST0, GateType.CONST1):
                tmr.add_const(new_name, 1 if node.gate_type is GateType.CONST1 else 0)
            else:
                tmr.add_gate(new_name, node.gate_type, fanin)

    for output in circuit.outputs:
        voter_inputs = [replica_name(output, k) for k in range(3)]
        if circuit.node(output).gate_type is GateType.INPUT:
            # An output that is directly an input needs no voter.
            tmr.mark_output(output)
            continue
        tmr.add_gate(output, GateType.MAJ, voter_inputs)
        tmr.mark_output(output)
    tmr.compiled()
    # Record the suffixes actually used (escalation may have changed
    # them) so callers can derive replica names without guessing.
    tmr.tmr_suffixes = suffixes
    return tmr


def triplicate_nodes(
    circuit: Circuit,
    nodes,
    suffixes: tuple[str, str, str] | None = None,
) -> dict[str, tuple[str, str, str]]:
    """Local TMR: triplicate selected gates in place, voting immediately.

    For each named combinational gate ``g``, three replicas
    ``g<sfx0>``/``g<sfx1>``/``g<sfx2>`` with ``g``'s gate type and fanin
    are added, and ``g`` itself becomes a MAJ voter over them — the name
    ``g`` is kept, so every user of ``g`` (including output markings and
    DFF D-pins) is untouched.  This is the per-gate hardening move the
    selective-hardening loop evaluates: an SEU inside one replica is
    outvoted at the voter instead of propagating.

    Mutates ``circuit`` in place and returns ``{name: replica_names}``.
    Suffix selection matches :func:`triplicate`: the defaults escalate
    deterministically past existing ``__r``-suffixed names (repeated
    local TMR on nearby gates stays legal), explicit suffixes raise on
    collision.  Only combinational gates can be triplicated this way —
    inputs have no logic to replicate and a DFF voter would change the
    state boundary — and duplicate names in ``nodes`` are rejected.
    """
    targets = []
    seen: set[str] = set()
    for name in nodes:
        if name in seen:
            raise NetlistError(f"triplicate_nodes: duplicate target {name!r}")
        seen.add(name)
        node = circuit.node(name)
        if not node.gate_type.is_combinational:
            raise NetlistError(
                f"triplicate_nodes: {name!r} is a {node.gate_type.value} "
                "node; only combinational gates can be locally triplicated"
            )
        targets.append(node)

    reserved = {node.name for node in circuit}
    suffixes = _pick_suffixes(
        [node.name for node in targets], reserved, suffixes, "triplicate_nodes"
    )
    mapping: dict[str, tuple[str, str, str]] = {}
    for node in targets:
        replicas = tuple(node.name + suffix for suffix in suffixes)
        for replica in replicas:
            circuit.add_gate(replica, node.gate_type, node.fanin)
        circuit.replace_gate(node.name, GateType.MAJ, replicas)
        mapping[node.name] = replicas
    return mapping
