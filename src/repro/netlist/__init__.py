"""Gate-level netlist substrate.

This subpackage provides everything the analysis engines need to represent
and manipulate circuits:

* :mod:`repro.netlist.gate_types` — the gate alphabet.
* :mod:`repro.netlist.circuit` — the :class:`~repro.netlist.circuit.Circuit`
  container and its compiled (integer-array) views.
* :mod:`repro.netlist.bench` — ISCAS ``.bench`` reader/writer.
* :mod:`repro.netlist.validate` — structural lint.
* :mod:`repro.netlist.transform` — sequential cut, constant propagation, TMR.
* :mod:`repro.netlist.stats` — circuit statistics.
* :mod:`repro.netlist.library` — embedded reference circuits (s27, c17,
  the paper's Figure 1 example, and small teaching circuits).
* :mod:`repro.netlist.generate` — seeded synthetic benchmark generator.
"""

from repro.netlist.gate_types import GateType
from repro.netlist.circuit import Circuit, Node
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.verilog import parse_verilog, parse_verilog_file, write_verilog
from repro.netlist.validate import validate_circuit
from repro.netlist.stats import circuit_stats, CircuitStats

__all__ = [
    "GateType",
    "Circuit",
    "Node",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "validate_circuit",
    "circuit_stats",
    "CircuitStats",
]
