"""The analysis-service wire protocol: JSON lines over a local socket.

One request per line, one response per line, UTF-8 JSON with ``\\n``
framing — trivially debuggable with ``socat`` and exactly
round-trippable: Python's ``json`` serializes floats with ``repr``, so a
``p_sensitized`` array served over the wire is ``np.array_equal`` to the
in-process result (the chaos suite pins this).

Requests
--------
``{"op": ..., ...}`` where ``op`` is one of :data:`OPS`:

* ``ping`` / ``stats`` — answered inline, never queued.
* ``analyze`` — full packed sweep.  Fields: ``bench`` (netlist source
  text) or ``circuit`` (library/profile name), optional ``sites``,
  ``knobs`` (:data:`WIRE_KNOB_KEYS` subset), ``deadline`` (seconds,
  end-to-end), ``client`` (in-flight accounting id), ``fit`` (also
  assemble the SER report), ``top`` (truncate the report), and
  ``coalesce`` (default true: identical concurrent requests share one
  sweep), and ``idempotency_key`` (opt-in exactly-once semantics: a
  duplicate submission with the same client + key — including after a
  reconnect to a restarted server — returns the journaled or in-flight
  result instead of re-sweeping; reusing a key for a *different* request
  is a terminal error).
* ``analyze_delta`` — incremental what-if step on the server-held chain
  for the circuit: ``edits`` is a list of edit ops (see
  :func:`edits_from_wire`), remaining fields as for ``analyze``.

Responses
---------
``{"ok": true, "result": {...}, "served_s": ...}`` or
``{"ok": false, "error": {"type", "message", "retriable",
"retry_after"}}`` — the error taxonomy of :func:`error_info`: a client
can retry exactly the errors marked retriable (queue-full, drain,
transient worker faults) and must not retry the terminal ones (bad
input, expired deadline).
"""

from __future__ import annotations

import json

from repro.errors import (
    ConfigError,
    ParseError,
    ReproError,
    ResilienceError,
    ServerError,
)

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "WIRE_KNOB_KEYS",
    "Request",
    "decode_line",
    "edits_from_wire",
    "encode",
    "error_info",
    "error_response",
    "ok_response",
    "parse_request",
]

#: Ops a request may carry.
OPS = ("ping", "stats", "analyze", "analyze_delta")

#: Analysis knobs accepted over the wire — re-exported from
#: :mod:`repro.core.config`, where field metadata marks the JSON-able
#: subset (``fault_injector``/``checkpoint``/``deadline`` are local or
#: per-request concerns and deliberately not knob-reachable from a
#: socket; ``deadline`` has its own top-level request field).
from repro.core.config import WIRE_KNOB_KEYS, AnalysisConfig  # noqa: E402

#: Requests above this size are rejected before JSON parsing: a single
#: client must not be able to balloon the server's heap with one line.
MAX_LINE_BYTES = 32 * 1024 * 1024


class Request:
    """A validated request (everything past :func:`parse_request`)."""

    __slots__ = (
        "op", "bench", "circuit", "sites", "knobs", "config", "deadline",
        "client", "fit", "top", "coalesce", "edits", "idempotency",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields.get(name))

    @property
    def analysis_config(self) -> AnalysisConfig:
        """The request's knobs as one validated
        :class:`~repro.core.config.AnalysisConfig` (built at parse time;
        tests constructing a bare :class:`Request` get it lazily)."""
        if self.config is None:
            self.config = AnalysisConfig.from_wire(self.knobs or {})
        return self.config

    @property
    def circuit_spec(self):
        """What identifies the circuit: bench text beats a library name."""
        return self.bench if self.bench is not None else self.circuit


def encode(message: dict) -> bytes:
    """One response/request line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one request line; :class:`~repro.errors.ParseError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ParseError(
            f"request line exceeds {MAX_LINE_BYTES} bytes "
            f"(got {len(line)})"
        )
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ParseError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ParseError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def parse_request(obj: dict) -> Request:
    """Validate a decoded request object into a :class:`Request`."""
    op = obj.get("op")
    if op not in OPS:
        raise ConfigError(f"unknown op {op!r}; choose from {OPS}")
    bench = obj.get("bench")
    circuit = obj.get("circuit")
    if op in ("analyze", "analyze_delta"):
        if bench is None and circuit is None:
            raise ConfigError(f"op {op!r} needs 'bench' text or a 'circuit' name")
        if bench is not None and not isinstance(bench, str):
            raise ConfigError("'bench' must be netlist source text")
        if circuit is not None and not isinstance(circuit, str):
            raise ConfigError("'circuit' must be a library/profile name")
    knobs = obj.get("knobs")
    if knobs is None:
        knobs = {}
    if not isinstance(knobs, dict):
        raise ConfigError("'knobs' must be an object")
    # One validation point for the whole knob surface: unknown names
    # (strict — a caller mistake here, not version skew), bad values and
    # conflicting combinations all raise AnalysisConfigError, which *is*
    # a ConfigError on the wire taxonomy (terminal, non-retriable).
    config = AnalysisConfig.from_wire(knobs, strict=True)
    deadline = obj.get("deadline")
    if deadline is not None:
        deadline = float(deadline)
        if deadline <= 0.0:
            raise ConfigError(
                f"--request-deadline must be > 0 seconds, got {deadline}"
            )
    sites = obj.get("sites")
    if sites is not None and not isinstance(sites, list):
        raise ConfigError("'sites' must be a list of site names")
    idempotency = obj.get("idempotency_key")
    if idempotency is not None:
        if not isinstance(idempotency, str) or not idempotency:
            raise ConfigError("'idempotency_key' must be a non-empty string")
        if op not in ("analyze", "analyze_delta"):
            raise ConfigError(
                f"'idempotency_key' applies to analysis ops only, got {op!r}"
            )
    edits = obj.get("edits")
    if op == "analyze_delta":
        if not isinstance(edits, list) or not edits:
            raise ConfigError("op 'analyze_delta' needs a non-empty 'edits' list")
    top = obj.get("top")
    return Request(
        op=op,
        bench=bench,
        circuit=circuit,
        sites=sites,
        knobs=dict(knobs),
        config=config,
        deadline=deadline,
        client=str(obj.get("client") or "anon"),
        fit=bool(obj.get("fit", False)),
        top=None if top is None else int(top),
        coalesce=bool(obj.get("coalesce", True)),
        edits=edits,
        idempotency=idempotency,
    )


def edits_from_wire(ops: list):
    """Build an :class:`~repro.core.epp_delta.EditSet` from wire edit ops.

    Each op is ``[kind, ...args]``: ``["set_sp", node, p]``,
    ``["harden", node, factor]``, ``["replace_gate", node, type, fanin?]``,
    ``["add_gate", node, type, fanin]``, ``["remove_node", node]``,
    ``["mark_output", node]``, ``["rewire", node, old, new]``,
    ``["tmr", node, ...]``.  Gate types are case-insensitive names from
    :class:`~repro.netlist.gate_types.GateType`.
    """
    from repro.core.epp_delta import EditSet
    from repro.netlist.gate_types import GateType

    def gate_type_of(value):
        try:
            return GateType[str(value).upper()]
        except KeyError:
            raise ConfigError(f"unknown gate type {value!r}") from None

    edits = EditSet()
    for op in ops:
        if not isinstance(op, list) or not op or not isinstance(op[0], str):
            raise ConfigError(f"malformed edit op {op!r}")
        kind, *args = op
        try:
            if kind == "set_sp":
                edits.set_sp(str(args[0]), float(args[1]))
            elif kind in ("harden", "resize"):
                edits.harden(str(args[0]), float(args[1]) if len(args) > 1 else 10.0)
            elif kind == "replace_gate":
                fanin = args[2] if len(args) > 2 and args[2] is not None else None
                gate_type = gate_type_of(args[1]) if args[1] is not None else None
                edits.replace_gate(str(args[0]), gate_type, fanin)
            elif kind == "add_gate":
                edits.add_gate(str(args[0]), gate_type_of(args[1]), list(args[2]))
            elif kind == "remove_node":
                edits.remove_node(str(args[0]))
            elif kind == "mark_output":
                edits.mark_output(str(args[0]))
            elif kind == "rewire":
                edits.rewire(str(args[0]), str(args[1]), str(args[2]))
            elif kind == "tmr":
                edits.tmr(*(str(name) for name in args))
            else:
                raise ConfigError(f"unknown edit kind {kind!r}")
        except IndexError:
            raise ConfigError(f"edit op {kind!r} is missing arguments: {op!r}") from None
    return edits


def error_info(exc: BaseException) -> dict:
    """The wire error taxonomy: type + message + retriability.

    Decided by exception class, never by message matching:

    * :class:`~repro.errors.ServerError` subclasses carry their own
      ``retriable`` flag (and ``retry_after`` when the service estimated
      one) — queue-full and drain are retriable, an expired deadline is
      terminal for that request.
    * :class:`~repro.errors.ResilienceError` subclasses are *retriable*:
      they are transient infrastructure faults (worker crash, wedged
      pool, transport failure) that a respawned pool can absorb.
    * Every other :class:`~repro.errors.ReproError` is terminal — bad
      netlists, bad knobs and bad SP maps do not improve with retries.
    * Unexpected exceptions map to a terminal ``InternalError`` with the
      class name preserved in the message.
    """
    if isinstance(exc, ServerError):
        return {
            "type": type(exc).__name__,
            "message": str(exc),
            "retriable": bool(exc.retriable),
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, ResilienceError):
        return {
            "type": type(exc).__name__,
            "message": str(exc),
            "retriable": True,
            "retry_after": None,
        }
    if isinstance(exc, ReproError):
        return {
            "type": type(exc).__name__,
            "message": str(exc),
            "retriable": False,
            "retry_after": None,
        }
    return {
        "type": "InternalError",
        "message": f"{type(exc).__name__}: {exc}",
        "retriable": False,
        "retry_after": None,
    }


def error_response(exc: BaseException) -> dict:
    return {"ok": False, "error": error_info(exc)}


def ok_response(result: dict, **meta) -> dict:
    response = {"ok": True, "result": result}
    response.update(meta)
    return response
