"""Content-addressed artifact store with integrity checking.

The analysis service amortizes work across requests by caching what it
builds: parsed circuits, resolved SP maps, and finished analysis
payloads.  A long-lived cache is a liability unless it defends itself,
so every entry here is stored as *verified bytes*:

* **Content addressing** — keys are blake2b digests of the request
  content (:func:`digest_of`), so two clients asking for the same
  circuit + knobs share one entry and a changed request can never alias
  a stale one.
* **Integrity checksums** — each entry keeps the blake2b digest of its
  pickled payload, recomputed on every load.  A mismatch (bit rot, a
  buggy writer, the chaos harness flipping bytes) quarantines the entry:
  it is dropped, the key is recorded, and the caller recomputes from
  scratch — a corrupt artifact can degrade latency, never correctness.
* **Mutation tokens** — entries derived from a live
  :class:`~repro.netlist.circuit.Circuit` record its ``mutation_token``
  (the PR-7 staleness guard); a lookup presenting a different token
  drops the entry instead of serving pre-edit results.
* **Bounded LRU eviction** — the store holds at most ``max_bytes`` of
  payload; least-recently-used entries are evicted on insert, and an
  object bigger than the whole budget is simply not stored.
* **Optional disk tier** — with ``store_dir`` set, every put is also
  written as a content-addressed file (``<store_dir>/<kind>/<key>.art``)
  through the atomic temp-file + fsync + rename path of
  :mod:`repro.core.durable`, and a memory miss falls through to a
  checksum-verified disk read that *promotes* the entry back into
  memory.  Both tiers are LRU-by-bytes: memory eviction demotes an entry
  to disk-only (the hot set stays small, the warm set survives), disk
  eviction unlinks the file.  A restarted server rescans the directory
  (removing crash-residue ``*.tmp`` files) and answers warm from disk.
  Corrupt disk files are moved to ``<store_dir>/quarantine/`` and
  recomputed, exactly like the in-memory quarantine.  Concurrent
  servers may share one ``store_dir``: writes are last-writer-wins via
  atomic rename and every read is checksum-verified, so a torn or
  foreign file is rejected, never served.

The store is thread-safe: the service calls it from worker threads.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict

from repro.core.durable import (
    CorruptRecordError,
    quarantine_file,
    read_record,
    sweep_temp_files,
    write_record,
)

__all__ = ["ArtifactStore", "digest_of"]


def digest_of(*parts) -> str:
    """A stable blake2b content digest over heterogeneous parts.

    Each part is serialized to its ``repr`` (bytes pass through raw) and
    length-prefixed before hashing, so ``("ab", "c")`` and ``("a", "bc")``
    never collide.  ``repr`` keeps the digest exact for floats and stable
    for the JSON-shaped values the wire protocol produces (strings,
    numbers, lists, dicts round-tripped by ``json``).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        blob = part if isinstance(part, bytes) else repr(part).encode()
        h.update(str(len(blob)).encode())
        h.update(b":")
        h.update(blob)
    return h.hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _token_text(token) -> str | None:
    """Mutation tokens serialized for the disk record's JSON header.

    ``repr`` keeps integer tokens exact and any exotic token stable
    enough for the only operation ever performed: equality against the
    token presented at load time.
    """
    return None if token is None else repr(token)


class _Entry:
    __slots__ = ("payload", "checksum", "nbytes", "token")

    def __init__(self, payload: bytes, token):
        self.payload = payload
        self.checksum = _checksum(payload)
        self.nbytes = len(payload)
        self.token = token


class ArtifactStore:
    """Bounded, checksummed, token-aware pickle cache.

    Parameters
    ----------
    max_bytes:
        In-memory payload budget.  Inserts evict least-recently-used
        entries until the new entry fits; an entry larger than the whole
        budget is rejected (counted in ``stats()["oversize"]``).
    store_dir:
        Directory for the disk tier, or ``None`` (memory only).  Created
        on demand; an existing directory is rescanned so the store
        answers warm after a restart (crash-residue ``*.tmp`` files are
        removed first, counted in ``stats()["tmp_cleaned"]``).
    disk_bytes:
        Disk-tier payload budget (ignored without ``store_dir``).
        Least-recently-used files are unlinked when a write would exceed
        it.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 store_dir: str | None = None,
                 disk_bytes: int = 512 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self.store_dir = None if store_dir is None else os.fspath(store_dir)
        self.disk_bytes = int(disk_bytes)
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._bytes = 0
        #: Disk-tier LRU index: (kind, key) -> file payload size.  A
        #: bookkeeping cache, not the source of truth — lookups always
        #: probe the filesystem, so entries written by *another* process
        #: sharing the directory are found (and then indexed) too.
        self._disk: OrderedDict[tuple[str, str], int] = OrderedDict()
        self._disk_bytes_used = 0
        self._lock = threading.Lock()
        #: Keys dropped on checksum mismatch, kept for inspection until
        #: a fresh put() rehabilitates them.
        self.quarantined: set[tuple[str, str]] = set()
        self._stats = {
            "hits": 0, "misses": 0, "stale": 0, "corrupt": 0,
            "evictions": 0, "oversize": 0, "puts": 0,
            "disk_hits": 0, "disk_evictions": 0, "disk_errors": 0,
            "tmp_cleaned": 0,
        }
        if self.store_dir is not None:
            self._scan()

    # ----------------------------------------------------------------- api

    def put(self, kind: str, key: str, obj, token=None) -> bool:
        """Store ``obj`` under ``(kind, key)``; returns False if oversize.

        A successful put rehabilitates a quarantined key — the fresh
        payload has a fresh checksum, so the corrupt bytes are gone.
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        entry = _Entry(payload, token)
        with self._lock:
            self._stats["puts"] += 1
            if entry.nbytes > self.max_bytes:
                self._stats["oversize"] += 1
                return False
            self._drop((kind, key))
            while self._bytes + entry.nbytes > self.max_bytes and self._entries:
                # Memory eviction is a *demotion* when the disk tier is
                # on: the file written at put time stays, so the entry
                # still serves (and re-promotes) from disk.
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._stats["evictions"] += 1
            self._entries[(kind, key)] = entry
            self._bytes += entry.nbytes
            self.quarantined.discard((kind, key))
            self._disk_put(kind, key, entry)
        return True

    def get(self, kind: str, key: str, token=None):
        """Load ``(kind, key)`` or ``None`` (miss / stale / corrupt).

        ``token`` is compared against the token recorded at put time;
        a mismatch means the source circuit was mutated since — the
        entry is dropped and the lookup misses (never serve stale).
        A checksum mismatch quarantines the entry the same way.

        A memory miss falls through to the disk tier (when configured):
        a verified disk read counts as ``disk_hits``, promotes the entry
        back into memory and returns it.  A corrupt *memory* entry
        purges both tiers — the caller's recompute is the recovery path,
        and its fresh put() repopulates disk.
        """
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                payload = self._disk_get(kind, key, token)
                if payload is None:
                    self._stats["misses"] += 1
                    return None
                self._promote(kind, key, _Entry(payload, token))
                self._stats["disk_hits"] += 1
                return pickle.loads(payload)
            if entry.token != token:
                self._drop((kind, key))
                self._disk_drop(kind, key)
                self._stats["stale"] += 1
                return None
            if _checksum(entry.payload) != entry.checksum:
                self._drop((kind, key))
                self._disk_drop(kind, key)
                self.quarantined.add((kind, key))
                self._stats["corrupt"] += 1
                return None
            self._entries.move_to_end((kind, key))
            self._stats["hits"] += 1
            payload = entry.payload
        return pickle.loads(payload)

    def corrupt(self, kind: str, key: str) -> bool:
        """Flip a byte of a stored payload (chaos-harness hook).

        Returns True if the entry existed.  The next :meth:`get` of the
        key detects the mismatch and quarantines it — this is how the
        service chaos suite pins the integrity path end to end.
        """
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                return False
            mutated = bytearray(entry.payload)
            mutated[len(mutated) // 2] ^= 0xFF
            entry.payload = bytes(mutated)
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                **self._stats,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "quarantined": len(self.quarantined),
                "disk_entries": len(self._disk),
                "disk_bytes": self._disk_bytes_used,
                "store_dir": self.store_dir,
            }

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; ``disk=True`` unlinks the disk tier too."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            if disk:
                for kind, key in list(self._disk):
                    self._disk_drop(kind, key)

    # ------------------------------------------------------------ internals

    def _drop(self, full_key: tuple[str, str]) -> None:
        entry = self._entries.pop(full_key, None)
        if entry is not None:
            self._bytes -= entry.nbytes

    def _promote(self, kind: str, key: str, entry: "_Entry") -> None:
        """Install a disk-verified entry into the memory tier (LRU end)."""
        if entry.nbytes > self.max_bytes:
            return
        self._drop((kind, key))
        while self._bytes + entry.nbytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._stats["evictions"] += 1
        self._entries[(kind, key)] = entry
        self._bytes += entry.nbytes
        self.quarantined.discard((kind, key))

    # ------------------------------------------------------------- disk tier

    def _disk_path(self, kind: str, key: str) -> str:
        return os.path.join(self.store_dir, kind, f"{key}.art")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.store_dir, "quarantine")

    def _scan(self) -> None:
        """Rehydrate the disk index from an existing ``store_dir``.

        Sizes come from ``stat`` and ordering from mtime (oldest =
        evicted first); contents are *not* read here — integrity is
        verified lazily on each load, so startup stays O(entries), not
        O(bytes).  Crash-residue ``*.tmp`` files are removed.
        """
        os.makedirs(self.store_dir, exist_ok=True)
        self._stats["tmp_cleaned"] += sweep_temp_files(self.store_dir)
        found: list[tuple[float, tuple[str, str], int]] = []
        for kind in sorted(os.listdir(self.store_dir)):
            kind_dir = os.path.join(self.store_dir, kind)
            if kind == "quarantine" or not os.path.isdir(kind_dir):
                continue
            for name in os.listdir(kind_dir):
                if not name.endswith(".art"):
                    continue
                try:
                    info = os.stat(os.path.join(kind_dir, name))
                except OSError:
                    continue
                found.append((info.st_mtime, (kind, name[:-4]), info.st_size))
        for _mtime, full_key, nbytes in sorted(found, key=lambda item: item[0]):
            self._disk[full_key] = nbytes
            self._disk_bytes_used += nbytes

    def _disk_put(self, kind: str, key: str, entry: "_Entry") -> None:
        """Write-through to the disk tier (holding the lock)."""
        if self.store_dir is None or entry.nbytes > self.disk_bytes:
            return
        self._disk_drop(kind, key, unlink=False)
        while self._disk_bytes_used + entry.nbytes > self.disk_bytes and self._disk:
            old_kind, old_key = next(iter(self._disk))
            self._disk_drop(old_kind, old_key)
            self._stats["disk_evictions"] += 1
        path = self._disk_path(kind, key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            write_record(
                path, entry.payload,
                {"kind": kind, "key": key, "token": _token_text(entry.token)},
            )
        except OSError:
            # Disk trouble (full, permissions, ...) degrades durability,
            # never the request: the memory tier already has the entry.
            self._stats["disk_errors"] += 1
            return
        self._disk[(kind, key)] = entry.nbytes
        self._disk_bytes_used += entry.nbytes

    def _disk_get(self, kind: str, key: str, token):
        """Verified payload bytes from disk, or ``None`` (holding the lock).

        Always probes the filesystem — another process sharing the
        directory may have written the entry — and re-verifies the
        record checksum plus the embedded (kind, key) identity on every
        load.  Corruption quarantines the file; a token mismatch unlinks
        it (stale, never served).
        """
        if self.store_dir is None:
            return None
        path = self._disk_path(kind, key)
        try:
            meta, payload = read_record(path)
        except FileNotFoundError:
            self._disk_drop(kind, key, unlink=False)
            return None
        except CorruptRecordError:
            quarantine_file(path, self._quarantine_dir())
            self._disk_drop(kind, key, unlink=False)
            self.quarantined.add((kind, key))
            self._stats["corrupt"] += 1
            return None
        except OSError:
            self._stats["disk_errors"] += 1
            return None
        if meta.get("kind") != kind or meta.get("key") != key:
            quarantine_file(path, self._quarantine_dir())
            self._disk_drop(kind, key, unlink=False)
            self._stats["corrupt"] += 1
            return None
        if meta.get("token") != _token_text(token):
            self._disk_drop(kind, key)
            self._stats["stale"] += 1
            return None
        nbytes = len(payload)
        previous = self._disk.pop((kind, key), None)
        if previous is not None:
            self._disk_bytes_used -= previous
        self._disk[(kind, key)] = nbytes
        self._disk_bytes_used += nbytes
        return payload

    def _disk_drop(self, kind: str, key: str, unlink: bool = True) -> None:
        nbytes = self._disk.pop((kind, key), None)
        if nbytes is not None:
            self._disk_bytes_used -= nbytes
        if unlink and self.store_dir is not None:
            try:
                os.unlink(self._disk_path(kind, key))
            except OSError:
                pass
