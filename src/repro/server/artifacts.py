"""Content-addressed artifact store with integrity checking.

The analysis service amortizes work across requests by caching what it
builds: parsed circuits, resolved SP maps, and finished analysis
payloads.  A long-lived cache is a liability unless it defends itself,
so every entry here is stored as *verified bytes*:

* **Content addressing** — keys are blake2b digests of the request
  content (:func:`digest_of`), so two clients asking for the same
  circuit + knobs share one entry and a changed request can never alias
  a stale one.
* **Integrity checksums** — each entry keeps the blake2b digest of its
  pickled payload, recomputed on every load.  A mismatch (bit rot, a
  buggy writer, the chaos harness flipping bytes) quarantines the entry:
  it is dropped, the key is recorded, and the caller recomputes from
  scratch — a corrupt artifact can degrade latency, never correctness.
* **Mutation tokens** — entries derived from a live
  :class:`~repro.netlist.circuit.Circuit` record its ``mutation_token``
  (the PR-7 staleness guard); a lookup presenting a different token
  drops the entry instead of serving pre-edit results.
* **Bounded LRU eviction** — the store holds at most ``max_bytes`` of
  payload; least-recently-used entries are evicted on insert, and an
  object bigger than the whole budget is simply not stored.

The store is thread-safe: the service calls it from worker threads.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict

__all__ = ["ArtifactStore", "digest_of"]


def digest_of(*parts) -> str:
    """A stable blake2b content digest over heterogeneous parts.

    Each part is serialized to its ``repr`` (bytes pass through raw) and
    length-prefixed before hashing, so ``("ab", "c")`` and ``("a", "bc")``
    never collide.  ``repr`` keeps the digest exact for floats and stable
    for the JSON-shaped values the wire protocol produces (strings,
    numbers, lists, dicts round-tripped by ``json``).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        blob = part if isinstance(part, bytes) else repr(part).encode()
        h.update(str(len(blob)).encode())
        h.update(b":")
        h.update(blob)
    return h.hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class _Entry:
    __slots__ = ("payload", "checksum", "nbytes", "token")

    def __init__(self, payload: bytes, token):
        self.payload = payload
        self.checksum = _checksum(payload)
        self.nbytes = len(payload)
        self.token = token


class ArtifactStore:
    """Bounded, checksummed, token-aware pickle cache.

    Parameters
    ----------
    max_bytes:
        Total payload budget.  Inserts evict least-recently-used entries
        until the new entry fits; an entry larger than the whole budget
        is rejected (counted in ``stats()["oversize"]``).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        #: Keys dropped on checksum mismatch, kept for inspection until
        #: a fresh put() rehabilitates them.
        self.quarantined: set[tuple[str, str]] = set()
        self._stats = {
            "hits": 0, "misses": 0, "stale": 0, "corrupt": 0,
            "evictions": 0, "oversize": 0, "puts": 0,
        }

    # ----------------------------------------------------------------- api

    def put(self, kind: str, key: str, obj, token=None) -> bool:
        """Store ``obj`` under ``(kind, key)``; returns False if oversize.

        A successful put rehabilitates a quarantined key — the fresh
        payload has a fresh checksum, so the corrupt bytes are gone.
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        entry = _Entry(payload, token)
        with self._lock:
            self._stats["puts"] += 1
            if entry.nbytes > self.max_bytes:
                self._stats["oversize"] += 1
                return False
            self._drop((kind, key))
            while self._bytes + entry.nbytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._stats["evictions"] += 1
            self._entries[(kind, key)] = entry
            self._bytes += entry.nbytes
            self.quarantined.discard((kind, key))
        return True

    def get(self, kind: str, key: str, token=None):
        """Load ``(kind, key)`` or ``None`` (miss / stale / corrupt).

        ``token`` is compared against the token recorded at put time;
        a mismatch means the source circuit was mutated since — the
        entry is dropped and the lookup misses (never serve stale).
        A checksum mismatch quarantines the entry the same way.
        """
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                self._stats["misses"] += 1
                return None
            if entry.token != token:
                self._drop((kind, key))
                self._stats["stale"] += 1
                return None
            if _checksum(entry.payload) != entry.checksum:
                self._drop((kind, key))
                self.quarantined.add((kind, key))
                self._stats["corrupt"] += 1
                return None
            self._entries.move_to_end((kind, key))
            self._stats["hits"] += 1
            payload = entry.payload
        return pickle.loads(payload)

    def corrupt(self, kind: str, key: str) -> bool:
        """Flip a byte of a stored payload (chaos-harness hook).

        Returns True if the entry existed.  The next :meth:`get` of the
        key detects the mismatch and quarantines it — this is how the
        service chaos suite pins the integrity path end to end.
        """
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                return False
            mutated = bytearray(entry.payload)
            mutated[len(mutated) // 2] ^= 0xFF
            entry.payload = bytes(mutated)
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                **self._stats,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "quarantined": len(self.quarantined),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------ internals

    def _drop(self, full_key: tuple[str, str]) -> None:
        entry = self._entries.pop(full_key, None)
        if entry is not None:
            self._bytes -= entry.nbytes
