"""The long-lived analysis service: admission, deadlines, degradation.

:class:`AnalysisService` owns a unix-domain socket speaking the
JSON-lines protocol of :mod:`repro.server.protocol` and keeps the
expensive state — parsed circuits, EPP engines, warm sharded worker
pools, finished results — alive across requests.  It is designed
robustness-first; the moving parts are:

* **Admission control & backpressure** — a bounded priority queue
  (incremental ``analyze_delta`` requests outrank cold full sweeps)
  with load shedding: when the queue or a client's in-flight cap is
  full the request is rejected *before any work starts* with a
  retriable ``QueueFullError`` carrying a ``retry_after`` estimate.
* **End-to-end deadlines** — each request's budget becomes a
  :class:`~repro.core.resilience.Deadline` at admission and is checked
  at every boundary: queue dequeue, plan build, and result merge.  A
  dedicated sharded sweep additionally carries the remaining budget
  into :class:`~repro.core.resilience.FaultPolicy` so the shard
  scheduler itself stops burning worker time once the caller gave up.
* **Request coalescing** — identical concurrent ``analyze`` requests
  (same circuit digest, knobs, sites) share one sweep through a single
  future; each subscriber waits under its *own* deadline behind
  ``asyncio.shield``, so a subscriber timing out or vanishing never
  cancels the shared computation.
* **Artifact integrity** — parsed circuits and finished payloads live
  in the checksummed, token-aware
  :class:`~repro.server.artifacts.ArtifactStore`; a corrupted entry is
  quarantined and transparently recomputed, bit-identical.
* **Circuit breaker & graceful degradation** — repeated sharded-pool
  failures trip the breaker: sweeps fall back to the in-process vector
  backend (bit-identical results, flagged ``degraded``) until a
  cooldown expires and a half-open probe succeeds.
* **Drain on SIGTERM** — in-flight requests finish, queued ones get a
  retriable ``ServiceUnavailableError``, worker pools are closed (no
  /dev/shm leaks), the socket is unlinked.
* **Crash durability** — with ``store_dir`` set, artifacts write through
  to a checksummed disk tier, sharded sweeps journal completed shards
  per circuit under ``store_dir/checkpoints/`` (a restarted server
  resumes a killed sweep instead of restarting it), requests carrying an
  ``idempotency_key`` are journaled so duplicates — including after a
  reconnect to a restarted server — return the recorded result instead
  of re-sweeping, and a SIGTERM drain persists queued-request metadata
  that ``resume=True`` (CLI: ``repro serve --resume``) reports back as
  retriable with warm artifacts.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import signal
import threading
import time
from collections import OrderedDict

from repro.core.config import SHARDED_ONLY_KNOBS, AnalysisConfig
from repro.core.resilience import Deadline
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    QueueFullError,
    ResilienceError,
    ServiceUnavailableError,
)
from repro.server.artifacts import ArtifactStore, digest_of
from repro.server.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    edits_from_wire,
    encode,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["AnalysisService", "CircuitBreaker"]

#: Lower value = served first.  Incremental requests outrank cold full
#: sweeps: they are interactive (a design loop waiting on a what-if) and
#: cheap (dirty columns only), so letting a 10-second cold sweep queue
#: ahead of them inverts both latency and throughput.
_PRIORITY = {"analyze_delta": 0, "analyze": 1}

#: Knobs that only the sharded backend accepts — stripped when a sweep
#: degrades to the in-process vector backend.  Derived from the config
#: field metadata, so a new sharded-only knob is stripped here the day
#: it exists.
_SHARDED_ONLY = SHARDED_ONLY_KNOBS


class CircuitBreaker:
    """Trip to in-process degrade after repeated sharded-pool failures.

    Closed: sharded sweeps allowed.  After ``threshold`` *consecutive*
    failures: open — sharded attempts short-circuit straight to the
    vector backend for ``cooldown`` seconds.  Then half-open: one probe
    request may try the pool again; success closes the breaker, failure
    re-opens it.  Degraded sweeps run the same kernels in-process, so
    results stay bit-identical — the breaker trades throughput for not
    hammering a sick pool, never correctness.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0):
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self.failures = 0
        self.opened_at: float | None = None
        self.trips = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self.opened_at is None:
            return "closed"
        if time.monotonic() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow_sharded(self) -> bool:
        """May this request try the sharded pool right now?"""
        with self._lock:
            return self._state_locked() != "open"

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.failures >= self.threshold or self.opened_at is not None:
                # A half-open probe failing re-opens immediately.
                self.opened_at = time.monotonic()
                self.trips += 1


class _CircuitState:
    """Per-circuit server state: the live engine and its what-if chain."""

    __slots__ = ("digest", "circuit", "engine", "analyzer", "delta", "lock")

    def __init__(self, digest, circuit, engine, analyzer):
        self.digest = digest
        self.circuit = circuit
        self.engine = engine
        self.analyzer = analyzer
        self.delta = None  # latest DeltaAnalysis of the what-if chain
        # Serializes the delta chain (each revision builds on the last);
        # plain full sweeps rely on the engine's own sweep lock.
        self.lock = threading.Lock()

    def close(self) -> None:
        with contextlib.suppress(Exception):
            if self.delta is not None and self.delta.engine is not self.engine:
                self.delta.engine.release_buffers()
            self.engine.release_buffers()


class _Item:
    __slots__ = (
        "req", "deadline", "future", "key", "jkey", "index", "enqueued_at",
    )

    def __init__(self, req, deadline, future, key, jkey, index):
        self.req = req
        self.deadline = deadline
        self.future = future
        self.key = key
        self.jkey = jkey
        self.index = index
        self.enqueued_at = time.monotonic()


class AnalysisService:
    """See the module docstring; construct, ``await start()``, then
    either ``await run()`` (installs signal handlers, blocks until
    drained) or drive requests and ``await drain()`` yourself.

    Parameters
    ----------
    socket_path:
        Unix-domain socket to listen on (created; unlinked at drain).
    max_queue:
        Admission-queue bound; beyond it requests shed with
        ``QueueFullError``.
    workers:
        Concurrent request executors (each runs sweeps in a thread; a
        sweep may itself fan out over a sharded process pool).
    client_inflight:
        Per-client in-flight cap (admitted, not yet answered).
    jobs:
        Default sharded worker count for sweeps; ``None`` keeps sweeps
        on the in-process vector backend unless a request asks.
    default_deadline:
        Applied to requests that carry none (``None``: unbounded).
    max_engines:
        Live per-circuit engines kept; least-recently-used ones are
        closed (pools shut down) on overflow.
    store_bytes:
        Artifact-store memory budget (see :class:`ArtifactStore`).
    store_dir:
        Durability directory, or ``None`` (everything in RAM, the PR-8
        behavior).  Enables the artifact disk tier, per-circuit sweep
        checkpoints and the idempotency journal.
    disk_bytes:
        Disk-tier budget for the artifact store.
    resume:
        Recover a predecessor's persisted queued-request metadata from
        ``store_dir`` at start and reap orphaned ``/dev/shm`` segments
        left by a killed sweep; recovered entries are reported in
        ``stats()["recovered_pending"]`` (the artifacts themselves are
        already warm via the disk tier).
    warm:
        Circuit specs to pre-load at start (engine built; the sharded
        pool is warmed too when ``jobs`` is set).
    faults:
        Optional :class:`repro.testing.faults.ServiceFaultInjector` —
        service-level chaos (stalls, artifact corruption, synthetic
        worker faults).
    engine_faults:
        Optional :class:`repro.testing.faults.FaultInjector` attached to
        every sharded sweep — kernel-level chaos (worker crashes, shm
        poison) exercised *through* the service.
    """

    def __init__(
        self,
        socket_path,
        *,
        max_queue: int = 32,
        workers: int = 2,
        client_inflight: int = 4,
        jobs: int | None = None,
        default_deadline: float | None = None,
        max_engines: int = 4,
        store_bytes: int = 64 * 1024 * 1024,
        store_dir=None,
        disk_bytes: int = 512 * 1024 * 1024,
        resume: bool = False,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        warm: tuple = (),
        faults=None,
        engine_faults=None,
    ):
        self.socket_path = str(socket_path)
        self.max_queue = int(max_queue)
        self.workers = int(workers)
        self.client_inflight = int(client_inflight)
        self.jobs = jobs
        self.default_deadline = default_deadline
        self.max_engines = max(1, int(max_engines))
        self.warm = tuple(warm)
        self.faults = faults
        self.engine_faults = engine_faults
        self.store = ArtifactStore(
            max_bytes=store_bytes, store_dir=store_dir, disk_bytes=disk_bytes
        )
        self.resume = bool(resume)
        #: Queued-request metadata a drained predecessor persisted,
        #: recovered at start under ``resume=True``.  These requests were
        #: *rejected retriable* at drain time — recovery means telling
        #: the operator (and any client reading ``stats``) exactly what
        #: is safe to resubmit against the now-warm artifacts.
        self.recovered_pending: list[dict] = []
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)

        self._server = None
        self._queue: asyncio.PriorityQueue | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._draining = False
        self._drained = asyncio.Event()
        self._seq = itertools.count()
        self._request_index = itertools.count()
        self._sweeps: dict[str, asyncio.Future] = {}
        #: Open client connections, so drain can actually hang up.  A
        #: SIGTERM'd process would drop them at exit anyway; closing
        #: them here keeps an in-process (embedded/test) drain faithful
        #: to that — clients observe the disconnect and fail over.
        self._connections: set = set()
        #: In-flight idempotency keys -> the future computing them, so a
        #: duplicate submission arriving *during* execution shares the
        #: result instead of racing a second sweep.
        self._journal: dict[str, asyncio.Future] = {}
        self._inflight: dict[str, int] = {}
        self._circuits: OrderedDict[str, _CircuitState] = OrderedDict()
        self._circuits_lock = threading.Lock()
        self._ewma_s = 0.5  # rolling estimate of one request's service time
        self.counters = {
            "accepted": 0, "completed": 0, "failed": 0, "shed": 0,
            "coalesced": 0, "cache_hits": 0, "degraded": 0,
            "deadline_queue": 0, "deadline_plan": 0, "deadline_merge": 0,
            "deadline_wait": 0, "drained": 0, "recomputed": 0,
            "journal_hits": 0, "journal_coalesced": 0,
            "pending_persisted": 0, "pending_recovered": 0,
        }

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._queue = asyncio.PriorityQueue(maxsize=self.max_queue)
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path, limit=MAX_LINE_BYTES
        )
        if self.resume:
            await asyncio.to_thread(self._recover)
        if self.warm:
            await asyncio.to_thread(self._prewarm)

    def _prewarm(self) -> None:
        from repro.server.protocol import Request

        for spec in self.warm:
            req = Request(
                op="analyze", circuit=spec, bench=None, knobs={},
                config=AnalysisConfig(),
            )
            state = self._state_for(req)
            if self.jobs is not None:
                with contextlib.suppress(Exception):
                    backend = state.engine.sharded_backend(config=AnalysisConfig(
                        backend="sharded", jobs=self.jobs,
                        fault_injector=self.engine_faults,
                    ))
                    backend.warm(timeout=60.0)

    def _pending_path(self) -> str | None:
        if self.store.store_dir is None:
            return None
        return os.path.join(self.store.store_dir, "pending_requests.json")

    def _recover(self) -> None:
        """Resume-time recovery: predecessor's pending queue + orphans.

        Reads (and removes) the ``pending_requests.json`` a draining
        predecessor persisted, and reaps ``/dev/shm`` segments whose
        owning processes are dead — a kill -9 mid-sweep leaves exported
        shard results nobody will ever attach.
        """
        from repro.core.epp_shard import reap_orphan_segments

        reap_orphan_segments()
        path = self._pending_path()
        if path is None:
            return
        try:
            with open(path, "rb") as handle:
                entries = json.loads(handle.read())
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            entries = []
        if isinstance(entries, list):
            self.recovered_pending = [e for e in entries if isinstance(e, dict)]
            self.counters["pending_recovered"] = len(self.recovered_pending)
        with contextlib.suppress(OSError):
            os.unlink(path)

    def _persist_pending(self, entries: list[dict]) -> None:
        """Drain-time persistence of queued-but-unstarted request metadata.

        The load-shedding contract says this work never started, so the
        metadata is everything a successor needs to report the requests
        retriable: op, client, circuit digest, idempotency key.  Written
        atomically — a crash mid-drain leaves the previous file (or
        none), never a torn one.
        """
        path = self._pending_path()
        if path is None or not entries:
            return
        from repro.core.durable import atomic_write_bytes

        with contextlib.suppress(OSError):
            atomic_write_bytes(
                path, json.dumps(entries, indent=2, sort_keys=True).encode()
            )
            self.counters["pending_persisted"] = len(entries)

    async def run(self, handle_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Finish in-flight requests, reject queued ones, release pools."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._queue is None:  # never started
            self._drained.set()
            return
        if self._server is not None:
            self._server.close()
        # Queued-but-unstarted requests are rejected (retriable): the
        # load-shedding contract says their work never started, so a
        # replacement instance can take them verbatim.
        pending_meta: list[dict] = []
        while True:
            try:
                _, _, item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                self.counters["drained"] += 1
                pending_meta.append({
                    "op": item.req.op,
                    "client": item.req.client,
                    "circuit": digest_of("circuit", item.req.circuit_spec),
                    "idempotency_key": item.req.idempotency,
                    "retriable": True,
                })
                self._finish(
                    item,
                    exc=ServiceUnavailableError(
                        "service is draining; retry against a replacement",
                        retry_after=1.0,
                    ),
                )
                self._release(item.req)
            self._queue.task_done()
        await asyncio.to_thread(self._persist_pending, pending_meta)
        for _ in self._worker_tasks:
            await self._queue.put((-1, next(self._seq), None))
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        # Hang up on connected clients: the drained instance is done, and
        # their retry logic should fail over to the replacement (which can
        # serve journaled results warm).  A dying process would close
        # these sockets anyway; an embedded drain must do it explicitly.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        with self._circuits_lock:
            states = list(self._circuits.values())
            self._circuits.clear()
        for state in states:
            await asyncio.to_thread(state.close)
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        self._drained.set()

    # ------------------------------------------------------------- protocol

    async def _handle_client(self, reader, writer):
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    from repro.errors import ParseError

                    writer.write(encode(error_response(
                        ParseError("request line too long")
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # vanished client; any shared sweep keeps running
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, line: bytes) -> dict:
        try:
            req = parse_request(decode_line(line))
        except Exception as exc:
            return error_response(exc)
        if req.op == "ping":
            return ok_response({"pong": True, "draining": self._draining})
        if req.op == "stats":
            return ok_response(self.stats())
        return await self._submit(req)

    # ------------------------------------------------------------ admission

    def _coalesce_key(self, req) -> str | None:
        if req.op != "analyze" or not req.coalesce:
            return None
        # The knob identity is AnalysisConfig.digest() — canonical under
        # field order and construction path, and WIRE_VERSION-stamped so
        # a wire-format bump can never alias a pre-bump key.
        return digest_of(
            "analyze", req.circuit_spec, req.analysis_config.digest(),
            req.sites, req.fit, req.top,
        )

    def _journal_key(self, req) -> str | None:
        if req.idempotency is None:
            return None
        # Client-scoped: two clients independently choosing key "a" must
        # never alias each other's results.
        return digest_of("journal", req.client, req.idempotency)

    @staticmethod
    def _request_digest(req) -> str:
        """What an idempotency key must stay bound to: the request body."""
        return digest_of(
            "request", req.op, req.circuit_spec,
            req.analysis_config.digest(),
            req.sites, req.fit, req.top, req.edits,
        )

    def _retry_after(self) -> float:
        depth = self._queue.qsize() if self._queue is not None else 0
        return round(self._ewma_s * (depth + 1) / max(1, self.workers), 3)

    def _admit(self, req) -> None:
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining; retry against a replacement",
                retry_after=1.0,
            )
        held = self._inflight.get(req.client, 0)
        if held >= self.client_inflight:
            raise QueueFullError(
                f"client {req.client!r} already has {held} requests in "
                f"flight (cap {self.client_inflight})",
                retry_after=self._retry_after(),
            )
        if self._queue.full():
            raise QueueFullError(
                f"admission queue is full ({self.max_queue} requests)",
                retry_after=self._retry_after(),
            )
        self._inflight[req.client] = held + 1
        self.counters["accepted"] += 1

    def _release(self, req) -> None:
        held = self._inflight.get(req.client, 0)
        if held <= 1:
            self._inflight.pop(req.client, None)
        else:
            self._inflight[req.client] = held - 1

    async def _submit(self, req) -> dict:
        started = time.monotonic()
        budget = req.deadline if req.deadline is not None else self.default_deadline
        deadline = Deadline(budget)
        jkey = self._journal_key(req)
        if jkey is not None:
            # Journaled duplicate: the request already ran to completion
            # (possibly in a previous server process — the journal lives
            # in the artifact store, disk tier included).  Serve the
            # recorded result; never re-sweep.
            record = await asyncio.to_thread(self.store.get, "journal", jkey)
            if record is not None:
                if record.get("request") != self._request_digest(req):
                    return error_response(ConfigError(
                        f"idempotency_key {req.idempotency!r} was already "
                        f"used by client {req.client!r} for a different "
                        f"request"
                    ))
                self.counters["journal_hits"] += 1
                payload = dict(record.get("payload") or {})
                payload["journaled"] = True
                return ok_response(payload, served_s=round(
                    time.monotonic() - started, 6
                ), coalesced=False)
            shared = self._journal.get(jkey)
            if shared is not None:
                # In-flight duplicate: share the computing future, each
                # subscriber under its own deadline (as with coalescing).
                self.counters["journal_coalesced"] += 1
                return await self._await_future(
                    shared, deadline, started, coalesced=True
                )
        key = self._coalesce_key(req)
        if key is not None:
            shared = self._sweeps.get(key)
            if shared is not None:
                self.counters["coalesced"] += 1
                return await self._await_future(
                    shared, deadline, started, coalesced=True
                )
        try:
            self._admit(req)
        except Exception as exc:
            self.counters["shed"] += 1
            return error_response(exc)
        future = asyncio.get_running_loop().create_future()
        item = _Item(req, deadline, future, key, jkey, next(self._request_index))
        if key is not None:
            self._sweeps[key] = future
        if jkey is not None:
            self._journal[jkey] = future
        # No await between _admit's full() check and this put: admission
        # and enqueue are atomic on the event loop.
        self._queue.put_nowait((_PRIORITY[req.op], next(self._seq), item))
        return await self._await_future(future, deadline, started, coalesced=False)

    async def _await_future(self, future, deadline, started, coalesced) -> dict:
        """Wait for a (possibly shared) result under this caller's deadline.

        ``asyncio.shield`` is what makes per-subscriber cancellation
        safe: a timeout or a vanished client abandons *this* wait, never
        the shared computation other subscribers still need.
        """
        remaining = deadline.remaining()
        try:
            if remaining is None:
                payload = await asyncio.shield(future)
            else:
                payload = await asyncio.wait_for(
                    asyncio.shield(future), timeout=remaining
                )
        except asyncio.TimeoutError:
            self.counters["deadline_wait"] += 1
            return error_response(DeadlineExceededError(
                "deadline expired while waiting for the result"
            ))
        except Exception as exc:
            return error_response(exc)
        meta = {
            "served_s": round(time.monotonic() - started, 6),
            "coalesced": coalesced,
        }
        return ok_response(payload, **meta)

    # -------------------------------------------------------------- workers

    async def _worker(self) -> None:
        while True:
            _, _, item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            try:
                await self._execute(item)
            finally:
                self._queue.task_done()
                self._release(item.req)

    async def _execute(self, item: _Item) -> None:
        if self._draining:
            self.counters["drained"] += 1
            self._finish(item, exc=ServiceUnavailableError(
                "service is draining; retry against a replacement",
                retry_after=1.0,
            ))
            return
        if item.deadline.expired():
            # Queue-dequeue boundary: the caller's budget burned away
            # while the request waited — never start the work.
            self.counters["deadline_queue"] += 1
            self._finish(item, exc=DeadlineExceededError(
                "deadline expired while queued"
            ))
            return
        started = time.monotonic()
        try:
            payload = await asyncio.to_thread(
                self._run_request, item.req, item.deadline, item.index
            )
        except Exception as exc:
            self.counters["failed"] += 1
            self._finish(item, exc=exc)
        else:
            elapsed = time.monotonic() - started
            self._ewma_s = 0.7 * self._ewma_s + 0.3 * elapsed
            self.counters["completed"] += 1
            if payload.get("degraded"):
                self.counters["degraded"] += 1
            if payload.get("cached"):
                self.counters["cache_hits"] += 1
            self._finish(item, payload=payload)

    def _finish(self, item: _Item, payload=None, exc=None) -> None:
        if item.key is not None and self._sweeps.get(item.key) is item.future:
            del self._sweeps[item.key]
        if item.jkey is not None and self._journal.get(item.jkey) is item.future:
            del self._journal[item.jkey]
        if item.future.done():
            return
        if exc is not None:
            item.future.set_exception(exc)
            # The subscriber may already have given up; retrieving the
            # exception here keeps asyncio from logging it as unhandled.
            item.future.exception()
        else:
            item.future.set_result(payload)

    # ------------------------------------------------------- request logic
    # Everything below runs in a worker thread (asyncio.to_thread).

    def _state_for(self, req) -> _CircuitState:
        spec = req.circuit_spec
        digest = digest_of("circuit", spec)
        with self._circuits_lock:
            state = self._circuits.get(digest)
            if state is not None:
                self._circuits.move_to_end(digest)
                return state
        circuit = self.store.get("circuit", digest)
        if circuit is None:
            if req.bench is not None:
                from repro.netlist.bench import parse_bench

                circuit = parse_bench(req.bench, name=f"wire-{digest[:8]}")
            else:
                from repro.cli import resolve_circuit

                circuit = resolve_circuit(req.circuit)
            self.store.put("circuit", digest, circuit)
        from repro.core.analysis import SERAnalyzer

        analyzer = SERAnalyzer(circuit)
        state = _CircuitState(digest, circuit, analyzer.engine, analyzer)
        evicted = []
        with self._circuits_lock:
            existing = self._circuits.get(digest)
            if existing is not None:
                return existing  # lost a benign build race
            self._circuits[digest] = state
            while len(self._circuits) > self.max_engines:
                _, old = self._circuits.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.close()
        return state

    def _sweep_knobs(self, req, deadline, dedicated: bool) -> tuple[dict, bool]:
        """Resolve request knobs into sweep knobs; returns (knobs, degraded).

        A dedicated (non-coalesced) sharded sweep carries the request's
        remaining budget into ``FaultPolicy.deadline``; shared sweeps
        run under no per-request policy (subscribers each enforce their
        own deadline while waiting), keeping the warm pool's policy —
        and therefore the pool itself — stable across requests.
        """
        knobs = dict(req.knobs)
        if (
            self.jobs is not None
            and knobs.get("jobs") is None
            and knobs.get("backend") in (None, "sharded")
        ):
            knobs["jobs"] = self.jobs
            knobs["backend"] = "sharded"
        sharded = knobs.get("backend") == "sharded" or knobs.get("jobs") is not None
        if not sharded:
            return knobs, False
        if not self.breaker.allow_sharded():
            return self._degrade_knobs(knobs), True
        knobs.setdefault("backend", "sharded")
        if self.engine_faults is not None:
            knobs["fault_injector"] = self.engine_faults
        if self.store.store_dir is not None:
            # Server-controlled (never wire-reachable) sweep journal, one
            # directory per circuit: a sweep the server dies inside is
            # resumed — not restarted — by its successor.
            knobs["checkpoint"] = os.path.join(
                self.store.store_dir, "checkpoints",
                digest_of("circuit", req.circuit_spec),
            )
        if dedicated:
            # Explicit (possibly None) so a delta re-sweep never inherits
            # a *previous* request's deadline through the snapshot knobs.
            knobs["deadline"] = deadline.remaining()
        return knobs, False

    @staticmethod
    def _degrade_knobs(knobs: dict) -> dict:
        degraded = {
            key: value for key, value in knobs.items()
            if key not in _SHARDED_ONLY
        }
        degraded["backend"] = "vector"
        # Explicit None overrides survive knob merging in analyze_delta,
        # clearing any sharded-only knob a snapshot may have recorded.
        for key in _SHARDED_ONLY:
            degraded[key] = None
        degraded["jobs"] = None
        return degraded

    def _run_request(self, req, deadline, index) -> dict:
        state = self._state_for(req)
        if req.op == "analyze":
            payload = self._run_analyze(req, state, deadline, index)
        else:
            payload = self._run_delta(req, state, deadline, index)
        jkey = self._journal_key(req)
        if jkey is not None:
            # Journal successes only: errors stay retriable by design.
            self.store.put("journal", jkey, {
                "request": self._request_digest(req),
                "payload": payload,
            })
        return payload

    def _sweep(self, req, state, deadline, run, dedicated, index) -> tuple:
        """Run one sweep under the breaker: returns (delta, degraded).

        ``run`` is a callable taking the resolved sweep knobs.  A
        transient :class:`ResilienceError` from a sharded sweep counts
        against the breaker and degrades *this* request to the
        in-process backend — bit-identical — unless the failure was
        really the request's own deadline expiring, which stays a
        deadline error (retrying in-process would only burn more time
        past a budget that is already gone).  In-band chaos faults
        (:class:`~repro.testing.faults.ServiceFaultInjector`) fire on
        the initial attempt only: they model the service/pool side, and
        the degrade retry is exactly the recovery being pinned.
        """
        knobs, degraded = self._sweep_knobs(req, deadline, dedicated)
        sharded = knobs.get("backend") == "sharded"
        try:
            if self.faults is not None:
                self.faults.apply("sweep", req.op, index)
            delta = run(knobs)
        except ResilienceError as exc:
            if deadline.expired():
                raise DeadlineExceededError(
                    "deadline expired during the sweep"
                ) from exc
            if not sharded:
                raise
            self.breaker.record_failure()
            delta = run(self._degrade_knobs(knobs))
            degraded = True
        else:
            if sharded and not degraded:
                self.breaker.record_success()
        return delta, degraded

    def _run_analyze(self, req, state, deadline, index) -> dict:
        token = state.circuit.mutation_token
        result_key = digest_of(
            "analyze", state.digest, req.analysis_config.digest(),
            req.sites, req.fit, req.top,
        )
        if self.faults is not None and self.faults.should(
            "corrupt_artifact", req.op, index
        ):
            self.store.corrupt("result", result_key)
        payload = self.store.get("result", result_key, token=token)
        if payload is not None:
            payload = dict(payload)
            payload["cached"] = True
            return payload
        recomputed = ("result", result_key) in self.store.quarantined
        if deadline.expired():
            # Plan-build boundary: state exists but no sweep planned yet.
            self.counters["deadline_plan"] += 1
            raise DeadlineExceededError("deadline expired before plan build")

        def run(knobs):
            return state.engine.snapshot(sites=req.sites, **knobs)

        delta, degraded = self._sweep(
            req, state, deadline, run, dedicated=not req.coalesce, index=index
        )
        with state.lock:
            if state.delta is None:
                state.delta = delta  # seed the what-if chain
        if deadline.expired():
            # Merge boundary: the sweep finished but the caller is gone.
            self.counters["deadline_merge"] += 1
            raise DeadlineExceededError("deadline expired before results merged")
        payload = self._payload(req, state, delta, degraded)
        if recomputed:
            self.counters["recomputed"] += 1
            payload["recomputed"] = True
        self.store.put("result", result_key, payload, token=token)
        payload = dict(payload)
        payload["cached"] = False
        return payload

    def _run_delta(self, req, state, deadline, index) -> dict:
        edits = edits_from_wire(req.edits)
        if deadline.expired():
            self.counters["deadline_plan"] += 1
            raise DeadlineExceededError("deadline expired before plan build")
        base_degraded = False
        with state.lock:
            if state.delta is None:
                # Cold chain: charge the base snapshot to this request.
                base, base_degraded = self._sweep(
                    req, state, deadline, lambda knobs: state.engine.snapshot(**knobs),
                    dedicated=True, index=index,
                )
                state.delta = base
            previous = state.delta

            def run(knobs):
                return previous.engine.analyze_delta(
                    previous, edits, sites=req.sites, **knobs
                )

            delta, degraded = self._sweep(
                req, state, deadline, run, dedicated=True, index=index
            )
            degraded = degraded or base_degraded
            if previous.engine is not state.engine and previous.engine is not delta.engine:
                # Retired revision: close its pools deterministically
                # instead of waiting on GC (its /dev/shm segments must
                # not outlive the revision).
                previous.engine.release_buffers()
            state.delta = delta
        if deadline.expired():
            self.counters["deadline_merge"] += 1
            raise DeadlineExceededError("deadline expired before results merged")
        payload = self._payload(req, state, delta, degraded)
        payload["cached"] = False
        return payload

    def _payload(self, req, state, delta, degraded) -> dict:
        payload = {
            "circuit": delta.engine.circuit.name,
            "digest": state.digest,
            "revision": int(delta.stats.get("chain_length", 0)),
            "sites": list(delta.site_names),
            "p_sensitized": [float(p) for p in delta.p_sensitized],
            "cone_sizes": [int(size) for size in delta.cone_sizes],
            "sweep": {key: int(value) for key, value in delta.stats.items()},
            "degraded": bool(degraded),
        }
        if req.fit:
            report = state.analyzer.report_for(delta)
            payload["fit"] = report.to_dict(req.top)
        return payload

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "draining": self._draining,
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "max_queue": self.max_queue,
            "workers": self.workers,
            "inflight": dict(self._inflight),
            "engines": len(self._circuits),
            "breaker": {
                "state": self.breaker.state,
                "failures": self.breaker.failures,
                "trips": self.breaker.trips,
            },
            "counters": dict(self.counters),
            "artifacts": self.store.stats(),
            "retry_after": self._retry_after(),
            "recovered_pending": list(self.recovered_pending),
        }
