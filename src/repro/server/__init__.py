"""SER as a service: the long-lived analysis server (PR 8).

* :mod:`repro.server.service` — :class:`AnalysisService`: admission
  control, end-to-end deadlines, request coalescing, circuit breaker,
  graceful drain.
* :mod:`repro.server.artifacts` — :class:`ArtifactStore`:
  content-addressed, checksummed, mutation-token-aware cache.
* :mod:`repro.server.protocol` — the JSON-lines wire protocol and the
  retriable/terminal error taxonomy.
* :mod:`repro.server.client` — :class:`ServeClient`, the blocking
  client used by tests, benchmarks and scripts.
"""

from repro.server.artifacts import ArtifactStore, digest_of
from repro.server.client import ServeClient
from repro.server.service import AnalysisService, CircuitBreaker

__all__ = [
    "AnalysisService",
    "ArtifactStore",
    "CircuitBreaker",
    "ServeClient",
    "digest_of",
]
