"""Blocking client for the analysis service (tests, benchmarks, scripts).

:class:`ServeClient` speaks the JSON-lines protocol over the unix
socket.  Error responses re-raise as the *typed* exceptions of the wire
taxonomy — a caller catches :class:`~repro.errors.QueueFullError` and
backs off for ``retry_after`` seconds, exactly as it would in-process::

    with ServeClient("/tmp/repro.sock") as client:
        result = client.analyze(circuit="c432", fit=True)
        delta = client.analyze_delta(
            circuit="c432", edits=[["harden", "g123", 10.0]]
        )

With ``retries`` set the client retries *retriable* errors itself,
honoring each error's ``retry_after`` with bounded deterministic
backoff, and reconnects once per call when the connection drops or is
refused — the restarted-server case.  Pair that with an
``idempotency_key`` and a retried request can never run twice: the
replacement server answers from its journal.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServerError,
    ServiceUnavailableError,
)

__all__ = ["ServeClient", "ServeRequestError"]

#: Wire error type -> local exception class for re-raising.
_ERROR_TYPES = {
    "QueueFullError": QueueFullError,
    "DeadlineExceededError": DeadlineExceededError,
    "ServiceUnavailableError": ServiceUnavailableError,
}

#: Transport-level failures that mean "the server went away", not "the
#: server said no": the socket refused (restarted server not yet
#: listening), reset/broken mid-request, or missing entirely (the old
#: socket path was unlinked at drain).  These get the free reconnect.
_TRANSPORT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    FileNotFoundError,
)


class ServeRequestError(ReproError):
    """A typed error response that is not a :class:`ServerError` subclass.

    Carries the wire taxonomy so callers still branch on retriability
    without string matching.
    """

    def __init__(self, info: dict):
        self.type = info.get("type", "InternalError")
        self.retriable = bool(info.get("retriable", False))
        self.retry_after = info.get("retry_after")
        super().__init__(f"{self.type}: {info.get('message', '')}")


def _raise_for(info: dict):
    cls = _ERROR_TYPES.get(info.get("type"))
    if cls is not None:
        exc = cls(info.get("message", ""), retry_after=info.get("retry_after"))
        raise exc
    raise ServeRequestError(info)


def _is_retriable(exc: BaseException) -> bool:
    if isinstance(exc, (ServerError, ServeRequestError)):
        return bool(exc.retriable)
    return False


class ServeClient:
    """One connection to an :class:`~repro.server.service.AnalysisService`.

    ``timeout`` is the *socket* timeout (transport stalls); request
    deadlines are a separate, server-enforced concept passed per call.

    ``retries`` bounds the automatic retries of *retriable* typed errors
    (queue-full, drain, transient worker faults) per :meth:`call` — the
    default 0 preserves the raise-immediately behavior.  Each retry
    sleeps the server's ``retry_after`` estimate when given, else a
    deterministic exponential backoff ``backoff * 2**(attempt-1)``
    capped at ``backoff_cap`` — no jitter, so test timings are exact.
    Independently of ``retries``, a dropped/refused connection is
    reconnected and the request resent **once** per call (the
    restarted-server case); disable with ``reconnect=False``.
    """

    def __init__(
        self,
        socket_path,
        timeout: float = 120.0,
        client_id: str = "anon",
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        reconnect: bool = True,
    ):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.client_id = client_id
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.reconnect = bool(reconnect)
        #: Attempts the most recent :meth:`call` made (introspection).
        self.last_attempts = 0
        #: Reconnects performed across the client's lifetime.
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._file = None

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- raw I/O

    def request(self, payload: dict) -> dict:
        """Send one request object, return the raw response object."""
        self.connect()
        line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(line)
        reply = self._file.readline()
        if not reply:
            raise ConnectionLostError(
                "connection closed by the analysis service", retry_after=1.0
            )
        return json.loads(reply)

    def _backoff_delay(self, attempt: int, retry_after) -> float:
        if retry_after is not None:
            return min(float(retry_after), self.backoff_cap)
        return min(self.backoff * (2.0 ** (attempt - 1)), self.backoff_cap)

    def call(self, payload: dict) -> dict:
        """``request`` + raise typed errors; returns the full ok response.

        Applies the client's retry policy (see the class docstring): a
        transport drop reconnects and resends once per call, a retriable
        typed error is retried up to ``retries`` times with deterministic
        backoff, and anything terminal raises immediately.
        """
        attempt = 0
        retries_left = self.retries
        reconnects_left = 1 if self.reconnect else 0
        while True:
            attempt += 1
            self.last_attempts = attempt
            try:
                response = self.request(payload)
            except _TRANSPORT_ERRORS + (ConnectionLostError,) as exc:
                # The server went away mid-conversation.  Drop the dead
                # socket either way; resend once if allowed.
                self.close()
                if reconnects_left <= 0:
                    raise
                reconnects_left -= 1
                self.reconnects += 1
                retry_after = getattr(exc, "retry_after", None)
                if retry_after:
                    time.sleep(min(float(retry_after), self.backoff_cap))
                continue
            if response.get("ok"):
                return response
            info = response.get("error") or {}
            if not info.get("retriable") or retries_left <= 0:
                _raise_for(info)
            retries_left -= 1
            time.sleep(self._backoff_delay(attempt, info.get("retry_after")))

    # ------------------------------------------------------------------ ops

    def ping(self) -> dict:
        return self.call({"op": "ping"})["result"]

    def stats(self) -> dict:
        return self.call({"op": "stats"})["result"]

    def analyze(
        self,
        bench: str | None = None,
        circuit: str | None = None,
        sites=None,
        knobs: dict | None = None,
        deadline: float | None = None,
        fit: bool = False,
        top: int | None = None,
        coalesce: bool = True,
        idempotency_key: str | None = None,
    ) -> dict:
        """Full sweep; returns the ok response (``result`` + meta)."""
        return self.call({
            "op": "analyze",
            "bench": bench,
            "circuit": circuit,
            "sites": sites,
            "knobs": knobs or {},
            "deadline": deadline,
            "client": self.client_id,
            "fit": fit,
            "top": top,
            "coalesce": coalesce,
            "idempotency_key": idempotency_key,
        })

    def analyze_delta(
        self,
        edits: list,
        bench: str | None = None,
        circuit: str | None = None,
        sites=None,
        knobs: dict | None = None,
        deadline: float | None = None,
        fit: bool = False,
        top: int | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """Incremental what-if step on the server-held chain."""
        return self.call({
            "op": "analyze_delta",
            "bench": bench,
            "circuit": circuit,
            "sites": sites,
            "knobs": knobs or {},
            "deadline": deadline,
            "client": self.client_id,
            "fit": fit,
            "top": top,
            "edits": edits,
            "idempotency_key": idempotency_key,
        })
