"""Blocking client for the analysis service (tests, benchmarks, scripts).

:class:`ServeClient` speaks the JSON-lines protocol over the unix
socket.  Error responses re-raise as the *typed* exceptions of the wire
taxonomy — a caller catches :class:`~repro.errors.QueueFullError` and
backs off for ``retry_after`` seconds, exactly as it would in-process::

    with ServeClient("/tmp/repro.sock") as client:
        result = client.analyze(circuit="c432", fit=True)
        delta = client.analyze_delta(
            circuit="c432", edits=[["harden", "g123", 10.0]]
        )
"""

from __future__ import annotations

import json
import socket

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServiceUnavailableError,
)

__all__ = ["ServeClient", "ServeRequestError"]

#: Wire error type -> local exception class for re-raising.
_ERROR_TYPES = {
    "QueueFullError": QueueFullError,
    "DeadlineExceededError": DeadlineExceededError,
    "ServiceUnavailableError": ServiceUnavailableError,
}


class ServeRequestError(ReproError):
    """A typed error response that is not a :class:`ServerError` subclass.

    Carries the wire taxonomy so callers still branch on retriability
    without string matching.
    """

    def __init__(self, info: dict):
        self.type = info.get("type", "InternalError")
        self.retriable = bool(info.get("retriable", False))
        self.retry_after = info.get("retry_after")
        super().__init__(f"{self.type}: {info.get('message', '')}")


def _raise_for(info: dict):
    cls = _ERROR_TYPES.get(info.get("type"))
    if cls is not None:
        exc = cls(info.get("message", ""), retry_after=info.get("retry_after"))
        raise exc
    raise ServeRequestError(info)


class ServeClient:
    """One connection to an :class:`~repro.server.service.AnalysisService`.

    ``timeout`` is the *socket* timeout (transport stalls); request
    deadlines are a separate, server-enforced concept passed per call.
    """

    def __init__(self, socket_path, timeout: float = 120.0, client_id: str = "anon"):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.client_id = client_id
        self._sock: socket.socket | None = None
        self._file = None

    # ------------------------------------------------------------ lifecycle

    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- raw I/O

    def request(self, payload: dict) -> dict:
        """Send one request object, return the raw response object."""
        self.connect()
        line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(line)
        reply = self._file.readline()
        if not reply:
            raise ServiceUnavailableError(
                "connection closed by the analysis service", retry_after=1.0
            )
        return json.loads(reply)

    def call(self, payload: dict) -> dict:
        """``request`` + raise typed errors; returns the full ok response."""
        response = self.request(payload)
        if not response.get("ok"):
            _raise_for(response.get("error") or {})
        return response

    # ------------------------------------------------------------------ ops

    def ping(self) -> dict:
        return self.call({"op": "ping"})["result"]

    def stats(self) -> dict:
        return self.call({"op": "stats"})["result"]

    def analyze(
        self,
        bench: str | None = None,
        circuit: str | None = None,
        sites=None,
        knobs: dict | None = None,
        deadline: float | None = None,
        fit: bool = False,
        top: int | None = None,
        coalesce: bool = True,
    ) -> dict:
        """Full sweep; returns the ok response (``result`` + meta)."""
        return self.call({
            "op": "analyze",
            "bench": bench,
            "circuit": circuit,
            "sites": sites,
            "knobs": knobs or {},
            "deadline": deadline,
            "client": self.client_id,
            "fit": fit,
            "top": top,
            "coalesce": coalesce,
        })

    def analyze_delta(
        self,
        edits: list,
        bench: str | None = None,
        circuit: str | None = None,
        sites=None,
        knobs: dict | None = None,
        deadline: float | None = None,
        fit: bool = False,
        top: int | None = None,
    ) -> dict:
        """Incremental what-if step on the server-held chain."""
        return self.call({
            "op": "analyze_delta",
            "bench": bench,
            "circuit": circuit,
            "sites": sites,
            "knobs": knobs or {},
            "deadline": deadline,
            "client": self.client_id,
            "fit": fit,
            "top": top,
            "edits": edits,
        })
