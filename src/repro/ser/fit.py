"""FIT unit handling and aggregation.

FIT (Failures In Time) is the reliability community's unit for soft error
rates: failures per 10^9 device-hours.  Per-node rates computed as
``R_SEU x P_latched x P_sensitized`` are in failures/second; these helpers
convert and combine them.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigError

__all__ = ["per_second_to_fit", "fit_to_per_second", "fit_to_mtbf_years", "combine_fit"]

_SECONDS_PER_1E9_HOURS = 3600.0 * 1.0e9


def per_second_to_fit(rate_per_second: float) -> float:
    """failures/second -> FIT (failures per 1e9 device-hours)."""
    if rate_per_second < 0:
        raise ConfigError(f"rate must be >= 0, got {rate_per_second}")
    return rate_per_second * _SECONDS_PER_1E9_HOURS


def fit_to_per_second(fit: float) -> float:
    """FIT -> failures/second."""
    if fit < 0:
        raise ConfigError(f"FIT must be >= 0, got {fit}")
    return fit / _SECONDS_PER_1E9_HOURS


def fit_to_mtbf_years(fit: float) -> float:
    """FIT -> mean time between failures in years (inf for 0 FIT)."""
    if fit < 0:
        raise ConfigError(f"FIT must be >= 0, got {fit}")
    if fit == 0:
        return float("inf")
    hours = 1.0e9 / fit
    return hours / (24.0 * 365.25)


def combine_fit(node_fits: Iterable[float]) -> float:
    """Circuit-level FIT: rates of rare independent upsets add linearly."""
    total = 0.0
    for fit in node_fits:
        if fit < 0:
            raise ConfigError(f"FIT must be >= 0, got {fit}")
        total += fit
    return total
