"""Electrical-masking attenuation (extension beyond the paper).

The paper's EPP covers *logical* masking and its latching model covers
*temporal* masking; the third mechanism of Shivakumar et al. [6] is
*electrical* masking — each gate a transient traverses attenuates it, and
pulses below a cutoff width die out.  This module provides the standard
first-order level-count model::

    w_out = w_in - attenuation_per_level        (0 once below cutoff)

combined with :class:`~repro.ser.latching.LatchingModel` it derates deep
error sites more than shallow ones.  Disabled by default in the analyzer so
the reproduction matches the paper's two-factor model; the examples and
ablation benches switch it on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ElectricalMaskingModel"]


@dataclass(frozen=True)
class ElectricalMaskingModel:
    """Linear per-level pulse attenuation, all times in seconds.

    Parameters
    ----------
    attenuation_per_level:
        Width lost per logic level traversed (default 10 ps).
    cutoff_width:
        Pulses at or below this width are considered fully masked
        (default 20 ps).
    """

    attenuation_per_level: float = 1.0e-11
    cutoff_width: float = 2.0e-11

    def __post_init__(self) -> None:
        if self.attenuation_per_level < 0:
            raise ConfigError(
                f"attenuation_per_level must be >= 0, got {self.attenuation_per_level}"
            )
        if self.cutoff_width < 0:
            raise ConfigError(f"cutoff_width must be >= 0, got {self.cutoff_width}")

    def width_after(self, initial_width: float, levels: int) -> float:
        """Pulse width after traversing ``levels`` gates (0 if masked)."""
        if levels < 0:
            raise ConfigError(f"levels must be >= 0, got {levels}")
        width = initial_width - levels * self.attenuation_per_level
        if width <= self.cutoff_width:
            return 0.0
        return width
