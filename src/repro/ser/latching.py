"""Latching-window derating: ``P_latched(n_i)``.

A transient pulse arriving at a flip-flop's D pin is captured only if it
overlaps the latching window around the clock edge.  The standard
first-order model (Mohanram & Touba [3]; Nguyen & Yagil [4]) is::

    P_latched = (w - t_setup_hold) / T_clk        (clipped to [0, 1])

where ``w`` is the transient pulse width at the flip-flop input.  Pulses
narrower than the window can never be captured; pulses wider than the
clock period are always captured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["LatchingModel"]


@dataclass(frozen=True)
class LatchingModel:
    """Latching-window model with all times in seconds.

    Parameters
    ----------
    clock_period:
        ``T_clk`` (default 1 GHz clock = 1e-9 s).
    window:
        Setup+hold aperture ``t_setup_hold`` (default 50 ps).
    nominal_pulse_width:
        Transient width at the error site before any attenuation
        (default 150 ps, a typical 2005-era SET width).
    """

    clock_period: float = 1.0e-9
    window: float = 5.0e-11
    nominal_pulse_width: float = 1.5e-10

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise ConfigError(f"clock_period must be > 0, got {self.clock_period}")
        if self.window < 0:
            raise ConfigError(f"window must be >= 0, got {self.window}")
        if self.nominal_pulse_width < 0:
            raise ConfigError(
                f"nominal_pulse_width must be >= 0, got {self.nominal_pulse_width}"
            )

    def p_latched(self, pulse_width: float | None = None) -> float:
        """Capture probability for a pulse of the given width (default nominal)."""
        width = self.nominal_pulse_width if pulse_width is None else pulse_width
        if width < 0:
            raise ConfigError(f"pulse_width must be >= 0, got {width}")
        effective = (width - self.window) / self.clock_period
        if effective < 0.0:
            return 0.0
        if effective > 1.0:
            return 1.0
        return effective
