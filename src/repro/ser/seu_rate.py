"""Parametric raw SEU rate model: ``R_SEU(n_i)``.

The paper takes ``R_SEU`` as an input: "the bit-flip rate at node n_i which
depends on the particle flux, the energy of the particle, type and size of
the gate, and the device characteristics".  This module provides exactly
that parametric surface:

``R_SEU = flux x cross_section(gate_type) x drive_strength_factor``

with the per-type cross sections expressing that larger/more-complex cells
present more sensitive diffusion area, and the drive-strength factor that
upsized cells need more collected charge to flip (smaller cross section).

The numeric defaults are order-of-magnitude figures consistent with the
2005-era literature (sea-level neutron flux ~56.5 /m^2/s above 10 MeV;
per-cell sensitive cross sections of 1e-14..1e-13 cm^2), and they cancel
out of every *relative* result (rankings, speedups, percentage
differences).  Absolute FIT outputs should be read as calibrated-model
placeholders, as in the paper.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.netlist.gate_types import GateType

__all__ = ["SEURateModel", "TECHNOLOGY_PRESETS"]

#: Relative sensitive-area weight per gate type (dimensionless).
_DEFAULT_TYPE_WEIGHTS: dict[GateType, float] = {
    GateType.NOT: 0.6,
    GateType.BUF: 0.6,
    GateType.AND: 1.0,
    GateType.NAND: 0.9,
    GateType.OR: 1.0,
    GateType.NOR: 0.9,
    GateType.XOR: 1.5,
    GateType.XNOR: 1.5,
    GateType.MUX: 1.4,
    GateType.MAJ: 1.8,
    GateType.DFF: 2.0,
    GateType.INPUT: 0.0,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
}


@dataclass(frozen=True)
class SEURateModel:
    """``R_SEU`` as flux x cross-section x per-node factors.

    Parameters
    ----------
    flux:
        Particle flux in particles / cm^2 / s (default: sea-level neutron
        flux above 10 MeV, 5.65e-3 /cm^2/s).
    base_cross_section_cm2:
        Sensitive cross section of a reference (weight-1.0) gate in cm^2.
    type_weights:
        Relative sensitive-area weight per gate type.
    drive_strength:
        Per-node drive-strength factor map (node name -> factor).  A factor
        ``s`` divides the cross section by ``s`` (upsized cells are harder
        to upset).  Used by the gate-sizing hardening flow.
    """

    flux: float = 5.65e-3
    base_cross_section_cm2: float = 5.0e-14
    type_weights: Mapping[str, float] = field(
        default_factory=lambda: {g.value: w for g, w in _DEFAULT_TYPE_WEIGHTS.items()}
    )
    drive_strength: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flux < 0:
            raise ConfigError(f"flux must be >= 0, got {self.flux}")
        if self.base_cross_section_cm2 < 0:
            raise ConfigError(
                f"base_cross_section_cm2 must be >= 0, got {self.base_cross_section_cm2}"
            )
        for name, factor in self.drive_strength.items():
            if factor <= 0:
                raise ConfigError(
                    f"drive strength for {name!r} must be > 0, got {factor}"
                )

    def rate(self, gate_type: GateType, node_name: str | None = None) -> float:
        """Raw upset rate (upsets/second) for one node."""
        weight = self.type_weights.get(gate_type.value)
        if weight is None:
            raise ConfigError(f"no type weight for gate type {gate_type.value}")
        strength = self.drive_strength.get(node_name, 1.0) if node_name else 1.0
        return self.flux * self.base_cross_section_cm2 * weight / strength

    def with_drive_strength(self, updates: Mapping[str, float]) -> "SEURateModel":
        """A copy with additional/overridden per-node drive strengths."""
        merged = dict(self.drive_strength)
        merged.update(updates)
        return SEURateModel(
            flux=self.flux,
            base_cross_section_cm2=self.base_cross_section_cm2,
            type_weights=dict(self.type_weights),
            drive_strength=merged,
        )


#: Named presets: rough technology/environment corners for examples and
#: sensitivity studies.  ``flux`` scales with altitude; cross sections
#: shrink with feature size while per-bit sensitivity grows — the numbers
#: here are illustrative corners, not foundry data.
TECHNOLOGY_PRESETS: dict[str, SEURateModel] = {
    "sea-level-180nm": SEURateModel(flux=5.65e-3, base_cross_section_cm2=5.0e-14),
    "sea-level-130nm": SEURateModel(flux=5.65e-3, base_cross_section_cm2=8.0e-14),
    "sea-level-90nm": SEURateModel(flux=5.65e-3, base_cross_section_cm2=1.2e-13),
    "avionics-130nm": SEURateModel(flux=3.0, base_cross_section_cm2=8.0e-14),
}
