"""SER component models: raw upset rate, latching window, electrical masking.

The paper factors a node's soft error rate as::

    SER(n_i) = R_SEU(n_i) x P_latched(n_i) x P_sensitized(n_i)

``P_sensitized`` comes from the EPP engine (:mod:`repro.core`); this
package provides the other two factors plus unit handling and the
hardening flows built on top of the full product:

* :mod:`repro.ser.seu_rate` — parametric ``R_SEU`` (flux x sensitive
  cross-section by gate type and drive strength), with technology presets.
* :mod:`repro.ser.latching` — latching-window derating ``P_latched``.
* :mod:`repro.ser.electrical` — optional electrical-masking attenuation
  (completes the three masking mechanisms of Shivakumar et al. [6]).
* :mod:`repro.ser.fit` — FIT (failures per 1e9 device-hours) conversions
  and aggregation.
* :mod:`repro.ser.hardening` — selective hardening and TMR evaluation,
  the paper's motivating application.
"""

from repro.ser.seu_rate import SEURateModel, TECHNOLOGY_PRESETS
from repro.ser.latching import LatchingModel
from repro.ser.electrical import ElectricalMaskingModel
from repro.ser.fit import per_second_to_fit, fit_to_mtbf_years, combine_fit

__all__ = [
    "SEURateModel",
    "TECHNOLOGY_PRESETS",
    "LatchingModel",
    "ElectricalMaskingModel",
    "per_second_to_fit",
    "fit_to_mtbf_years",
    "combine_fit",
]
