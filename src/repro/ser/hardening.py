"""Hardening flows: selective gate hardening and TMR evaluation.

The paper's conclusion motivates EPP as the tool "to identify the most
vulnerable components to be protected by soft error hardening techniques".
This module implements the two classic responses:

* **Selective hardening** (gate upsizing, after Mohanram & Touba [3]):
  harden the top-k SER contributors.  Upsizing by factor ``s`` divides the
  node's sensitive cross section — hence its R_SEU and FIT — by ``s`` while
  leaving the logic (and therefore ``P_sensitized``) unchanged, so the
  whole cost/benefit curve falls out of a single analysis report.

* **TMR** (:func:`evaluate_tmr`): triplicate-and-vote.  Evaluated with
  *fault injection* rather than EPP, deliberately: a single-replica error
  reconverges with the two untouched replicas at the voter, and the EPP
  independence assumption cannot see that the other replicas carry the
  correct value with certainty.  The function reports both numbers, making
  it the library's canonical demonstration of where the EPP approximation
  breaks (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.core.analysis import CircuitSERReport, SERAnalyzer
from repro.core.baseline import RandomSimulationEstimator
from repro.core.epp import EPPEngine
from repro.netlist.circuit import Circuit
from repro.netlist.transform import triplicate

__all__ = [
    "HardeningStep",
    "HardeningCurve",
    "selective_hardening_curve",
    "TMRComparison",
    "evaluate_tmr",
]


@dataclass(frozen=True)
class HardeningStep:
    """One point on the selective-hardening curve."""

    n_hardened: int
    hardened_nodes: tuple[str, ...]
    total_fit: float
    fit_reduction_pct: float
    area_cost: float  # sum of (strength_factor - 1) over hardened nodes


@dataclass
class HardeningCurve:
    """FIT-vs-cost curve for greedy selective hardening."""

    circuit_name: str
    strength_factor: float
    baseline_fit: float
    steps: list[HardeningStep] = field(default_factory=list)

    def step_for_budget(self, max_nodes: int) -> HardeningStep:
        """The deepest step within a node budget."""
        eligible = [s for s in self.steps if s.n_hardened <= max_nodes]
        if not eligible:
            raise ConfigError(f"no hardening step within budget {max_nodes}")
        return eligible[-1]

    def nodes_for_target(self, target_reduction_pct: float) -> HardeningStep | None:
        """The cheapest step achieving a target FIT reduction (None if unreachable)."""
        for step in self.steps:
            if step.fit_reduction_pct >= target_reduction_pct:
                return step
        return None


def selective_hardening_curve(
    report: CircuitSERReport,
    strength_factor: float = 10.0,
    max_nodes: int | None = None,
) -> HardeningCurve:
    """Greedy selective-hardening curve from an SER report.

    Nodes are hardened in decreasing order of SER contribution; each step
    divides the hardened node's FIT by ``strength_factor``.  Because
    upsizing does not alter the logic, no re-analysis is needed — the curve
    is exact given the report.
    """
    if strength_factor <= 1.0:
        raise ConfigError(f"strength_factor must be > 1, got {strength_factor}")
    ranked = report.ranked()
    if max_nodes is not None:
        ranked = ranked[:max_nodes]
    baseline = report.total_fit
    curve = HardeningCurve(report.circuit_name, strength_factor, baseline)

    hardened: list[str] = []
    current = baseline
    for entry in ranked:
        hardened.append(entry.node)
        current -= entry.fit * (1.0 - 1.0 / strength_factor)
        reduction = 0.0 if baseline == 0.0 else 100.0 * (baseline - current) / baseline
        curve.steps.append(
            HardeningStep(
                n_hardened=len(hardened),
                hardened_nodes=tuple(hardened),
                total_fit=current,
                fit_reduction_pct=reduction,
                area_cost=len(hardened) * (strength_factor - 1.0),
            )
        )
    return curve


@dataclass(frozen=True)
class TMRComparison:
    """Original-vs-TMR soft-error masking, by fault injection and by EPP.

    ``injection_mean_p_sens`` is averaged over the *replica copies* of the
    original gate sites; for proper TMR it collapses to (near) zero.
    ``epp_mean_p_sens_tmr`` will NOT collapse — the EPP independence
    assumption cannot represent cross-replica correlation at the voter —
    and the gap is the documented limitation of the method.
    """

    circuit_name: str
    original_mean_p_sens: float
    injection_mean_p_sens: float
    epp_mean_p_sens_tmr: float
    n_sites: int


def evaluate_tmr(
    circuit: Circuit,
    n_vectors: int = 4096,
    seed: int = 7,
    max_sites: int | None = 64,
) -> TMRComparison:
    """Quantify TMR masking on replica-interior error sites.

    Compares mean ``P_sensitized`` over the original circuit's gate sites
    against (a) fault injection and (b) EPP on the corresponding replica-0
    sites of the TMR'd circuit.
    """
    tmr = triplicate(circuit)
    sites = [g for g in circuit.gates]
    if max_sites is not None:
        sites = sites[:max_sites]
    tmr_sites = [f"{site}__r0" for site in sites]

    original = RandomSimulationEstimator(circuit, n_vectors=n_vectors, seed=seed)
    originals = original.estimate(sites)

    injected = RandomSimulationEstimator(tmr, n_vectors=n_vectors, seed=seed)
    injections = injected.estimate(tmr_sites)

    epp = EPPEngine(tmr)
    epp_values = [epp.p_sensitized(site) for site in tmr_sites]

    n = len(sites)
    return TMRComparison(
        circuit_name=circuit.name,
        original_mean_p_sens=sum(originals.values()) / n,
        injection_mean_p_sens=sum(injections.values()) / n,
        epp_mean_p_sens_tmr=sum(epp_values) / n,
        n_sites=n,
    )
