"""Hardening flows: selective gate hardening and TMR evaluation.

The paper's conclusion motivates EPP as the tool "to identify the most
vulnerable components to be protected by soft error hardening techniques".
This module implements the two classic responses:

* **Selective hardening** (gate upsizing, after Mohanram & Touba [3]):
  harden the top-k SER contributors.  Upsizing by factor ``s`` divides the
  node's sensitive cross section — hence its R_SEU and FIT — by ``s`` while
  leaving the logic (and therefore ``P_sensitized``) unchanged, so the
  whole cost/benefit curve falls out of a single analysis report.

* **TMR** (:func:`evaluate_tmr`): triplicate-and-vote.  Evaluated with
  *fault injection* rather than EPP, deliberately: a single-replica error
  reconverges with the two untouched replicas at the voter, and the EPP
  independence assumption cannot see that the other replicas carry the
  correct value with certainty.  The function reports both numbers, making
  it the library's canonical demonstration of where the EPP approximation
  breaks (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.core.analysis import CircuitSERReport, SERAnalyzer
from repro.core.baseline import RandomSimulationEstimator
from repro.core.epp import EPPEngine
from repro.netlist.circuit import Circuit
from repro.netlist.transform import triplicate

__all__ = [
    "HardeningStep",
    "HardeningCurve",
    "selective_hardening_curve",
    "WhatIfStep",
    "HardeningPlan",
    "optimize_hardening",
    "TMRComparison",
    "evaluate_tmr",
]


@dataclass(frozen=True)
class HardeningStep:
    """One point on the selective-hardening curve."""

    n_hardened: int
    hardened_nodes: tuple[str, ...]
    total_fit: float
    fit_reduction_pct: float
    area_cost: float  # sum of (strength_factor - 1) over hardened nodes


@dataclass
class HardeningCurve:
    """FIT-vs-cost curve for greedy selective hardening."""

    circuit_name: str
    strength_factor: float
    baseline_fit: float
    steps: list[HardeningStep] = field(default_factory=list)

    def step_for_budget(self, max_nodes: int) -> HardeningStep:
        """The best step within a node budget.

        Among the steps hardening at most ``max_nodes`` nodes, returns the
        *cheapest* one achieving the maximum FIT reduction — deeper steps
        that only add zero-FIT nodes (ties on the curve) buy nothing, so
        they are not preferred over the step that already got there.  A
        budget below the smallest step raises :class:`ConfigError` naming
        that smallest step, so the caller knows the feasible floor.
        """
        eligible = [s for s in self.steps if s.n_hardened <= max_nodes]
        if not eligible:
            smallest = self.steps[0].n_hardened if self.steps else None
            detail = (
                f"; the smallest step hardens {smallest} node(s)"
                if smallest is not None
                else "; the curve is empty"
            )
            raise ConfigError(
                f"no hardening step within budget {max_nodes}{detail}"
            )
        best = max(step.fit_reduction_pct for step in eligible)
        for step in eligible:
            if step.fit_reduction_pct >= best:
                return step
        raise AssertionError("unreachable: eligible is non-empty")

    def nodes_for_target(self, target_reduction_pct: float) -> HardeningStep | None:
        """The cheapest step achieving a target FIT reduction.

        A target of 0% (or below) is already met by hardening nothing, so
        a synthetic zero-node step at the baseline FIT is returned — not
        the first curve step.  Unreachable targets (including 100%, which
        a finite strength factor can never reach on a circuit with any
        FIT) return ``None``; the curve is non-decreasing, so the first
        step at or past the target is the cheapest.
        """
        if target_reduction_pct <= 0.0:
            return HardeningStep(
                n_hardened=0,
                hardened_nodes=(),
                total_fit=self.baseline_fit,
                fit_reduction_pct=0.0,
                area_cost=0.0,
            )
        for step in self.steps:
            if step.fit_reduction_pct >= target_reduction_pct:
                return step
        return None


def selective_hardening_curve(
    report: CircuitSERReport,
    strength_factor: float = 10.0,
    max_nodes: int | None = None,
) -> HardeningCurve:
    """Greedy selective-hardening curve from an SER report.

    Nodes are hardened in decreasing order of SER contribution; each step
    divides the hardened node's FIT by ``strength_factor``.  Because
    upsizing does not alter the logic, no re-analysis is needed — the curve
    is exact given the report.
    """
    if strength_factor <= 1.0:
        raise ConfigError(f"strength_factor must be > 1, got {strength_factor}")
    ranked = report.ranked()
    if max_nodes is not None:
        ranked = ranked[:max_nodes]
    baseline = report.total_fit
    curve = HardeningCurve(report.circuit_name, strength_factor, baseline)

    hardened: list[str] = []
    current = baseline
    for entry in ranked:
        hardened.append(entry.node)
        current -= entry.fit * (1.0 - 1.0 / strength_factor)
        reduction = 0.0 if baseline == 0.0 else 100.0 * (baseline - current) / baseline
        curve.steps.append(
            HardeningStep(
                n_hardened=len(hardened),
                hardened_nodes=tuple(hardened),
                total_fit=current,
                fit_reduction_pct=reduction,
                area_cost=len(hardened) * (strength_factor - 1.0),
            )
        )
    return curve


@dataclass(frozen=True)
class WhatIfStep:
    """One evaluated candidate in the incremental hardening loop."""

    action: str  # "upsize" | "tmr"
    node: str
    accepted: bool
    area_cost: float  # paid only if accepted
    fit_before: float
    fit_after: float  # the candidate's total FIT, kept or discarded
    dirty_sites: int  # how many site columns the delta re-swept
    reused_sites: int


@dataclass
class HardeningPlan:
    """Result of the incremental selective-hardening optimizer."""

    circuit_name: str
    action: str
    area_budget: float
    strength_factor: float
    baseline_fit: float
    final_fit: float
    area_used: float
    steps: list[WhatIfStep] = field(default_factory=list)
    result: object = field(default=None, repr=False)  # final DeltaAnalysis

    @property
    def accepted_nodes(self) -> tuple[str, ...]:
        return tuple(step.node for step in self.steps if step.accepted)

    @property
    def fit_reduction_pct(self) -> float:
        if self.baseline_fit == 0.0:
            return 0.0
        return 100.0 * (self.baseline_fit - self.final_fit) / self.baseline_fit

    def format(self) -> str:
        lines = [
            f"hardening plan for {self.circuit_name} "
            f"(action={self.action}, budget={self.area_budget:g}, "
            f"strength={self.strength_factor:g}):",
            f"  baseline {self.baseline_fit:.4e} FIT -> final "
            f"{self.final_fit:.4e} FIT ({self.fit_reduction_pct:.1f}% lower), "
            f"area used {self.area_used:g}/{self.area_budget:g}",
            f"  {'step':<5} {'action':<7} {'node':<16} {'verdict':<9} "
            f"{'FIT after':>12} {'re-swept':>9}",
        ]
        for i, step in enumerate(self.steps, start=1):
            verdict = "accepted" if step.accepted else "rejected"
            lines.append(
                f"  {i:<5} {step.action:<7} {step.node:<16} {verdict:<9} "
                f"{step.fit_after:>12.4e} "
                f"{step.dirty_sites:>4}/{step.dirty_sites + step.reused_sites}"
            )
        if not self.steps:
            lines.append("  (no candidates evaluated)")
        return "\n".join(lines)


def optimize_hardening(
    analyzer: SERAnalyzer,
    area_budget: float,
    strength_factor: float = 10.0,
    action: str = "upsize",
    max_steps: int | None = None,
    sites=None,
    **knobs,
) -> HardeningPlan:
    """Greedy selective hardening driven by incremental re-analysis.

    The interactive design loop the incremental layer exists for: rank the
    current revision's sites by SER contribution, try hardening the top
    contributor, re-analyze *only what the edit can affect*
    (``analyze_delta``), and keep the edit iff the circuit FIT strictly
    drops within the remaining area budget.  Rejected candidates stay
    rejected; accepted ones update the revision the next candidate is
    ranked against.

    ``action="upsize"`` upsizes by ``strength_factor`` (area cost
    ``strength_factor - 1`` per gate, FIT contribution divided by the
    factor — a metadata-only edit, so deltas are nearly free).
    ``action="tmr"`` inserts local triplicate-and-vote structure (area
    cost 3.0: two replicas plus a voter) — a real structural edit whose
    re-sweep exercises the dirty-set machinery.  Note the documented EPP
    limitation (module docstring): EPP cannot see cross-replica masking,
    so the *estimated* FIT after local TMR usually rises (three copies'
    cross section, no credited masking) and such steps are honestly
    rejected; the accept test is what keeps the optimizer truthful to its
    own model.  Candidates are drawn from the baseline report's sites
    only, so voters/replicas created by accepted TMR steps never become
    candidates themselves.

    ``max_steps`` bounds *evaluated* candidates (accepted or not);
    remaining knobs are the snapshot's analysis knobs.
    """
    from repro.core.epp_delta import EditSet

    if area_budget <= 0.0:
        raise ConfigError(f"area_budget must be > 0, got {area_budget}")
    if action not in ("upsize", "tmr"):
        raise ConfigError(
            f"unknown hardening action {action!r}; choose 'upsize' or 'tmr'"
        )
    if action == "upsize" and strength_factor <= 1.0:
        raise ConfigError(f"strength_factor must be > 1, got {strength_factor}")
    step_cost = (strength_factor - 1.0) if action == "upsize" else 3.0

    delta = analyzer.snapshot(sites=sites, **knobs)
    report = analyzer.report_for(delta)
    baseline_fit = report.total_fit
    candidate_pool = set(report.nodes)

    plan = HardeningPlan(
        circuit_name=analyzer.circuit.name,
        action=action,
        area_budget=float(area_budget),
        strength_factor=float(strength_factor),
        baseline_fit=baseline_fit,
        final_fit=baseline_fit,
        area_used=0.0,
    )
    tried: set[str] = set()
    while (max_steps is None or len(plan.steps) < max_steps) and (
        plan.area_used + step_cost <= area_budget
    ):
        candidate = next(
            (
                entry.node
                for entry in report.ranked()
                if entry.node in candidate_pool
                and entry.node not in tried
                and entry.fit > 0.0
            ),
            None,
        )
        if candidate is None:
            break
        tried.add(candidate)
        edits = EditSet()
        if action == "upsize":
            edits.harden(candidate, strength_factor)
        else:
            edits.tmr(candidate)
        trial = delta.apply(edits)
        trial_report = analyzer.report_for(trial)
        accepted = trial_report.total_fit < report.total_fit
        plan.steps.append(
            WhatIfStep(
                action=action,
                node=candidate,
                accepted=accepted,
                area_cost=step_cost if accepted else 0.0,
                fit_before=report.total_fit,
                fit_after=trial_report.total_fit,
                dirty_sites=trial.stats["dirty"],
                reused_sites=trial.stats["reused"],
            )
        )
        if accepted:
            delta, report = trial, trial_report
            plan.area_used += step_cost
    plan.final_fit = report.total_fit
    plan.result = delta
    return plan


@dataclass(frozen=True)
class TMRComparison:
    """Original-vs-TMR soft-error masking, by fault injection and by EPP.

    ``injection_mean_p_sens`` is averaged over the *replica copies* of the
    original gate sites; for proper TMR it collapses to (near) zero.
    ``epp_mean_p_sens_tmr`` will NOT collapse — the EPP independence
    assumption cannot represent cross-replica correlation at the voter —
    and the gap is the documented limitation of the method.
    """

    circuit_name: str
    original_mean_p_sens: float
    injection_mean_p_sens: float
    epp_mean_p_sens_tmr: float
    n_sites: int


def evaluate_tmr(
    circuit: Circuit,
    n_vectors: int = 4096,
    seed: int = 7,
    max_sites: int | None = 64,
) -> TMRComparison:
    """Quantify TMR masking on replica-interior error sites.

    Compares mean ``P_sensitized`` over the original circuit's gate sites
    against (a) fault injection and (b) EPP on the corresponding replica-0
    sites of the TMR'd circuit.
    """
    tmr = triplicate(circuit)
    sites = [g for g in circuit.gates]
    if max_sites is not None:
        sites = sites[:max_sites]
    # Use the suffixes triplicate actually chose — a circuit that already
    # contains __r0-style names makes it escalate, and guessing "__r0"
    # here would query the wrong (or a missing) node.
    replica_suffix = tmr.tmr_suffixes[0]
    tmr_sites = [f"{site}{replica_suffix}" for site in sites]

    original = RandomSimulationEstimator(circuit, n_vectors=n_vectors, seed=seed)
    originals = original.estimate(sites)

    injected = RandomSimulationEstimator(tmr, n_vectors=n_vectors, seed=seed)
    injections = injected.estimate(tmr_sites)

    epp = EPPEngine(tmr)
    epp_values = [epp.p_sensitized(site) for site in tmr_sites]

    n = len(sites)
    return TMRComparison(
        circuit_name=circuit.name,
        original_mean_p_sens=sum(originals.values()) / n,
        injection_mean_p_sens=sum(injections.values()) / n,
        epp_mean_p_sens_tmr=sum(epp_values) / n,
        n_sites=n,
    )
