"""Physics-based derivation of ``R_SEU`` (charge collection to upset rate).

The paper takes ``R_SEU(n_i)`` as an input "depending on the particle
flux, the energy of the particle, type and size of the gate, and the
device characteristics".  This module supplies that input from standard
first-order radiation-effects models, so the parametric
:class:`~repro.ser.seu_rate.SEURateModel` can be *derived* instead of
asserted:

* **Messenger current pulse** — the classic double-exponential transient
  injected by a particle strike:
  ``I(t) = Q/(τα-τβ) · (exp(-t/τα) - exp(-t/τβ))``.
* **Critical charge** — ``Q_crit = C_node · V_dd / 2``: the charge needed
  to flip a node, with node capacitance estimated from gate type and
  fanout.
* **SET pulse width** — the usual logarithmic model
  ``w = τα · ln(Q/Q_crit)`` for ``Q > Q_crit`` (0 otherwise), which feeds
  the latching-window model a physically grounded ``nominal_pulse_width``.
* **Weibull cross section** — ``σ(L) = σ_sat (1 - exp(-((L-L₀)/W)^s))``
  above threshold LET ``L₀``.
* **Environments** — a sea-level-like neutron environment (total flux with
  exponential altitude scaling) and a space-like heavy-ion environment
  with a Heinrich-style integral LET spectrum ``F(>L) = k·L^-γ``.
* **Rate integration** — ``R = ∫ σ(L) |dF/dL| dL`` on a log grid.

All constants are order-of-magnitude placeholders in line with the 2005
literature and are documented as such; every relative result in the
library is insensitive to them (see ser/seu_rate.py's module docstring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.netlist.gate_types import GateType
from repro.ser.seu_rate import SEURateModel

__all__ = [
    "MessengerPulse",
    "CriticalCharge",
    "set_pulse_width",
    "WeibullCrossSection",
    "HeavyIonEnvironment",
    "NeutronEnvironment",
    "upset_rate",
    "seu_rate_model_from_physics",
]


@dataclass(frozen=True)
class MessengerPulse:
    """Double-exponential charge-collection current pulse.

    Parameters (seconds, coulombs): ``tau_alpha`` is the collection time
    constant, ``tau_beta`` the track-establishment constant
    (``tau_beta < tau_alpha``), ``charge`` the total collected charge.
    """

    charge: float
    tau_alpha: float = 2.0e-10
    tau_beta: float = 5.0e-11

    def __post_init__(self) -> None:
        if self.charge < 0:
            raise ConfigError(f"charge must be >= 0, got {self.charge}")
        if not 0 < self.tau_beta < self.tau_alpha:
            raise ConfigError(
                f"need 0 < tau_beta < tau_alpha, got {self.tau_beta}, {self.tau_alpha}"
            )

    def current(self, t: float) -> float:
        """Instantaneous current in amperes (0 for t < 0)."""
        if t < 0:
            return 0.0
        scale = self.charge / (self.tau_alpha - self.tau_beta)
        return scale * (math.exp(-t / self.tau_alpha) - math.exp(-t / self.tau_beta))

    @property
    def peak_current(self) -> float:
        """Maximum of the double exponential (at the analytic peak time)."""
        return self.current(self.peak_time)

    @property
    def peak_time(self) -> float:
        ratio = self.tau_alpha / self.tau_beta
        return (
            (self.tau_alpha * self.tau_beta)
            / (self.tau_alpha - self.tau_beta)
            * math.log(ratio)
        )

    def collected_charge(self, until: float | None = None) -> float:
        """Integral of the current (total equals ``charge`` as t → ∞)."""
        if until is None:
            return self.charge
        if until < 0:
            return 0.0
        scale = self.charge / (self.tau_alpha - self.tau_beta)
        return scale * (
            self.tau_alpha * (1.0 - math.exp(-until / self.tau_alpha))
            - self.tau_beta * (1.0 - math.exp(-until / self.tau_beta))
        )


#: Relative node capacitance per gate type (unit = one reference inverter
#: input).  Tracks transistor count / diffusion area to first order.
_RELATIVE_CAPACITANCE: dict[GateType, float] = {
    GateType.NOT: 1.0,
    GateType.BUF: 1.2,
    GateType.AND: 2.0,
    GateType.NAND: 1.6,
    GateType.OR: 2.0,
    GateType.NOR: 1.6,
    GateType.XOR: 3.0,
    GateType.XNOR: 3.0,
    GateType.MUX: 2.8,
    GateType.MAJ: 3.6,
    GateType.DFF: 4.0,
}


@dataclass(frozen=True)
class CriticalCharge:
    """``Q_crit`` estimation: ``C_node * V_dd / 2`` with a fanout term.

    ``unit_capacitance`` is the reference inverter-input capacitance in
    farads (default 2 fF, a ~130 nm-era value); each fanout load adds
    ``fanout_fraction`` of a unit.
    """

    vdd: float = 1.2
    unit_capacitance: float = 2.0e-15
    fanout_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigError(f"vdd must be > 0, got {self.vdd}")
        if self.unit_capacitance <= 0:
            raise ConfigError(
                f"unit_capacitance must be > 0, got {self.unit_capacitance}"
            )
        if self.fanout_fraction < 0:
            raise ConfigError(
                f"fanout_fraction must be >= 0, got {self.fanout_fraction}"
            )

    def node_capacitance(self, gate_type: GateType, fanout: int = 1) -> float:
        weight = _RELATIVE_CAPACITANCE.get(gate_type)
        if weight is None:
            raise ConfigError(f"no capacitance model for {gate_type.value}")
        loads = max(0, fanout) * self.fanout_fraction
        return self.unit_capacitance * (weight + loads)

    def q_crit(self, gate_type: GateType, fanout: int = 1) -> float:
        """Critical charge in coulombs."""
        return self.node_capacitance(gate_type, fanout) * self.vdd / 2.0


def set_pulse_width(
    charge: float, q_crit: float, tau_alpha: float = 2.0e-10
) -> float:
    """SET pulse width: ``τα·ln(Q/Q_crit)`` above threshold, else 0."""
    if q_crit <= 0:
        raise ConfigError(f"q_crit must be > 0, got {q_crit}")
    if charge < 0:
        raise ConfigError(f"charge must be >= 0, got {charge}")
    if charge <= q_crit:
        return 0.0
    return tau_alpha * math.log(charge / q_crit)


@dataclass(frozen=True)
class WeibullCrossSection:
    """Upset cross section vs LET: the standard Weibull fit.

    ``sigma_sat`` in cm², LETs in MeV·cm²/mg.
    """

    sigma_sat: float = 1.0e-14
    let_threshold: float = 1.0
    width: float = 10.0
    shape: float = 2.0

    def __post_init__(self) -> None:
        if self.sigma_sat < 0:
            raise ConfigError(f"sigma_sat must be >= 0, got {self.sigma_sat}")
        if self.let_threshold < 0:
            raise ConfigError(f"let_threshold must be >= 0, got {self.let_threshold}")
        if self.width <= 0 or self.shape <= 0:
            raise ConfigError("width and shape must be > 0")

    def sigma(self, let: float) -> float:
        """Cross section (cm²) at a given LET."""
        if let <= self.let_threshold:
            return 0.0
        x = (let - self.let_threshold) / self.width
        return self.sigma_sat * (1.0 - math.exp(-(x**self.shape)))

    def scaled(self, factor: float) -> "WeibullCrossSection":
        """Same curve with the saturation cross-section scaled (area term)."""
        if factor < 0:
            raise ConfigError(f"factor must be >= 0, got {factor}")
        return WeibullCrossSection(
            self.sigma_sat * factor, self.let_threshold, self.width, self.shape
        )


@dataclass(frozen=True)
class HeavyIonEnvironment:
    """Heinrich-style integral LET spectrum: ``F(>L) = k · L^-gamma``.

    ``k`` in particles/cm²/s at L = 1 MeV·cm²/mg; valid over
    ``[let_min, let_max]``.  An illustrative geosynchronous-orbit shape.
    """

    k: float = 1.0e-4
    gamma: float = 2.0
    let_min: float = 0.5
    let_max: float = 100.0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ConfigError(f"k must be >= 0, got {self.k}")
        if self.gamma <= 0:
            raise ConfigError(f"gamma must be > 0, got {self.gamma}")
        if not 0 < self.let_min < self.let_max:
            raise ConfigError("need 0 < let_min < let_max")

    def integral_flux(self, let: float) -> float:
        """Particles/cm²/s with LET above the given value."""
        if let >= self.let_max:
            return 0.0
        let = max(let, self.let_min)
        return self.k * let ** (-self.gamma)

    def differential_flux(self, let: float) -> float:
        """|dF/dL| (particles/cm²/s per LET unit)."""
        if not self.let_min <= let <= self.let_max:
            return 0.0
        return self.k * self.gamma * let ** (-self.gamma - 1.0)


@dataclass(frozen=True)
class NeutronEnvironment:
    """Terrestrial neutron environment: total flux with altitude scaling.

    ``ground_flux`` is the >10 MeV flux at sea level (particles/cm²/s,
    default the canonical 5.65e-3 ≙ 56.5 n/m²/s); flux grows by e every
    ``attenuation_length`` meters of altitude (first-order barometric
    model, ≈ e-folding every ~1.4 km at mid latitudes).
    """

    ground_flux: float = 5.65e-3
    attenuation_length: float = 1400.0

    def __post_init__(self) -> None:
        if self.ground_flux < 0:
            raise ConfigError(f"ground_flux must be >= 0, got {self.ground_flux}")
        if self.attenuation_length <= 0:
            raise ConfigError(
                f"attenuation_length must be > 0, got {self.attenuation_length}"
            )

    def flux(self, altitude_m: float = 0.0) -> float:
        """Total >10 MeV neutron flux at an altitude in meters."""
        if altitude_m < 0:
            raise ConfigError(f"altitude must be >= 0, got {altitude_m}")
        return self.ground_flux * math.exp(altitude_m / self.attenuation_length)

    def upset_rate(self, sigma_effective_cm2: float, altitude_m: float = 0.0) -> float:
        """Upsets/second for an effective (energy-folded) cross section."""
        if sigma_effective_cm2 < 0:
            raise ConfigError("cross section must be >= 0")
        return self.flux(altitude_m) * sigma_effective_cm2


def upset_rate(
    cross_section: WeibullCrossSection,
    environment: HeavyIonEnvironment,
    n_points: int = 512,
) -> float:
    """Heavy-ion upset rate ``∫ σ(L)·|dF/dL| dL`` on a log-spaced grid."""
    if n_points < 8:
        raise ConfigError(f"n_points must be >= 8, got {n_points}")
    lo = max(environment.let_min, cross_section.let_threshold * (1.0 + 1e-9))
    hi = environment.let_max
    if lo >= hi:
        return 0.0
    grid = np.logspace(math.log10(lo), math.log10(hi), n_points)
    sigma = np.array([cross_section.sigma(float(l)) for l in grid])
    dflux = np.array([environment.differential_flux(float(l)) for l in grid])
    return float(np.trapezoid(sigma * dflux, grid))


def seu_rate_model_from_physics(
    charge_model: CriticalCharge | None = None,
    cross_section: WeibullCrossSection | None = None,
    environment: HeavyIonEnvironment | NeutronEnvironment | None = None,
    altitude_m: float = 0.0,
) -> SEURateModel:
    """Derive a :class:`SEURateModel` from the physics models.

    Per-type sensitivity follows each cell's sensitive area (the relative
    capacitance weight) while the absolute scale comes from integrating
    the cross section against the environment.  The returned model plugs
    directly into :class:`~repro.core.analysis.SERAnalyzer`.
    """
    charge_model = charge_model if charge_model is not None else CriticalCharge()
    cross_section = (
        cross_section if cross_section is not None else WeibullCrossSection()
    )
    if environment is None:
        environment = NeutronEnvironment()

    if isinstance(environment, NeutronEnvironment):
        reference_rate = environment.upset_rate(cross_section.sigma_sat, altitude_m)
        flux = environment.flux(altitude_m)
    else:
        reference_rate = upset_rate(cross_section, environment)
        flux = environment.integral_flux(environment.let_min)
    if flux <= 0.0:
        raise ConfigError("environment has zero flux; no upsets to model")

    # SEURateModel computes rate = flux * xsection * weight.  Normalize so
    # that a reference AND gate's rate equals the physics-derived rate and
    # other cells scale by their sensitive-area (capacitance) ratio.
    base_xsection = reference_rate / flux
    reference_weight = _RELATIVE_CAPACITANCE[GateType.AND]
    type_weights = {
        gate_type.value: _RELATIVE_CAPACITANCE.get(gate_type, 0.0) / reference_weight
        for gate_type in GateType
    }
    return SEURateModel(
        flux=flux,
        base_cross_section_cm2=base_xsection,
        type_weights=type_weights,
    )
