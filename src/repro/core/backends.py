"""The EPP backend registry: names -> factories + capability flags.

Before this module the backend roster was a hardcoded tuple in
:mod:`repro.core.epp` and every capability question was a string
compare scattered across layers — ``epp_delta`` rejected ``"scalar"``
by name, the server's degradation path knew ``"vector"`` was the safe
in-process fallback, the CLI listed choices by hand.  The registry
makes all of that one table:

* :class:`BackendInfo` — one backend's name, construction factory and
  capability flags (``supports_pack``/``supports_delta`` for the packed
  representation the incremental layer splices, ``sharded`` for whether
  the backend can honor ``jobs=``/resilience knobs, ``requires_numpy``).
* :class:`BackendRegistry` — the name -> :class:`BackendInfo` map.
  :data:`REGISTRY` is the process-wide instance with ``scalar`` /
  ``vector`` / ``sharded`` registered; registering a fourth backend
  (a compiled kernel tier, a Monte-Carlo estimator) is one
  ``REGISTRY.register(...)`` call in the new backend's module — it then
  resolves from ``EPPEngine.analyze(backend=...)``, the CLI's
  ``--backend`` choices and the config layer's validation with zero
  edits anywhere else.

Every registered factory returns an object honoring the (duck-typed)
**EPPBackendProtocol** — the contract
:class:`~repro.core.epp.EPPEngine` and the incremental layer program
against:

``analyze_sites(site_ids) -> dict[str, EPPResult]``
    Full results for many sites (required).
``pack_sites(site_ids) -> PackedResults``
    The packed per-site arrays the delta layer splices (backends with
    ``supports_pack`` only).
``plan``
    The backend's execution plan, when it has one (cache/diagnostics).
``release_buffers()``
    Drop rebuildable state (optional; absent means nothing to drop).

Factories take ``(engine, config)`` — the bound
:class:`~repro.core.epp.EPPEngine` and a validated
:class:`~repro.core.config.AnalysisConfig` — and may (the built-ins do)
return a cached instance when the effective configuration is unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import AnalysisConfigError

__all__ = [
    "REGISTRY",
    "BackendInfo",
    "BackendRegistry",
    "available_backends",
    "default_backend",
]


def _vector_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass(frozen=True)
class BackendInfo:
    """One registered EPP backend: identity, factory, capabilities.

    ``factory(engine, config)`` returns the backend instance bound to
    ``engine`` under ``config`` (an
    :class:`~repro.core.config.AnalysisConfig`).  ``supports_pack`` marks
    backends whose ``pack_sites`` emits the packed arrays the
    incremental layer splices; ``supports_delta`` marks backends
    ``analyze_delta`` may re-sweep on; ``sharded`` marks backends that
    honor ``jobs=`` and the resilience knobs; ``requires_numpy`` gates
    availability on the NumPy import.
    """

    name: str
    factory: Callable[[Any, Any], Any]
    description: str = ""
    supports_pack: bool = False
    supports_delta: bool = False
    sharded: bool = False
    requires_numpy: bool = False

    def available(self) -> bool:
        return not self.requires_numpy or _vector_available()


class BackendRegistry:
    """Thread-safe name -> :class:`BackendInfo` map."""

    def __init__(self):
        self._infos: dict[str, BackendInfo] = {}
        self._lock = threading.Lock()

    def register(self, info: BackendInfo, *, replace: bool = False) -> None:
        """Add a backend.  Re-registering a live name is almost always a
        bug (two modules fighting over one name), so it raises unless
        ``replace=True``."""
        with self._lock:
            if not replace and info.name in self._infos:
                raise AnalysisConfigError(
                    f"EPP backend {info.name!r} is already registered"
                )
            self._infos[info.name] = info

    def unregister(self, name: str) -> None:
        with self._lock:
            self._infos.pop(name, None)

    def get(self, name: str) -> BackendInfo:
        """The info for ``name`` — the one spelling of the historical
        "unknown EPP backend" error."""
        info = self._infos.get(name)
        if info is None:
            raise AnalysisConfigError(
                f"unknown EPP backend {name!r}; choose from {self.names()}"
            )
        return info

    def __contains__(self, name: str) -> bool:
        return name in self._infos

    def names(self) -> tuple[str, ...]:
        """Every registered name, registration order."""
        return tuple(self._infos)

    def available_names(self) -> tuple[str, ...]:
        """The names usable in this environment (NumPy gating applied)."""
        return tuple(
            name for name, info in self._infos.items() if info.available()
        )

    def pack_capable_names(self) -> tuple[str, ...]:
        return tuple(
            name for name, info in self._infos.items() if info.supports_pack
        )


#: The process-wide registry.  Built-ins register below; new backend
#: tiers register themselves from their own module.
REGISTRY = BackendRegistry()


def available_backends() -> tuple[str, ...]:
    """The analyze() backends usable in this environment."""
    return REGISTRY.available_names()


def default_backend() -> str:
    """``vector`` when NumPy is importable, else ``scalar``."""
    return "vector" if _vector_available() else "scalar"


# ------------------------------------------------------------- built-ins


class ScalarBackend:
    """The per-site reference oracle behind the protocol facade.

    Wraps the engine's ``node_epp`` cone walk so the scalar path goes
    through the same registry dispatch as every other backend.  No
    packed representation (``supports_pack=False``): each site is a
    fresh cone walk, there are no chunk arrays to splice.
    """

    __slots__ = ("engine",)

    #: Scalar walks have no batch plan.
    plan = None

    def __init__(self, engine):
        self.engine = engine

    def analyze_sites(self, site_ids) -> dict:
        results = {}
        for site_id in site_ids:
            result = self.engine.node_epp(site_id)
            results[result.site] = result
        return results

    def p_sensitized_many(self, site_ids):
        return [self.engine.p_sensitized(site_id) for site_id in site_ids]

    def release_buffers(self) -> None:
        pass


REGISTRY.register(BackendInfo(
    name="scalar",
    factory=lambda engine, config: ScalarBackend(engine),
    description="per-site reference oracle (pure Python, one cone walk "
                "per site)",
))
REGISTRY.register(BackendInfo(
    name="vector",
    factory=lambda engine, config: engine._get_vector_backend(config),
    description="batched level-parallel NumPy sweep "
                "(repro.core.epp_batch)",
    supports_pack=True,
    supports_delta=True,
    requires_numpy=True,
))
REGISTRY.register(BackendInfo(
    name="sharded",
    factory=lambda engine, config: engine._get_sharded_backend(config),
    description="site shards fanned across a process pool of vector "
                "workers (repro.core.epp_shard)",
    supports_pack=True,
    supports_delta=True,
    sharded=True,
    requires_numpy=True,
))
