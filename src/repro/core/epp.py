"""The EPP engine — step 3 of the paper's algorithm.

Given an error site, the engine walks the site's on-path cone **once** in
topological order.  Each on-path gate combines:

* the four-valued vectors of its on-path fanins (computed earlier in the
  pass), and
* the plain signal probabilities of its off-path fanins
  (``(0, 0, 1-SP, SP)``),

through the per-gate rules of :mod:`repro.core.rules`.  After the pass the
four-valued vector at every reachable output is known, and

``P_sensitized = 1 - prod_j (1 - (Pa(PO_j) + Pā(PO_j)))``

over the reachable outputs (primary outputs and flip-flop D pins).

Complexity: linear in the cone size per site — the paper's headline
speedup over random simulation, which costs ``n_vectors`` circuit
evaluations per site instead.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.core.cone import ConeExtractor, OnPathCone
from repro.core.fourvalue import EPPValue
from repro.core.rules import merge_polarity, rule_for_code, _RULES_BY_CODE
from repro.core.sensitization import combine_sensitization
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.probability import signal_probabilities

__all__ = ["EPPEngine", "EPPResult"]


@dataclass(frozen=True)
class EPPResult:
    """EPP analysis of one error site.

    ``sink_values`` holds the four-valued vector at every reachable
    observable sink (by node name); ``p_sensitized`` combines them per the
    paper's formula.  ``cone_size`` is the number of on-path gates visited —
    the per-site work — kept for the scaling benchmarks.
    """

    site: str
    p_sensitized: float
    sink_values: dict[str, EPPValue] = field(default_factory=dict)
    cone_size: int = 0

    @property
    def n_reachable_outputs(self) -> int:
        return len(self.sink_values)


class EPPEngine:
    """Error-propagation-probability engine bound to one circuit.

    Parameters
    ----------
    circuit:
        The circuit under analysis (combinational or sequential).
    signal_probs:
        Precomputed signal probabilities (node name -> P(1)).  When omitted
        they are computed with ``sp_method`` / ``sp_options`` — the paper
        treats SP computation as a separately-charged preprocessing step,
        which is why the engine accepts it as an input.
    sp_method / sp_options:
        Backend for on-demand SP computation (see
        :func:`repro.probability.signal_probabilities`).
    track_polarity:
        ``False`` collapses ``ā`` into ``a`` after every gate — the
        polarity-blind ablation (reconvergent cancellation is lost).
    """

    def __init__(
        self,
        circuit: Circuit,
        signal_probs: Mapping[str, float] | None = None,
        sp_method: str = "topological",
        sp_options: Mapping | None = None,
        track_polarity: bool = True,
    ):
        self.circuit = circuit
        self.compiled: CompiledCircuit = circuit.compiled()
        self.track_polarity = track_polarity
        if signal_probs is None:
            signal_probs = signal_probabilities(
                circuit, method=sp_method, **(dict(sp_options) if sp_options else {})
            )
        self._sp: list[float] = [0.0] * self.compiled.n
        for node_id in range(self.compiled.n):
            name = self.compiled.names[node_id]
            try:
                p = float(signal_probs[name])
            except KeyError:
                raise AnalysisError(
                    f"signal_probs is missing node {name!r}; "
                    "pass a complete SP map or let the engine compute one"
                ) from None
            if not 0.0 <= p <= 1.0:
                raise AnalysisError(f"signal probability for {name!r} out of [0,1]: {p}")
            self._sp[node_id] = p

        self._cones = ConeExtractor(self.compiled)
        n = self.compiled.n
        # Scratch state for the pass: four parallel float arrays plus a
        # generation-stamped on-path mark (no O(n) clearing between sites).
        self._pa = [0.0] * n
        self._pa_bar = [0.0] * n
        self._p0 = [0.0] * n
        self._p1 = [0.0] * n
        self._mark = [0] * n
        self._generation = 0
        self._rules = dict(_RULES_BY_CODE)

    # ----------------------------------------------------------------- sites

    def default_sites(
        self, include_inputs: bool = False, include_state: bool = False
    ) -> list[str]:
        """The error sites analyzed by default: combinational gate outputs.

        ``include_inputs`` adds primary inputs (SEUs on input pads);
        ``include_state`` adds flip-flop outputs (SEUs in the storage cell
        observed through the next-cycle logic).
        """
        compiled = self.compiled
        sites = [
            compiled.names[i]
            for i in range(compiled.n)
            if compiled.gate_type(i).is_combinational
        ]
        if include_inputs:
            sites += [compiled.names[i] for i in compiled.input_ids]
        if include_state:
            sites += [compiled.names[i] for i in compiled.dff_ids]
        return sites

    def cone(self, site: int | str) -> OnPathCone:
        """The (cached) on-path cone of a site."""
        return self._cones.cone(site)

    # ------------------------------------------------------------------- EPP

    def node_epp(self, site: int | str) -> EPPResult:
        """Full EPP analysis of one error site (per-sink vectors included)."""
        site_id = self._cones.resolve(site)
        cone = self._cones.cone(site_id)
        self._propagate(site_id, cone)
        compiled = self.compiled
        sink_values: dict[str, EPPValue] = {}
        error_probs: list[float] = []
        for sink in cone.sinks:
            value = EPPValue.clamped(
                self._pa[sink], self._pa_bar[sink], self._p0[sink], self._p1[sink]
            )
            sink_values[compiled.names[sink]] = value
            error_probs.append(value.error_probability)
        return EPPResult(
            site=compiled.names[site_id],
            p_sensitized=combine_sensitization(error_probs),
            sink_values=sink_values,
            cone_size=cone.size,
        )

    def p_sensitized(self, site: int | str) -> float:
        """``P_sensitized`` only — the fast path used by the benchmarks."""
        site_id = self._cones.resolve(site)
        cone = self._cones.cone(site_id)
        self._propagate(site_id, cone)
        pa = self._pa
        pa_bar = self._pa_bar
        survive_none = 1.0
        for sink in cone.sinks:
            survive_none *= 1.0 - (pa[sink] + pa_bar[sink])
        return 1.0 - survive_none

    def _propagate(self, site_id: int, cone: OnPathCone) -> None:
        """One topological pass over the cone (paper step 3)."""
        compiled = self.compiled
        self._generation += 1
        generation = self._generation
        mark = self._mark
        pa = self._pa
        pa_bar = self._pa_bar
        p0 = self._p0
        p1 = self._p1
        sp = self._sp
        code = compiled.code
        rules = self._rules
        track_polarity = self.track_polarity

        # The error site carries the erroneous value with certainty: 1(a).
        pa[site_id] = 1.0
        pa_bar[site_id] = 0.0
        p0[site_id] = 0.0
        p1[site_id] = 0.0
        mark[site_id] = generation

        for gate in cone.gate_order:
            pins = compiled.fanin(gate)
            values = []
            for pin in pins:
                if mark[pin] == generation:  # on-path fanin
                    values.append((pa[pin], pa_bar[pin], p0[pin], p1[pin]))
                else:  # off-path fanin: plain signal probability
                    p = sp[pin]
                    values.append((0.0, 0.0, 1.0 - p, p))
            result = rules[code[gate]](values)
            if not track_polarity:
                result = merge_polarity(result)
            pa[gate], pa_bar[gate], p0[gate], p1[gate] = result
            mark[gate] = generation

    # -------------------------------------------------------------- analysis

    def analyze(
        self,
        sites: Sequence[int | str] | None = None,
        sample: int | None = None,
        seed: int = 0,
        collapse: bool = False,
    ) -> dict[str, EPPResult]:
        """EPP for many sites (default: every combinational gate output).

        ``sample`` draws a deterministic random subset — the treatment the
        paper applies to its larger circuits ("a limited number of gates of
        the circuits are simulated").  ``collapse=True`` shares one analysis
        across provably equivalent sites (buffer/inverter chains; see
        :mod:`repro.core.collapse`), which changes nothing in the results
        and skips redundant passes.
        """
        if sites is None:
            sites = self.default_sites()
        sites = list(sites)
        if sample is not None and sample < len(sites):
            sites = random.Random(seed).sample(sites, sample)

        if not collapse:
            results: dict[str, EPPResult] = {}
            for site in sites:
                result = self.node_epp(site)
                results[result.site] = result
            return results

        from repro.core.collapse import collapse_seu_sites

        equivalence = collapse_seu_sites(self.circuit)
        site_names = [
            site if isinstance(site, str) else self.compiled.names[site]
            for site in sites
        ]
        by_representative: dict[str, list[str]] = {}
        for name in site_names:
            rep = equivalence.representative.get(name, name)
            by_representative.setdefault(rep, []).append(name)
        results = {}
        for rep, members in by_representative.items():
            rep_result = self.node_epp(rep)
            for member in members:
                results[member] = EPPResult(
                    site=member,
                    p_sensitized=rep_result.p_sensitized,
                    sink_values=rep_result.sink_values,
                    cone_size=rep_result.cone_size,
                )
        return results

    def dominant_path(self, site: int | str, sink: str | None = None) -> list[tuple[str, float]]:
        """The highest-probability error path from ``site`` to a sink.

        Greedy backward walk: starting at the chosen sink (default: the
        reachable sink with the largest surviving error probability), at
        every gate follow the on-path fanin whose vector carries the most
        error.  Returns ``[(node_name, error_probability), ...]`` from the
        site to the sink — the diagnostic a designer reads to see *where*
        a vulnerable node's error escapes.
        """
        site_id = self._cones.resolve(site)
        cone = self._cones.cone(site_id)
        self._propagate(site_id, cone)
        compiled = self.compiled
        generation = self._generation
        mark = self._mark
        pa = self._pa
        pa_bar = self._pa_bar

        if sink is not None:
            sink_id = self._cones.resolve(sink)
            if sink_id not in cone.sinks:
                raise AnalysisError(
                    f"{compiled.names[sink_id]!r} is not a reachable sink of "
                    f"{compiled.names[site_id]!r}"
                )
        else:
            if not cone.sinks:
                return []
            sink_id = max(cone.sinks, key=lambda s: pa[s] + pa_bar[s])

        path = [(compiled.names[sink_id], pa[sink_id] + pa_bar[sink_id])]
        current = sink_id
        while current != site_id:
            best = None
            best_error = -1.0
            for pin in compiled.fanin(current):
                if mark[pin] != generation:
                    continue  # off-path
                error = pa[pin] + pa_bar[pin]
                if error > best_error:
                    best_error = error
                    best = pin
            if best is None:
                break  # degenerate: error created only by polarity algebra
            path.append((compiled.names[best], best_error))
            current = best
        path.reverse()
        return path
