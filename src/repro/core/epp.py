"""The EPP engine — step 3 of the paper's algorithm.

Given an error site, the engine walks the site's on-path cone **once** in
topological order.  Each on-path gate combines:

* the four-valued vectors of its on-path fanins (computed earlier in the
  pass), and
* the plain signal probabilities of its off-path fanins
  (``(0, 0, 1-SP, SP)``),

through the per-gate rules of :mod:`repro.core.rules`.  After the pass the
four-valued vector at every reachable output is known, and

``P_sensitized = 1 - prod_j (1 - (Pa(PO_j) + Pā(PO_j)))``

over the reachable outputs (primary outputs and flip-flop D pins).

Complexity: linear in the cone size per site — the paper's headline
speedup over random simulation, which costs ``n_vectors`` circuit
evaluations per site instead.
"""

from __future__ import annotations

import os
import random
import threading
from collections.abc import Mapping, Sequence
from repro.errors import AnalysisConfigError, AnalysisError
from repro.core.backends import (
    REGISTRY,
    _vector_available,
    available_backends,
    default_backend,
)
from repro.core.config import AnalysisConfig
from repro.core.cone import ConeExtractor, OnPathCone
from repro.core.fourvalue import EPPValue
from repro.core.rules import merge_polarity, truth_table_rule, _RULES_BY_CODE
from repro.core.sensitization import combine_sensitization
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.netlist.gate_types import CODE_MAJ, CODE_MUX, truth_table
from repro.probability import signal_probabilities

__all__ = ["EPPEngine", "EPPResult", "available_backends", "default_backend"]

#: The built-in propagation backends, kept for backward compatibility.
#: The authoritative roster is :data:`repro.core.backends.REGISTRY` —
#: ``scalar`` is the per-site reference oracle (pure Python, one cone
#: walk per site); ``vector`` is the batched NumPy backend
#: (:mod:`repro.core.epp_batch`) that sweeps every site of a chunk
#: through one level-parallel pass; ``sharded`` fans site shards out
#: across a process pool of vector-backend workers
#: (:mod:`repro.core.epp_shard`).  Registered backends beyond these
#: resolve through the registry, not this tuple.
BACKENDS = ("scalar", "vector", "sharded")


class EPPResult:
    """EPP analysis of one error site.

    ``sink_values`` holds the four-valued vector at every reachable
    observable sink (by node name); ``p_sensitized`` combines them per the
    paper's formula.  ``cone_size`` is the number of on-path gates visited —
    the per-site work — kept for the scaling benchmarks.

    The batch backend constructs results through :meth:`deferred`: the
    per-sink :class:`~repro.core.fourvalue.EPPValue` dict is then built
    lazily — from the sweep's packed arrays — on first ``sink_values``
    access.  Full-circuit analyses produce millions of (site, sink) pairs,
    and the dominant consumers (the SER pipeline's default two-factor
    derating, the vulnerability ranking) read only ``p_sensitized``;
    deferring the per-object packaging removes it from the hot path
    entirely while keeping the result contract unchanged for callers that
    do read the vectors.
    """

    __slots__ = ("site", "p_sensitized", "cone_size", "_sink_values", "_sink_source")

    def __init__(
        self,
        site: str,
        p_sensitized: float,
        sink_values: dict[str, EPPValue] | None = None,
        cone_size: int = 0,
    ):
        self.site = site
        self.p_sensitized = p_sensitized
        self.cone_size = cone_size
        self._sink_values = {} if sink_values is None else sink_values
        self._sink_source = None

    @classmethod
    def deferred(
        cls, site: str, p_sensitized: float, cone_size: int, sink_source
    ) -> "EPPResult":
        """A result whose ``sink_values`` dict is built on first access.

        ``sink_source`` is a zero-argument callable returning the dict;
        it is invoked at most once and released afterwards.
        """
        result = cls(site, p_sensitized, None, cone_size)
        result._sink_values = None
        result._sink_source = sink_source
        return result

    @property
    def sink_values(self) -> dict[str, EPPValue]:
        values = self._sink_values
        if values is None:
            values = self._sink_source()
            self._sink_values = values
            self._sink_source = None
        return values

    @property
    def n_reachable_outputs(self) -> int:
        return len(self.sink_values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EPPResult):
            return NotImplemented
        return (
            self.site == other.site
            and self.p_sensitized == other.p_sensitized
            and self.cone_size == other.cone_size
            and self.sink_values == other.sink_values
        )

    def __hash__(self) -> int:
        # Scalar fields only: consistent with __eq__ (equal results share
        # them) and — unlike the former frozen-dataclass hash, which
        # raised on the sink_values dict — actually usable in sets.
        return hash((self.site, self.p_sensitized, self.cone_size))

    def __repr__(self) -> str:
        # Never materialize just to render: printing a full-circuit result
        # set would otherwise build millions of deferred EPPValue objects.
        sinks = (
            "<deferred>" if self._sink_values is None
            else repr(self._sink_values)
        )
        return (
            f"EPPResult(site={self.site!r}, p_sensitized={self.p_sensitized!r}, "
            f"sink_values={sinks}, cone_size={self.cone_size!r})"
        )

    # Deferred sink sources close over sweep arrays and are not picklable;
    # pickling materializes, so results cross process boundaries intact.
    def __getstate__(self):
        return (self.site, self.p_sensitized, self.cone_size, self.sink_values)

    def __setstate__(self, state):
        self.site, self.p_sensitized, self.cone_size, self._sink_values = state
        self._sink_source = None


class EPPEngine:
    """Error-propagation-probability engine bound to one circuit.

    Parameters
    ----------
    circuit:
        The circuit under analysis (combinational or sequential).
    signal_probs:
        Precomputed signal probabilities (node name -> P(1)).  When omitted
        they are computed with ``sp_method`` / ``sp_options`` — the paper
        treats SP computation as a separately-charged preprocessing step,
        which is why the engine accepts it as an input.
    sp_method / sp_options:
        Backend for on-demand SP computation (see
        :func:`repro.probability.signal_probabilities`).
    track_polarity:
        ``False`` collapses ``ā`` into ``a`` after every gate — the
        polarity-blind ablation (reconvergent cancellation is lost).
    """

    def __init__(
        self,
        circuit: Circuit,
        signal_probs: Mapping[str, float] | None = None,
        sp_method: str = "topological",
        sp_options: Mapping | None = None,
        track_polarity: bool = True,
    ):
        self.circuit = circuit
        self.compiled: CompiledCircuit = circuit.compiled()
        # Captured so every public query can detect that the circuit was
        # mutated after construction: the compiled view, the SP vector and
        # every backend cache below describe the *pre-edit* circuit, and
        # silently answering from them is the stale-read bug class this
        # guard exists to close (see ``_check_current``).
        self._mutation_at_build = circuit.mutation_token
        self.track_polarity = track_polarity
        # SP provenance, recorded for the incremental-analysis layer
        # (:mod:`repro.core.epp_delta`): whether the caller supplied the
        # map (then edits must supply SPs for any new node) or the engine
        # computed it (then a delta recomputes with the same method).
        self._user_sp = signal_probs is not None
        self._sp_method = sp_method
        self._sp_options = dict(sp_options) if sp_options else {}
        if signal_probs is None:
            signal_probs = signal_probabilities(
                circuit, method=sp_method, **self._sp_options
            )
        self._sp: list[float] = [0.0] * self.compiled.n
        for node_id in range(self.compiled.n):
            name = self.compiled.names[node_id]
            try:
                p = float(signal_probs[name])
            except KeyError:
                raise AnalysisError(
                    f"signal_probs is missing node {name!r}; "
                    "pass a complete SP map or let the engine compute one"
                ) from None
            if not 0.0 <= p <= 1.0:
                raise AnalysisError(f"signal probability for {name!r} out of [0,1]: {p}")
            self._sp[node_id] = p

        self._cones = ConeExtractor(self.compiled)
        n = self.compiled.n
        # Scratch state for the pass: four parallel float arrays plus a
        # generation-stamped on-path mark (no O(n) clearing between sites).
        self._pa = [0.0] * n
        self._pa_bar = [0.0] * n
        self._p0 = [0.0] * n
        self._p1 = [0.0] * n
        self._mark = [0] * n
        self._generation = 0
        # Per-gate dispatch tables: fanin tuples and rule callables resolved
        # once at construction, so the hot loop skips the CSR slice and the
        # code->rule dict lookup per gate per site.  MUX/MAJ (and any future
        # cell without a closed form) get their truth table bound here too.
        self._fanin_by_gate: list[tuple[int, ...]] = [
            tuple(self.compiled.fanin(i)) for i in range(n)
        ]
        self._rule_by_gate: list = [None] * n
        for node_id in range(n):
            if not self.compiled.gate_type(node_id).is_combinational:
                continue
            code = self.compiled.code[node_id]
            if code in (CODE_MUX, CODE_MAJ) or code not in _RULES_BY_CODE:
                table = truth_table(
                    self.compiled.gate_type(node_id),
                    len(self._fanin_by_gate[node_id]),
                )
                self._rule_by_gate[node_id] = (
                    lambda values, _table=table: truth_table_rule(_table, values)
                )
            else:
                self._rule_by_gate[node_id] = _RULES_BY_CODE[code]
        self._vector_backend = None
        self._sharded_backend = None
        # Serializes every sweep that touches the engine's shared mutable
        # state: the scalar scratch arrays above, the cone cache, and the
        # vector/sharded backend cache slots.  The analysis service
        # coalesces concurrent requests over one engine from a thread
        # pool; without this lock two overlapping pack_sites calls would
        # interleave generation stamps and chunk buffers.  Reentrant
        # because the vector backend's scalar fallback re-enters
        # ``node_epp`` from inside a locked sweep.
        self._sweep_lock = threading.RLock()

    # ------------------------------------------------------------- staleness

    def _check_current(self) -> None:
        """Refuse to answer from a pre-edit snapshot of the circuit.

        The engine captures ``circuit.compiled()`` (plus the SP vector,
        cone cache, per-gate dispatch tables and any vector/sharded
        backend) at construction.  Mutating the :class:`Circuit`
        afterwards leaves all of that silently describing the old
        netlist — results would come back numerically plausible and
        wrong.  Every public query calls this first and raises instead.
        """
        if self.circuit.mutation_token != self._mutation_at_build:
            raise AnalysisError(
                f"circuit {self.circuit.name!r} was mutated after this "
                "engine was built; rebuild the engine, or apply the edits "
                "through analyze_delta() to reuse the previous results"
            )

    # ----------------------------------------------------------------- sites

    def default_sites(
        self, include_inputs: bool = False, include_state: bool = False
    ) -> list[str]:
        """The error sites analyzed by default: combinational gate outputs.

        ``include_inputs`` adds primary inputs (SEUs on input pads);
        ``include_state`` adds flip-flop outputs (SEUs in the storage cell
        observed through the next-cycle logic).
        """
        compiled = self.compiled
        sites = [
            compiled.names[i]
            for i in range(compiled.n)
            if compiled.gate_type(i).is_combinational
        ]
        if include_inputs:
            sites += [compiled.names[i] for i in compiled.input_ids]
        if include_state:
            sites += [compiled.names[i] for i in compiled.dff_ids]
        return sites

    def cone(self, site: int | str) -> OnPathCone:
        """The (cached) on-path cone of a site."""
        return self._cones.cone(site)

    # ------------------------------------------------------------------- EPP

    def node_epp(self, site: int | str) -> EPPResult:
        """Full EPP analysis of one error site (per-sink vectors included)."""
        self._check_current()
        with self._sweep_lock:
            site_id = self._cones.resolve(site)
            cone = self._cones.cone(site_id)
            self._propagate(site_id, cone)
            compiled = self.compiled
            sink_values: dict[str, EPPValue] = {}
            error_probs: list[float] = []
            for sink in cone.sinks:
                value = EPPValue.clamped(
                    self._pa[sink], self._pa_bar[sink],
                    self._p0[sink], self._p1[sink],
                )
                sink_values[compiled.names[sink]] = value
                error_probs.append(value.error_probability)
            return EPPResult(
                site=compiled.names[site_id],
                p_sensitized=combine_sensitization(error_probs),
                sink_values=sink_values,
                cone_size=cone.size,
            )

    def p_sensitized(self, site: int | str) -> float:
        """``P_sensitized`` only — the fast path used by the benchmarks."""
        self._check_current()
        with self._sweep_lock:
            site_id = self._cones.resolve(site)
            cone = self._cones.cone(site_id)
            self._propagate(site_id, cone)
            pa = self._pa
            pa_bar = self._pa_bar
            survive_none = 1.0
            for sink in cone.sinks:
                survive_none *= 1.0 - (pa[sink] + pa_bar[sink])
            return 1.0 - survive_none

    def _propagate(self, site_id: int, cone: OnPathCone) -> None:
        """One topological pass over the cone (paper step 3)."""
        compiled = self.compiled
        self._generation += 1
        generation = self._generation
        mark = self._mark
        pa = self._pa
        pa_bar = self._pa_bar
        p0 = self._p0
        p1 = self._p1
        sp = self._sp
        fanin_by_gate = self._fanin_by_gate
        rule_by_gate = self._rule_by_gate
        track_polarity = self.track_polarity

        # The error site carries the erroneous value with certainty: 1(a).
        pa[site_id] = 1.0
        pa_bar[site_id] = 0.0
        p0[site_id] = 0.0
        p1[site_id] = 0.0
        mark[site_id] = generation

        for gate in cone.gate_order:
            values = []
            for pin in fanin_by_gate[gate]:
                if mark[pin] == generation:  # on-path fanin
                    values.append((pa[pin], pa_bar[pin], p0[pin], p1[pin]))
                else:  # off-path fanin: plain signal probability
                    p = sp[pin]
                    values.append((0.0, 0.0, 1.0 - p, p))
            result = rule_by_gate[gate](values)
            if not track_polarity:
                result = merge_polarity(result)
            pa[gate], pa_bar[gate], p0[gate], p1[gate] = result
            mark[gate] = generation

    # -------------------------------------------------------------- analysis

    def _resolve_backend(self, backend: str | None) -> str:
        if backend is None:
            return default_backend()
        info = REGISTRY.get(backend)  # unknown-name check
        if not info.available():
            raise AnalysisError(
                f"the {backend!r} EPP backend requires NumPy, which is not installed"
            )
        return backend

    def _get_vector_backend(self, config: AnalysisConfig):
        from repro.core.epp_batch import BatchEPPBackend, default_batch_size

        # Cache keyed by the *effective* configuration: a one-off explicit
        # batch_size/prune/schedule/cells/chunking/rows must not stick to
        # later default calls.
        resolved = config.resolved()
        effective = (
            resolved.batch_size if resolved.batch_size is not None
            else default_batch_size(self.compiled.n),
            resolved.prune,
            resolved.schedule,
            resolved.cells,
            resolved.chunking,
            resolved.rows,
        )
        backend = self._vector_backend
        if backend is None or (
            backend.batch_size, backend.prune, backend.schedule,
            backend.cells, backend.chunking, backend.rows,
        ) != effective:
            backend = BatchEPPBackend(
                self.compiled,
                self._sp,
                track_polarity=self.track_polarity,
                scalar_fallback=self.node_epp,
                **config.sweep_kwargs(),
            )
            self._vector_backend = backend
        return backend

    def _get_sharded_backend(self, config: AnalysisConfig):
        from repro.core.epp_shard import ShardedEPPEngine, default_jobs
        from repro.core.resilience import FaultPolicy

        jobs = config.jobs
        batch_size = config.batch_size
        effective_jobs = int(jobs) if jobs is not None else default_jobs()
        requested_batch = None if batch_size is None else int(batch_size)
        # Resolve the knobs to a full policy *before* the cache check:
        # the policy is part of the backend's identity, so changing (say)
        # the retry budget rebuilds the pool rather than silently reusing
        # one configured differently.
        policy = FaultPolicy.from_config(config)
        local = self._get_vector_backend(config)
        checkpoint = config.checkpoint
        backend = self._sharded_backend
        if (
            backend is None
            or backend.jobs != effective_jobs
            or backend.requested_batch_size != requested_batch
            or backend.local is not local
            or backend.policy != policy
            or backend.fault_injector is not config.fault_injector
            or backend.checkpoint != (
                None if checkpoint is None else os.fspath(checkpoint)
            )
        ):
            if backend is not None:
                backend.close()
            backend = ShardedEPPEngine(
                self.compiled,
                self._sp,
                track_polarity=self.track_polarity,
                local_backend=local,
                config=config.replace(jobs=effective_jobs),
            )
            self._sharded_backend = backend
        return backend

    def sharded_backend(
        self,
        jobs: int | None = None,
        batch_size: int | None = None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
        rows: str | None = None,
        retries: int | None = None,
        shard_timeout: float | None = None,
        on_failure: str | None = None,
        deadline: float | None = None,
        fault_injector=None,
        checkpoint=None,
        config: AnalysisConfig | None = None,
    ):
        """The multi-process sharded driver bound to this engine.

        Exposes the bulk queries (``p_sensitized_many``, ``analyze_sites``),
        the pool lifecycle (``warm``/``close``) and the crossover knob
        (``min_process_work``); raises :class:`~repro.errors.AnalysisError`
        when NumPy is unavailable.  The engine holds one cache slot: the
        *most recent* configuration — ``(jobs, batch_size)`` plus the
        resolved :class:`~repro.core.resilience.FaultPolicy` — is reused
        across calls, and requesting a different configuration closes the
        previous instance's worker pool before building the new one (so
        the engine never accumulates live pools).  Alternate
        configurations per call by constructing
        :class:`~repro.core.epp_shard.ShardedEPPEngine` instances
        directly instead.
        """
        self._check_current()
        self._resolve_backend("sharded")
        if config is None:
            config = AnalysisConfig(
                backend="sharded", jobs=jobs, batch_size=batch_size,
                prune=prune, schedule=schedule, cells=cells,
                chunking=chunking, rows=rows, retries=retries,
                shard_timeout=shard_timeout, on_failure=on_failure,
                deadline=deadline, fault_injector=fault_injector,
                checkpoint=checkpoint,
            )
        return self._get_sharded_backend(config)

    def vector_backend(
        self,
        batch_size: int | None = None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
        rows: str | None = None,
        config: AnalysisConfig | None = None,
    ):
        """The batched NumPy backend bound to this engine (public access).

        Exposes the backend's bulk queries (``p_sensitized_many``,
        ``analyze_sites``) and tuning knobs (``min_vector_work``) without
        reaching into engine internals; raises
        :class:`~repro.errors.AnalysisError` when NumPy is unavailable.
        The instance is cached per effective
        (batch size, prune, schedule, cells, chunking) configuration.
        """
        self._check_current()
        self._resolve_backend("vector")
        if config is None:
            config = AnalysisConfig(
                batch_size=batch_size, prune=prune, schedule=schedule,
                cells=cells, chunking=chunking, rows=rows,
            )
        return self._get_vector_backend(config)

    def release_buffers(self) -> None:
        """Reclaim the vector backend's chunk-width state matrices — and
        shut the sharded worker pool down, releasing its processes' copies
        too.  Everything rebuilds lazily on the next bulk call, but note
        the asymmetry: local buffers rebuild in milliseconds, while the
        next sharded call pays full pool respawn and per-worker
        re-planning — call this between sharded analyses only when the
        memory matters more than that latency.  Per-site scalar queries
        are unaffected."""
        if self._vector_backend is not None:
            self._vector_backend.release_buffers()
        if self._sharded_backend is not None:
            self._sharded_backend.close()

    def _analyze_sites(
        self, sites: Sequence[int | str], backend: str, config: AnalysisConfig
    ) -> dict[str, EPPResult]:
        with self._sweep_lock:
            info = REGISTRY.get(backend)
            impl = info.factory(self, config)
            site_ids = [self._cones.resolve(site) for site in sites]
            return impl.analyze_sites(site_ids)

    def analyze(
        self,
        sites: Sequence[int | str] | None = None,
        sample: int | None = None,
        seed: int = 0,
        collapse: bool = False,
        config: AnalysisConfig | None = None,
        **knobs,
    ) -> dict[str, EPPResult]:
        """EPP for many sites (default: every combinational gate output).

        ``sample`` draws a deterministic random subset — the treatment the
        paper applies to its larger circuits ("a limited number of gates of
        the circuits are simulated").  ``collapse=True`` shares one analysis
        across provably equivalent sites (buffer/inverter chains; see
        :mod:`repro.core.collapse`), which changes nothing in the results
        and skips redundant passes.

        ``backend`` selects the propagation kernel: ``"scalar"`` walks one
        cone per site (the reference oracle), ``"vector"`` runs the batched
        level-parallel NumPy sweep of :mod:`repro.core.epp_batch`, and
        ``"sharded"`` fans site shards out across ``jobs`` worker processes
        each running the vector sweep (:mod:`repro.core.epp_shard`).  The
        default (``None``) picks ``vector`` when NumPy is available — or
        ``sharded`` when ``jobs`` is given explicitly.  All backends agree
        to 1e-9 (floating-point reassociation only).  ``batch_size`` bounds
        the vector backend's per-chunk site count (default: sized to keep
        the state matrix in cache); ``jobs`` is the sharded worker count
        (default: one per core).  Small workloads never pay process
        spin-up — the sharded driver's crossover guard routes them to the
        in-process vector path.

        ``prune`` toggles the cone-aware sparse sweep (default ``"auto"``:
        every gate group is sliced to the rows on some chunk member's
        fanout cone — bit-identical, just less work — with a dense
        fallback for chunks whose union-of-cones saturates a small
        circuit, where pruning is measured overhead) and ``schedule``
        picks the chunk scheduling strategy
        (``"auto"``/``"cone"``/``"input"``; the default cone-clusters
        multi-chunk site lists so chunks share fanout cones and the
        pruned sweep's unions stay small).  Both apply to the vector and
        sharded backends; the scalar path ignores them (it is already
        per-cone by construction).  ``cells`` picks the cell-compaction
        mode of pruned sweeps (``"auto"``/``"on"``/``"off"``: the default
        cost model gathers and computes only the on-path (row, column)
        cells of sufficiently sparse gate groups) and ``chunking`` the
        chunk-width strategy (``"auto"``/``"adaptive"``/``"fixed"``: the
        default splits cone-clustered chunks whose union-of-cones
        saturates).  ``rows`` picks the state-matrix layout of pruned
        sweeps (``"auto"``/``"compact"``/``"full"``: the default
        allocates per-chunk buffers with only the union-of-cones rows
        through a cached row remap, eliminating the full-template
        restore; ``"full"`` keeps the PR-4 full-circuit buffers) — all
        bit-identical; they change how much is computed, never any value.

        The resilience knobs apply to the sharded backend only (like
        ``jobs``): ``retries`` is the extra attempts allowed per failed
        shard, ``shard_timeout`` the per-shard deadline (seconds) past
        which a slow shard is re-enqueued with backoff, ``deadline`` the
        global analysis deadline, and ``on_failure`` the terminal action
        once a shard's budget is spent — ``"retry"`` (raise
        :class:`~repro.errors.RetryBudgetExceededError`), ``"degrade"``
        (finish the shard in-process, bit-identical) or ``"raise"``
        (fail fast on the first shard failure).  See
        :class:`~repro.core.resilience.FaultPolicy`.

        ``checkpoint`` (sharded only, like ``jobs``) names a directory
        for the per-shard sweep journal (:mod:`repro.core.checkpoint`):
        completed shards are journaled as they merge, and re-running the
        identical analysis — including after the process was killed
        mid-sweep — loads the journaled shards back checksum-verified
        and re-sweeps only the rest, bit-identical to a clean run.

        ``config`` accepts a pre-built
        :class:`~repro.core.config.AnalysisConfig` carrying all of the
        above at once; it is mutually exclusive with the individual
        knobs.  Every knob — named or via ``config`` — is validated by
        the config layer at this boundary, so unknown names, bad values
        and conflicting combinations raise
        :class:`~repro.errors.AnalysisConfigError` before any backend
        is resolved or constructed.
        """
        self._check_current()
        if config is not None and knobs:
            raise AnalysisConfigError(
                "pass either config= or individual analysis knobs, "
                f"not both (got config= plus {sorted(knobs)})"
            )
        cfg = config if config is not None else AnalysisConfig.from_knobs(**knobs)
        if sites is None:
            sites = self.default_sites()
        sites = list(sites)
        if sample is not None and sample < len(sites):
            sites = random.Random(seed).sample(sites, sample)
        backend = self._resolve_backend(cfg.effective_backend())
        # Re-check the sharded-only knobs against the *resolved* backend:
        # construction already rejected conflicts with an explicit
        # backend, but `retries=` with a defaulted vector backend only
        # becomes a conflict here.
        cfg.require_backend_support(backend)

        if not collapse:
            return self._analyze_sites(sites, backend, cfg)

        from repro.core.collapse import collapse_seu_sites

        equivalence = collapse_seu_sites(self.circuit)
        site_names = [
            site if isinstance(site, str) else self.compiled.names[site]
            for site in sites
        ]
        by_representative: dict[str, list[str]] = {}
        for name in site_names:
            rep = equivalence.representative.get(name, name)
            by_representative.setdefault(rep, []).append(name)
        rep_results = self._analyze_sites(list(by_representative), backend, cfg)
        results = {}
        for rep, members in by_representative.items():
            rep_result = rep_results[rep]
            for member in members:
                # Each member defers to a fresh copy of the
                # representative's dict, built on first access: sharing
                # the representative's dict would let a caller mutating
                # one result corrupt every collapsed sibling, and copying
                # eagerly would force-materialize every deferred result
                # the batch backend just avoided building.
                results[member] = EPPResult.deferred(
                    member,
                    rep_result.p_sensitized,
                    rep_result.cone_size,
                    (lambda source=rep_result: dict(source.sink_values)),
                )
        return results

    # ------------------------------------------------------- incremental

    def snapshot(
        self,
        sites: Sequence[int | str] | None = None,
        config: AnalysisConfig | None = None,
        **knobs,
    ):
        """A full analysis packaged for incremental what-if edits.

        Returns a :class:`~repro.core.epp_delta.DeltaAnalysis`: the packed
        per-site result arrays of a full vectorized sweep plus everything
        :meth:`analyze_delta` needs to re-sweep only the sites an edit can
        affect — the resolved SP map (with its provenance), the site-list
        semantics (an omitted ``sites`` re-derives the default site list
        after structural edits) and the backend knobs.  The packed arrays
        are exactly ``pack_sites`` output, so a later delta's splice is
        ``np.array_equal``-identical to re-running this snapshot on the
        edited circuit.

        The resilience knobs (``retries``/``shard_timeout``/
        ``on_failure``/``deadline``) apply to the sharded backend only,
        exactly as in :meth:`analyze` — the analysis service uses
        ``deadline`` to push a request's remaining budget into the sweep
        itself.
        """
        from repro.core.epp_delta import snapshot as _snapshot

        if config is not None:
            if knobs:
                raise AnalysisConfigError(
                    "pass either config= or individual analysis knobs, "
                    f"not both (got config= plus {sorted(knobs)})"
                )
            knobs = config.knobs()
        return _snapshot(self, sites=sites, **knobs)

    def analyze_delta(self, prev, edits, sites: Sequence[int | str] | None = None, **knobs):
        """Re-analyze after ``edits``, reusing every unaffected column.

        ``prev`` is a :class:`~repro.core.epp_delta.DeltaAnalysis` from
        :meth:`snapshot` (or a previous delta) over *this* engine's
        circuit; ``edits`` an :class:`~repro.core.epp_delta.EditSet`.  The
        edit set is applied to a copy of the circuit, the dirty site set
        is derived from reverse reachability over both the old and new
        netlists, only dirty columns are re-swept, and the fresh packed
        arrays are spliced into the retained ones — bit-identical
        (``np.array_equal``) to a full re-analysis of the edited circuit.
        Keyword knobs (``backend``/``jobs``/``batch_size``/...) override
        the snapshot's for the re-sweep.
        """
        from repro.core.epp_delta import analyze_delta as _analyze_delta

        if prev.engine is not self:
            raise AnalysisError(
                "analyze_delta: the previous DeltaAnalysis belongs to a "
                "different engine; call it on prev.engine (each delta "
                "carries the engine of its own circuit revision)"
            )
        return _analyze_delta(prev, edits, sites=sites, **knobs)

    def dominant_path(self, site: int | str, sink: str | None = None) -> list[tuple[str, float]]:
        """The highest-probability error path from ``site`` to a sink.

        Greedy backward walk: starting at the chosen sink (default: the
        reachable sink with the largest surviving error probability), at
        every gate follow the on-path fanin whose vector carries the most
        error.  Returns ``[(node_name, error_probability), ...]`` from the
        site to the sink — the diagnostic a designer reads to see *where*
        a vulnerable node's error escapes.
        """
        self._check_current()
        site_id = self._cones.resolve(site)
        cone = self._cones.cone(site_id)
        self._propagate(site_id, cone)
        compiled = self.compiled
        generation = self._generation
        mark = self._mark
        pa = self._pa
        pa_bar = self._pa_bar

        if sink is not None:
            sink_id = self._cones.resolve(sink)
            if sink_id not in cone.sinks:
                raise AnalysisError(
                    f"{compiled.names[sink_id]!r} is not a reachable sink of "
                    f"{compiled.names[site_id]!r}"
                )
        else:
            if not cone.sinks:
                return []
            sink_id = max(cone.sinks, key=lambda s: pa[s] + pa_bar[s])

        path = [(compiled.names[sink_id], pa[sink_id] + pa_bar[sink_id])]
        current = sink_id
        while current != site_id:
            best = None
            best_error = -1.0
            for pin in compiled.fanin(current):
                if mark[pin] != generation:
                    continue  # off-path
                error = pa[pin] + pa_bar[pin]
                if error > best_error:
                    best_error = error
                    best = pin
            if best is None:
                break  # degenerate: error created only by polarity algebra
            path.append((compiled.names[best], best_error))
            current = best
        path.reverse()
        return path
