"""Incremental what-if analysis: re-sweep only what an edit can touch.

The paper's SER estimates exist to drive design decisions — harden this
gate, triplicate that one — and a design loop applies many small netlist
edits in sequence.  A full re-analysis per edit wastes almost all of its
work: a local edit changes the packed result column of a site only if
the edit can influence that site's propagation.  This module makes the
re-analysis proportional to the edit instead:

* :class:`EditSet` — a structured, replayable edit script over a
  :class:`~repro.netlist.circuit.Circuit`: gate replacement/rewiring,
  node addition/removal, output marking, signal-probability overrides,
  drive-strength hardening (metadata only — upsizing changes R_SEU, not
  the logic) and local TMR insertion
  (:func:`~repro.netlist.transform.triplicate_nodes`).  ``apply`` clones
  the circuit, replays the script and reports every node name the edits
  touched structurally.
* :func:`snapshot` — a full vectorized analysis packaged with everything
  a later delta needs: the ``pack_sites`` arrays, the resolved SP map
  and its provenance, the site-list semantics and the backend knobs.
* :func:`analyze_delta` — the incremental step.  A site's packed column
  depends only on its fanout cone's membership, those gates' functions
  and fanin lists, and the SPs the cone reads — so a site is dirty
  exactly when its cone (in the old *or* the new netlist) intersects
  the *seed set*: structurally edited nodes, plus the combinational
  users of every node whose signal probability changed bitwise (so
  correctness never depends on the SP method being local), plus the
  D-pin drivers of edited flip-flops (cones stop at DFF inputs, so
  sink-list changes must be seeded one hop upstream).  :func:`dirty_mask`
  computes exactly that set with a single reverse topological pass —
  the same reverse-reachability structure
  :class:`~repro.core.schedule.ConeIndex` bitsets encode, kept exact
  here by running it per edit instead of intersecting signatures.
  Deliberately *not* a forward-then-reverse butterfly: nodes merely
  downstream of an edit contribute nothing to an off-path site's column
  beyond their SP, and SP ripple is already captured explicitly by the
  bitwise diff.  Only dirty columns are re-swept, through the same
  batch/sharded backends as a full run, and the fresh packed arrays are
  spliced into the retained ones.

Bit-identicality: every packed column is computed independently of its
chunk-mates (the pinned invariant of :mod:`repro.core.epp_batch`), so a
retained column is byte-for-byte what a full re-analysis would have
produced, and the spliced result is ``np.array_equal`` to re-running
:func:`snapshot` on the edited circuit — the differential tests pin
exactly that, plus 1e-9 agreement with the scalar oracle.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError, NetlistError
from repro.core.epp import EPPEngine
from repro.netlist.circuit import Circuit, CompiledCircuit
from repro.probability import signal_probabilities

__all__ = [
    "DeltaAnalysis",
    "EditSet",
    "analyze_delta",
    "dirty_mask",
    "edit_impact",
    "snapshot",
]

#: The analysis knobs a snapshot records and a delta may override — now
#: the authoritative tuple of :mod:`repro.core.config`, re-exported so
#: existing importers keep working.  The resilience knobs (sharded
#: backend only, like ``jobs``) let a caller — the analysis service most
#: of all — propagate a request's end-to-end deadline into
#: :class:`~repro.core.resilience.FaultPolicy` for the sweep itself, not
#: just the boundaries around it.  ``fault_injector`` is the chaos
#: harness's hook (:class:`repro.testing.faults.FaultInjector`) —
#: testing only, never accepted over the analysis-service wire.
#: ``checkpoint`` (the sweep journal directory,
#: :mod:`repro.core.checkpoint`) is likewise server-controlled, never
#: wire-reachable: a client must not pick filesystem paths on the
#: service host.
from repro.core.config import (  # noqa: E402
    KNOB_KEYS,
    RESILIENCE_KNOB_KEYS,
    SWEEP_KNOB_KEYS,
    AnalysisConfig,
)


class EditSet:
    """A structured, replayable edit script over one circuit.

    Build it fluently (every method returns ``self``)::

        edits = (EditSet()
                 .replace_gate("g5", "nand")
                 .set_sp("in2", 0.9)
                 .harden("g7", strength_factor=8.0)
                 .tmr("g3"))

    ``apply`` replays the script onto a *copy* of a circuit — the
    original is never mutated — and returns the edited circuit together
    with the set of structurally touched node names (exactly the nodes
    whose function, fanin list or sink status changed), which is what
    the dirty-set computation seeds from.  ``harden``/``resize`` are metadata-only:
    upsizing divides a node's SEU cross section without changing the
    logic, so they contribute no structural touches (and an upsize-only
    edit set re-sweeps nothing).
    """

    def __init__(self):
        self._ops: list[tuple] = []
        #: Signal-probability overrides (node name -> P(1)), applied on
        #: top of the reused/recomputed SP map by :func:`analyze_delta`.
        self.sp_overrides: dict[str, float] = {}
        #: Drive-strength factors (node name -> factor > 1); carried as
        #: metadata into the delta and applied by the SER layer.
        self.hardening: dict[str, float] = {}
        #: New-node -> source-node SP inheritance (TMR replicas), filled
        #: by :meth:`apply`; consulted when the analysis runs on a
        #: user-supplied SP map that cannot cover nodes it predates.
        self._sp_alias: dict[str, str] = {}

    @property
    def sp_aliases(self) -> dict[str, str]:
        """SP inheritance recorded by the most recent :meth:`apply`."""
        return dict(self._sp_alias)

    # ------------------------------------------------------------- builders

    def set_sp(self, name: str, value: float) -> "EditSet":
        """Override one node's signal probability."""
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise AnalysisError(
                f"set_sp({name!r}): probability out of [0, 1]: {value}"
            )
        self._ops.append(("set_sp", name, value))
        self.sp_overrides[name] = value
        return self

    def harden(self, name: str, strength_factor: float = 10.0) -> "EditSet":
        """Upsize a gate: divide its SEU cross section by the factor.

        Metadata-only — the logic (and every EPP value) is unchanged, so
        hardening edits never dirty any site; the SER layer divides the
        node's R_SEU by the accumulated factor instead.
        """
        factor = float(strength_factor)
        if factor <= 1.0:
            raise AnalysisError(
                f"harden({name!r}): strength_factor must be > 1, got {factor}"
            )
        self._ops.append(("harden", name, factor))
        self.hardening[name] = self.hardening.get(name, 1.0) * factor
        return self

    def resize(self, name: str, strength_factor: float) -> "EditSet":
        """Alias of :meth:`harden` — resizing *is* a drive-strength change."""
        return self.harden(name, strength_factor)

    def replace_gate(
        self,
        name: str,
        gate_type=None,
        fanin: Sequence[str] | None = None,
    ) -> "EditSet":
        """Swap an existing gate's type and/or fanin in place (name kept)."""
        self._ops.append(
            ("replace_gate", name, gate_type,
             None if fanin is None else tuple(fanin))
        )
        return self

    def add_gate(self, name: str, gate_type, fanin: Sequence[str]) -> "EditSet":
        """Add a new combinational gate."""
        self._ops.append(("add_gate", name, gate_type, tuple(fanin)))
        return self

    def remove_node(self, name: str) -> "EditSet":
        """Remove an unused node (fails if anything still references it)."""
        self._ops.append(("remove_node", name))
        return self

    def mark_output(self, name: str) -> "EditSet":
        """Mark a node as a primary output (a new observable sink)."""
        self._ops.append(("mark_output", name))
        return self

    def rewire(self, name: str, old: str, new: str) -> "EditSet":
        """Replace every occurrence of ``old`` in ``name``'s fanin by ``new``."""
        self._ops.append(("rewire", name, old, new))
        return self

    def tmr(self, *names: str) -> "EditSet":
        """Locally triplicate gates with majority voters (in-place TMR).

        Each named gate becomes a MAJ voter over three fresh replicas of
        itself (:func:`~repro.netlist.transform.triplicate_nodes`), so
        every user — and the gate's output marking — is untouched.
        """
        if not names:
            raise AnalysisError("tmr() needs at least one gate name")
        self._ops.append(("tmr", tuple(names)))
        return self

    # --------------------------------------------------------------- replay

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return True  # an empty edit set is still a (no-op) edit set

    @property
    def structural_ops(self) -> int:
        """How many ops actually change the netlist structure."""
        return sum(
            1 for op in self._ops if op[0] not in ("set_sp", "harden")
        )

    def apply(self, circuit: Circuit) -> tuple[Circuit, set[str]]:
        """Replay onto a copy of ``circuit``; return (edited, touched names).

        ``touched`` contains exactly the structurally edited nodes — the
        seed of the dirty-set computation.  SP overrides are validated
        here (the node must
        exist after the structural edits) but contribute to the dirty
        set through the bitwise SP diff, not through ``touched``.
        """
        from repro.netlist.transform import triplicate_nodes

        edited = circuit.copy()
        touched: set[str] = set()
        # Rebuilt per apply(): replica names can depend on the circuit
        # (suffix escalation), so aliases are a per-application artifact.
        self._sp_alias = {}
        for op in self._ops:
            kind = op[0]
            if kind == "set_sp":
                continue  # validated below, once all structure is in place
            if kind == "harden":
                edited.node(op[1])  # raises NetlistError on unknown nodes
                continue
            # ``touched`` holds exactly the nodes whose function, fanin
            # list or sink status changed — NOT their fanins.  A site
            # whose cone contains a touched node's *fanin* but not the
            # touched node itself reads that fanin's (unchanged) SP and
            # is unaffected; the reverse-reachability pass in
            # :func:`dirty_mask` follows each side's own edges, so paths
            # through old or new fanins are accounted for structurally.
            if kind == "replace_gate":
                _, name, gate_type, fanin = op
                edited.replace_gate(name, gate_type, fanin)
                touched.add(name)
            elif kind == "add_gate":
                _, name, gate_type, fanin = op
                edited.add_gate(name, gate_type, fanin)
                touched.add(name)
            elif kind == "remove_node":
                _, name = op
                edited.node(name)
                touched.add(name)
                edited.remove_node(name)
            elif kind == "mark_output":
                _, name = op
                edited.node(name)
                edited.mark_output(name)
                touched.add(name)
            elif kind == "rewire":
                _, name, old, new = op
                edited.replace_fanin(name, old, new)
                touched.add(name)
            elif kind == "tmr":
                for name in op[1]:
                    replicas = triplicate_nodes(edited, [name])[name]
                    touched.add(name)
                    touched.update(replicas)
                    for replica in replicas:
                        # Replicas compute the original gate's function on
                        # the original inputs, so under a user-supplied SP
                        # map they inherit the original node's SP (chasing
                        # one level keeps aliases rooted at pre-edit names
                        # when a voter from this same edit set is re-TMR'd).
                        self._sp_alias[replica] = self._sp_alias.get(name, name)
            else:  # pragma: no cover - builder methods are the only writers
                raise AssertionError(f"unknown edit op {kind!r}")
        for name in self.sp_overrides:
            if name not in edited:
                raise NetlistError(
                    f"set_sp: unknown node {name!r} after applying the "
                    "structural edits"
                )
        return edited, touched


def dirty_mask(
    compiled: CompiledCircuit,
    structural_names,
    sp_changed_names=(),
) -> bytearray:
    """Per-node flag: can the given edits affect this node's EPP column?

    A site's packed column depends on three things only: which gates its
    fanout cone contains, each cone gate's function/fanin list, and the
    signal probabilities those gates read off-path.  So the column can
    change only if the cone intersects the *seed set*:

    * a structurally edited node (function, fanin list or sink status
      changed) — ``structural_names``;
    * a node whose SP changed bitwise — its value seeds the site's own
      initial state, and every **combinational user** of it reads the SP
      as an off-path fanin value, so users seed too.  The bitwise diff
      already contains any downstream SP ripple explicitly (the engine
      recomputes the full map), so no forward closure is taken — that
      would conflate "downstream of an edit" with "reads a changed
      value" and drag in the whole butterfly ``TFI(TFO(edit))`` instead
      of ``TFI(edit)``;
    * the D-pin driver of a structurally edited flip-flop — the driver's
      *sink status* derives from the DFF, and cones stop at the D pin,
      so reachability through the DFF itself would never propagate.

    One reverse pass over the topological order then flags every node
    whose combinational fanout cone intersects the seeds — exactly the
    set whose columns must be re-swept.  Names absent from ``compiled``
    (nodes that exist only on the other side of the edit) are ignored;
    callers run this on both the old and the new netlist and union the
    verdicts.
    """
    n = compiled.n
    reach = bytearray(n)
    index = compiled.index
    combinational = [
        compiled.gate_type(node_id).is_combinational for node_id in range(n)
    ]
    from repro.netlist.gate_types import GateType

    for name in structural_names:
        node_id = index.get(name)
        if node_id is None:
            continue
        reach[node_id] = 1
        if compiled.gate_type(node_id) is GateType.DFF:
            reach[compiled.fanin(node_id)[0]] = 1
    for name in sp_changed_names:
        node_id = index.get(name)
        if node_id is None:
            continue
        reach[node_id] = 1
        for user_id in compiled.fanout(node_id):
            if combinational[user_id]:
                reach[user_id] = 1
    for node_id in reversed(compiled.topo):
        if not reach[node_id]:
            for user_id in compiled.fanout(node_id):
                if combinational[user_id] and reach[user_id]:
                    reach[node_id] = 1
                    break
    return reach


class DeltaAnalysis:
    """One analysis revision in an incremental what-if chain.

    Holds the packed per-site arrays of a full (or spliced) analysis
    plus the bookkeeping a further delta needs.  ``engine`` is the
    :class:`~repro.core.epp.EPPEngine` of *this* revision's circuit —
    chain onward with ``delta.apply(edits)`` (or
    ``delta.engine.analyze_delta(delta, edits)``).
    """

    __slots__ = (
        "engine", "site_names", "site_ids", "packed", "default_sites",
        "user_sp", "sp_method", "sp_options", "sp_map", "sp_overrides",
        "hardening", "knobs", "stats", "_results",
    )

    def __init__(self):
        self._results = None

    @property
    def p_sensitized(self) -> np.ndarray:
        """``P_sensitized`` per site, aligned with ``site_names`` (read-only)."""
        return self.packed[0]

    @property
    def cone_sizes(self) -> np.ndarray:
        return self.packed[1]

    def results(self) -> dict:
        """Materialize ``{site_name: EPPResult}`` from the packed arrays.

        Built lazily through the vector backend's deferred-dict
        materializer and memoized — the packed arrays stay the source of
        truth for splicing either way.
        """
        if self._results is None:
            with self.engine._sweep_lock:
                backend = self.engine.vector_backend(
                    **{key: self.knobs.get(key) for key in SWEEP_KNOB_KEYS}
                )
                collected: dict = {}
                backend.materialize(self.site_ids, self.packed, collected)
                self._results = collected
        return self._results

    def apply(self, edits: EditSet, sites=None, **knobs) -> "DeltaAnalysis":
        """Chain: re-analyze this revision after ``edits`` (see
        :func:`analyze_delta`)."""
        return analyze_delta(self, edits, sites=sites, **knobs)

    def __repr__(self) -> str:
        return (
            f"DeltaAnalysis({self.engine.circuit.name!r}: "
            f"{len(self.site_names)} sites, "
            f"dirty={self.stats['dirty']}, reused={self.stats['reused']})"
        )


def _normalize_knobs(knobs: Mapping) -> dict:
    # The config layer owns unknown-name rejection and value validation;
    # a snapshot's knob record stays a plain dict (all keys present) so
    # pickled DeltaAnalysis chains keep loading.
    return AnalysisConfig.from_knobs(
        **{k: v for k, v in knobs.items() if v is not None}
    ).knobs()


def _pack_backend(engine: EPPEngine, knobs: Mapping):
    """The backend object whose ``pack_sites`` runs the (re-)sweep."""
    from repro.core.backends import REGISTRY

    config = AnalysisConfig.from_knobs(
        **{k: v for k, v in knobs.items() if v is not None}
    )
    backend = config.effective_backend()
    info = REGISTRY.get(backend)  # validates the name
    if not info.supports_pack:
        raise AnalysisError(
            "snapshot/analyze_delta run the packed vectorized path; "
            f"backend={backend!r} has no packed representation (use "
            f"engine.analyze(backend={backend!r}) for the per-site oracle)"
        )
    engine._resolve_backend(backend)  # NumPy availability
    # Mirror analyze()'s guard: a retry budget or deadline on the
    # in-process path would be silently meaningless.
    config.require_backend_support(backend)
    with engine._sweep_lock:
        return info.factory(engine, config)


def _resolve_site_names(engine: EPPEngine, sites) -> tuple[list[str], bool]:
    """Site argument -> (names, was-defaulted)."""
    if sites is None:
        return engine.default_sites(), True
    names = engine.compiled.names
    return [
        site if isinstance(site, str) else names[site] for site in sites
    ], False


def snapshot(
    engine: EPPEngine,
    sites=None,
    **knobs,
) -> DeltaAnalysis:
    """A full packed analysis plus the context for incremental deltas."""
    engine._check_current()
    resolved = _normalize_knobs(knobs)
    # The sweep lock serializes the engine's shared scratch — backend
    # cache slots, cone cache, chunk-width state matrices — so the
    # service's coalescing layer can snapshot one engine from several
    # threads without corrupting a sweep in flight.  Reentrant: the
    # vector backend's scalar fallback re-enters through node_epp.
    with engine._sweep_lock:
        backend = _pack_backend(engine, resolved)
        site_names, defaulted = _resolve_site_names(engine, sites)
        site_ids = [engine._cones.resolve(name) for name in site_names]
        packed = backend.pack_sites(site_ids)

    delta = DeltaAnalysis()
    delta.engine = engine
    delta.site_names = site_names
    delta.site_ids = site_ids
    delta.packed = packed
    delta.default_sites = defaulted
    delta.user_sp = engine._user_sp
    delta.sp_method = engine._sp_method
    delta.sp_options = dict(engine._sp_options)
    delta.sp_map = {
        engine.compiled.names[node_id]: engine._sp[node_id]
        for node_id in range(engine.compiled.n)
    }
    # A delta-built engine carries the chain's accumulated SP overrides,
    # so a *fresh* snapshot of it keeps recomputed SP maps consistent.
    delta.sp_overrides = dict(getattr(engine, "_sp_delta_overrides", {}))
    delta.hardening = dict(getattr(engine, "_hardening_factors", {}))
    delta.knobs = resolved
    delta.stats = {
        "sites": len(site_names),
        "dirty": len(site_names),
        "reused": 0,
        "frontier": 0,
        "chain_length": 0,
    }
    return delta


def _prepare(prev: DeltaAnalysis, edits: EditSet, sites, knobs: Mapping) -> dict:
    """The analysis-independent front half of a delta: apply the edits,
    derive the new SP map and the edit frontier, classify sites."""
    engine = prev.engine
    engine._check_current()
    new_circuit, touched = edits.apply(engine.circuit)
    new_compiled = new_circuit.compiled()

    # ---- the new SP map: reuse (user-supplied) or recompute (engine
    # methods), then apply the chain's accumulated overrides.
    overrides = dict(prev.sp_overrides)
    overrides.update(edits.sp_overrides)
    computed = None
    if not prev.user_sp:
        computed = signal_probabilities(
            new_circuit, method=prev.sp_method, **prev.sp_options
        )
    aliases = edits.sp_aliases
    sp_map: dict[str, float] = {}
    missing: list[str] = []
    for name in new_compiled.names:
        if name in overrides:
            sp_map[name] = overrides[name]
        elif computed is not None:
            sp_map[name] = float(computed[name])
        elif name in prev.sp_map:
            sp_map[name] = prev.sp_map[name]
        elif aliases.get(name) in prev.sp_map:
            # TMR replicas compute the source gate's function on the
            # source gate's inputs — same SP by construction.
            sp_map[name] = prev.sp_map[aliases[name]]
        else:
            missing.append(name)
    if missing:
        raise AnalysisError(
            "analyze_delta: the analysis uses user-supplied signal "
            f"probabilities, which do not cover new node(s) "
            f"{missing[:3]!r}; add set_sp edits for them"
        )

    # ---- every bitwise SP change (including new and removed nodes).
    # Keeping this separate from the structural set matters: SP changes
    # seed their *users* in dirty_mask, structural edits seed only
    # themselves.  The bitwise diff is what keeps correctness independent
    # of the SP method's locality — a global backend simply dirties more.
    sp_changed: set[str] = set()
    for name, value in sp_map.items():
        old = prev.sp_map.get(name)
        if old is None or old != value:
            sp_changed.add(name)
    for name in prev.sp_map:
        if name not in sp_map:
            sp_changed.add(name)  # removed nodes dirty the old side
    frontier = touched | sp_changed

    hardening = dict(prev.hardening)
    for name, factor in edits.hardening.items():
        hardening[name] = hardening.get(name, 1.0) * factor
    hardening = {
        name: factor for name, factor in hardening.items()
        if name in new_compiled.index
    }

    new_engine = EPPEngine(
        new_circuit,
        signal_probs=sp_map,
        track_polarity=engine.track_polarity,
    )
    # Preserve SP provenance across the chain: the new engine's map is
    # materialized (we just built it), but *semantically* it is still
    # whatever the original analysis used.
    new_engine._user_sp = prev.user_sp
    new_engine._sp_method = prev.sp_method
    new_engine._sp_options = dict(prev.sp_options)
    new_engine._sp_delta_overrides = overrides
    new_engine._hardening_factors = hardening

    dirty_old = dirty_mask(engine.compiled, touched, sp_changed)
    dirty_new = dirty_mask(new_compiled, touched, sp_changed)

    if sites is not None:
        site_names = [
            site if isinstance(site, str) else new_compiled.names[site]
            for site in sites
        ]
        defaulted = False
    elif prev.default_sites:
        site_names = new_engine.default_sites()
        defaulted = True
    else:
        site_names = [
            name for name in prev.site_names if name in new_compiled.index
        ]
        defaulted = False

    old_column = {name: i for i, name in enumerate(prev.site_names)}
    old_index = engine.compiled.index
    new_index = new_compiled.index
    site_ids: list[int] = []
    dirty_flags: list[bool] = []
    for name in site_names:
        node_id = new_index.get(name)
        if node_id is None:
            raise AnalysisError(
                f"analyze_delta: unknown site {name!r} on the edited circuit"
            )
        site_ids.append(node_id)
        dirty_flags.append(
            name not in old_column
            or bool(dirty_new[node_id])
            or bool(dirty_old[old_index[name]])
        )
    return {
        "new_engine": new_engine,
        "new_compiled": new_compiled,
        "sp_map": sp_map,
        "sp_overrides": overrides,
        "hardening": hardening,
        "frontier": frontier,
        "site_names": site_names,
        "site_ids": site_ids,
        "dirty_flags": dirty_flags,
        "defaulted": defaulted,
        "old_column": old_column,
    }


def edit_impact(prev: DeltaAnalysis, edits: EditSet, sites=None) -> dict:
    """Dirty-set accounting for an edit set, without re-sweeping.

    Returns ``{"sites", "dirty", "reused", "frontier"}`` — what
    :func:`analyze_delta` would re-sweep.  Useful for previewing the
    cost of a candidate edit (the benchmark harness does exactly this
    to pick representative edits).
    """
    context = _prepare(prev, edits, sites, prev.knobs)
    dirty = sum(context["dirty_flags"])
    return {
        "sites": len(context["site_names"]),
        "dirty": int(dirty),
        "reused": len(context["site_names"]) - int(dirty),
        "frontier": len(context["frontier"]),
    }


def _segment_index(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices of variable-length segments, repeat-built."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    heads = np.repeat(starts, counts)
    prefix = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(prefix, counts)
    return heads + within


def _empty_packed() -> tuple:
    empty = np.zeros(0)
    return (
        empty, empty.astype(np.intp), empty.astype(np.intp),
        empty.astype(np.intp), np.zeros((0, 4)),
    )


def analyze_delta(
    prev: DeltaAnalysis,
    edits: EditSet,
    sites=None,
    **knobs,
) -> DeltaAnalysis:
    """Incremental re-analysis: apply ``edits``, re-sweep only dirty sites.

    Returns a new :class:`DeltaAnalysis` over the edited circuit whose
    packed arrays are ``np.array_equal`` to a full :func:`snapshot` of
    that circuit — retained columns are spliced in byte-for-byte (with
    sink positions remapped through the old→new sink-name map), dirty
    columns come from a fresh ``pack_sites`` over the same backends.
    Keyword knobs override the snapshot's for the re-sweep.
    """
    # An override of one knob keeps the snapshot's choice for the rest.
    merged_knobs = dict(prev.knobs)
    for key, value in knobs.items():
        if key not in KNOB_KEYS:
            raise AnalysisError(
                f"unknown analysis knob {key!r}; choose from {KNOB_KEYS}"
            )
        merged_knobs[key] = value

    context = _prepare(prev, edits, sites, merged_knobs)
    new_engine = context["new_engine"]
    site_names = context["site_names"]
    site_ids = context["site_ids"]
    dirty_flags = np.asarray(context["dirty_flags"], dtype=bool)
    n_sites = len(site_names)

    # ---- fresh sweep of the dirty columns only.
    dirty_positions = np.nonzero(dirty_flags)[0]
    clean_positions = np.nonzero(~dirty_flags)[0]
    dirty_ids = [site_ids[int(position)] for position in dirty_positions]
    if dirty_ids:
        with new_engine._sweep_lock:
            fresh = _pack_backend(new_engine, merged_knobs).pack_sites(dirty_ids)
    else:
        fresh = _empty_packed()

    # ---- splice: retained columns from the old packed arrays (sink
    # positions remapped by name), dirty columns from the fresh sweep.
    old_p, old_cone, old_counts, old_sink, old_values = prev.packed
    fresh_p, fresh_cone, fresh_counts, fresh_sink, fresh_values = fresh
    old_column = context["old_column"]
    old_columns_of_clean = np.asarray(
        [old_column[site_names[int(position)]] for position in clean_positions],
        dtype=np.intp,
    )

    if n_sites == 0:
        packed = _empty_packed()
    else:
        p_sens = np.empty(n_sites)
        cone_sizes = np.empty(n_sites, dtype=np.intp)
        counts = np.empty(n_sites, dtype=np.intp)
        p_sens[dirty_positions] = fresh_p
        cone_sizes[dirty_positions] = fresh_cone
        counts[dirty_positions] = fresh_counts
        p_sens[clean_positions] = old_p[old_columns_of_clean]
        cone_sizes[clean_positions] = old_cone[old_columns_of_clean]
        counts[clean_positions] = old_counts[old_columns_of_clean]

        old_compiled = prev.engine.compiled
        new_compiled = context["new_compiled"]
        new_sink_position = {
            new_compiled.names[sink_id]: position
            for position, sink_id in enumerate(new_compiled.sink_ids)
        }
        sink_remap = np.asarray(
            [
                new_sink_position.get(old_compiled.names[sink_id], -1)
                for sink_id in old_compiled.sink_ids
            ],
            dtype=np.intp,
        )

        old_starts = np.cumsum(old_counts) - old_counts
        identity_sinks = np.array_equal(
            sink_remap, np.arange(len(sink_remap))
        )
        if len(old_p) == n_sites and np.array_equal(
            old_columns_of_clean, clean_positions
        ):
            # Fast path: every retained column keeps its position, so
            # the flat arrays are alternating contiguous runs of the old
            # pack and the fresh dirty segments — spliced by slice
            # concatenation (pure memcpy).  The general path below
            # gathers element-by-element through 9.7M-entry index arrays
            # on s38417 and costs several seconds of pure memory
            # traffic; this one is bounded by a single copy of the data.
            fresh_starts = np.cumsum(fresh_counts) - fresh_counts
            sink_chunks, value_chunks = [], []
            cursor = 0
            for i, position in enumerate(map(int, dirty_positions)):
                run_end = int(old_starts[position])
                retained = old_sink[cursor:run_end]
                if not identity_sinks:
                    retained = sink_remap[retained]
                sink_chunks.append(retained)
                value_chunks.append(old_values[cursor:run_end])
                start = int(fresh_starts[i])
                end = start + int(fresh_counts[i])
                sink_chunks.append(fresh_sink[start:end])
                value_chunks.append(fresh_values[start:end])
                cursor = run_end + int(old_counts[position])
            retained = old_sink[cursor:]
            if not identity_sinks:
                retained = sink_remap[retained]
            sink_chunks.append(retained)
            value_chunks.append(old_values[cursor:])
            sink_pos = np.concatenate(sink_chunks)
            values = np.concatenate(value_chunks)
            if sink_pos.size and not identity_sinks and sink_pos.min() < 0:
                raise AnalysisError(
                    "analyze_delta internal error: a retained site "
                    "references a sink that no longer exists (the dirty "
                    "set should have caught this — please report)"
                )
        else:
            starts = np.cumsum(counts) - counts
            total = int(counts.sum())
            sink_pos = np.empty(total, dtype=np.intp)
            values = np.empty((total, 4))

            source_index = _segment_index(
                old_starts[old_columns_of_clean],
                old_counts[old_columns_of_clean],
            )
            target_index = _segment_index(
                starts[clean_positions], counts[clean_positions]
            )
            retained_sinks = sink_remap[old_sink[source_index]]
            if retained_sinks.size and retained_sinks.min() < 0:
                raise AnalysisError(
                    "analyze_delta internal error: a retained site "
                    "references a sink that no longer exists (the dirty "
                    "set should have caught this — please report)"
                )
            sink_pos[target_index] = retained_sinks
            values[target_index] = old_values[source_index]

            target_index = _segment_index(
                starts[dirty_positions], counts[dirty_positions]
            )
            sink_pos[target_index] = fresh_sink
            values[target_index] = fresh_values
        packed = (p_sens, cone_sizes, counts, sink_pos, values)

    delta = DeltaAnalysis()
    delta.engine = new_engine
    delta.site_names = site_names
    delta.site_ids = site_ids
    delta.packed = packed
    delta.default_sites = context["defaulted"] if sites is None else False
    delta.user_sp = prev.user_sp
    delta.sp_method = prev.sp_method
    delta.sp_options = dict(prev.sp_options)
    delta.sp_map = context["sp_map"]
    delta.sp_overrides = context["sp_overrides"]
    delta.hardening = context["hardening"]
    delta.knobs = merged_knobs
    delta.stats = {
        "sites": n_sites,
        "dirty": int(len(dirty_positions)),
        "reused": int(len(clean_positions)),
        "frontier": len(context["frontier"]),
        "chain_length": prev.stats.get("chain_length", 0) + 1,
    }
    return delta
