"""Batch EPP backend: every error site analyzed in level-parallel sweeps.

The scalar engine (:mod:`repro.core.epp`) walks one cone per site and pays
Python-interpreter overhead for every gate of every cone.  This backend
flips the loop structure: per-node state becomes a ``(4, s)`` float64
matrix (``pa``, ``pā``, ``p0``, ``p1`` columns, one per active site) and
one *level-synchronized* sweep over the whole circuit propagates **all**
sites of a chunk at once:

* gates are pre-grouped by ``(level, gate code, arity)`` into rectangular
  index blocks (the :class:`BatchPlan`), so each group is a single call
  into the vectorized kernels of :mod:`repro.core.rules_vec` over a
  ``(g, k, 4, s)`` tensor;
* an on-path membership bitmask per node row tracks, per site column,
  whether the node lies on some path from that site — off-path columns
  keep the broadcast signal-probability constant ``(0, 0, 1-SP, SP)``,
  exactly as the scalar engine reads off-path fanins;
* sites are processed in chunks (``batch_size`` columns at a time) so the
  ``(n_nodes, 4, batch_size)`` state matrix stays memory-bounded on
  20k+-gate circuits, and on multi-core hosts the NumPy sweep of the next
  chunk overlaps the Python-side result packaging of the previous one;
* the sweep is *cone-aware* (``prune="auto"``, the default): a running
  union-of-cones vector marks which node rows are on-path for *any*
  column, every gate group is sliced down to those active rows before its
  kernel runs, and all levels at or below the chunk's minimum site level
  are skipped outright — so the per-level kernel calls shrink to the
  union of the chunk's fanout cones instead of the full circuit.  Since
  each retained row computes exactly what the dense sweep computed, the
  pruned sweep is bit-identical to the dense one.  ``"auto"`` also runs
  the *dense fallback*: chunks whose union-of-cones signature covers most
  sinks of a small circuit (pruning can only discover that everything is
  active) skip the bookkeeping and sweep dense;
* inside active rows the sweep is *cell-compacted* (``cells="auto"``,
  the default): on clustered chunks only a few percent of an active
  row's columns are on-path, so groups below the calibrated density
  threshold gather exactly their on-path (row, column) cells, compute
  them as one ``(m, 4)`` block through the compacted kernels of
  :func:`~repro.core.rules_vec.compact_rule_for`, and scatter the block
  back into the sentinel-padded dense state — bit-identical again, the
  kernels run the same elementwise IEEE ops per computed cell;
* pruned sweeps run on *compacted state matrices* (``rows="auto"``, the
  default): instead of the full ``(n + 2, 4, batch)`` buffer, each chunk
  allocates state/mask with only its union-of-cones rows — plus the
  fanin rows those gates read and the sentinel rows — through a cached
  per-chunk row remap (:meth:`BatchPlan.compact_chunk_plan`), so every
  gather, kernel and scatter indexes the small matrix, the off-path
  template and its dirty-row restore disappear entirely for pruned
  sweeps, and the sink reduction walks only the sinks the chunk can
  reach.  The remap is pure indexing — each computed cell runs the same
  elementwise IEEE ops — so compacted sweeps are bit-identical to
  full-row ones (``rows="full"`` restores the PR-4 layout);
* which sites share a chunk is decided by the scheduling layer
  (:mod:`repro.core.schedule`): ``schedule="cone"`` (the ``auto`` default
  for multi-chunk calls) clusters sites with overlapping fanout cones so
  each chunk's union-of-cones — the pruned sweep's cost — stays small;
  ``schedule="input"`` keeps the caller's order (the pre-scheduling
  contiguous chunking).  Chunk *widths* are cost-modelled too:
  ``chunking="adaptive"`` aligns chunk boundaries to cluster boundaries
  so disjoint cone unions never share a sweep, while the calibrated
  ``"auto"`` default keeps full-width chunks — on the measured
  workloads each extra chunk's width-independent overhead outweighs the
  smaller unions it buys.  Scheduling is a pure permutation; results
  are always returned in input order.

Results are bit-compatible with the scalar engine up to floating-point
reassociation (the per-sink survival product and per-group reductions run
in a different order); the backend-equivalence tests pin agreement to
1e-9.  Tiny workloads — where array dispatch overhead would exceed the
interpreter time it saves — are routed to the scalar per-site kernel by a
crossover guard (``min_vector_work``), mirroring how BLAS libraries pick
small-matrix kernels; pass ``min_vector_work=0`` to force the vectorized
sweep everywhere (the equivalence tests do).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import starmap

import numpy as np

from repro.errors import AnalysisError
from repro.core.fourvalue import EPPValue
from repro.core.rules_vec import compact_rule_for, gather_rule_for
from repro.core.schedule import (
    PRUNE_AUTO_MAX_NODES,
    ChunkCache,
    adaptive_chunk_spans,
    chunk_cache_key,
    chunk_prune_saturated,
    cone_cluster_order,
    resolve_prune,
    resolve_schedule,
    validate_cells,
    validate_chunking,
    validate_rows,
    validate_schedule,
)
from repro.netlist.circuit import CompiledCircuit
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
)

__all__ = [
    "BatchPlan",
    "BatchEPPBackend",
    "CompactChunkPlan",
    "default_batch_size",
]

#: Target footprint of the per-chunk state matrix (bytes).  Wide chunks
#: amortize per-group dispatch; the per-group operands (a handful of
#: ``(g, batch)`` rows) stay cache-resident regardless of this total.  The
#: backend's resident set is ~3x this figure (template + double-buffered
#: state) — bounded and explicit; pass ``batch_size`` to shrink it on
#: memory-constrained hosts.
_STATE_BYTES_TARGET = 256 << 20

#: Below this ``n_nodes * n_sites`` product the vectorized sweep cannot
#: amortize NumPy call overhead; the backend falls through to the scalar
#: kernel (same results, no array dispatch cost).
_MIN_VECTOR_WORK = 50_000

#: Per-cell cost of a compacted kernel relative to a dense one — the
#: ``cells="auto"`` threshold: a group runs compacted when
#: ``on_cells * factor < rows * columns``.  The compacted gather pays
#: fancy indexing per pin per plane where the dense kernel reads
#: contiguous planes, so a compacted cell costs a small multiple of a
#: dense cell; calibrated on the s9234/s38417 clustered workloads
#: (``benchmarks/run_bench.py``) where measured break-even sits near 1/4
#: density for the closed forms.  Truth-table kernels (MUX/MAJ) pay the
#: full ``4^k`` enumeration per cell either way, so their gather overhead
#: is proportionally smaller and compaction pays almost immediately.
_CELL_FACTOR_CLOSED = 4
_CELL_FACTOR_TABLE = 2

#: Width multiplier (halves) for ``chunking="auto"`` when every chunk is
#: guaranteed a *compacted* sweep (``rows`` resolves to compact and
#: pruning cannot fall back to dense): the PR-4 calibration pinned
#: full-width chunks because each extra chunk cost ~40-80 ms of
#: width-independent overhead, most of it the full-template dirty-row
#: restore — which compacted state matrices (and their reusable arenas)
#: eliminate outright, so the same budget buys wider chunks without the
#: full-row memory blow-up.  Measured on s9234/s38417 full-circuit runs,
#: 1.5x is the sweet spot (8-9% over full width; by 3x the growing
#: per-chunk unions overtake the saved fixed costs and clustered
#: workloads regress outright).  ``_compact_spans`` still splits any
#: span whose measured union-of-cones footprint would exceed
#: ``_STATE_BYTES_TARGET``.
_COMPACT_WIDTH_HALVES = 3  # x1.5


def default_batch_size(n_nodes: int) -> int:
    """Chunk width sized so ``n_nodes * 4 * batch * 8`` bytes stays bounded."""
    width = _STATE_BYTES_TARGET // (max(n_nodes, 1) * 32)
    return int(max(32, min(512, width)))


class _Group:
    """One rectangular gate block: same level, gate code and arity."""

    __slots__ = ("out_ids", "fanin", "rule", "compact_rule", "cell_factor")

    def __init__(self, out_ids: np.ndarray, fanin: np.ndarray, rule,
                 compact_rule, cell_factor: int):
        self.out_ids = out_ids  # (g,)
        self.fanin = fanin  # (g, k)
        self.rule = rule
        self.compact_rule = compact_rule
        self.cell_factor = cell_factor


#: Codes whose kernels have an exact neutral input, letting mixed-arity
#: gates share one group (see ``CompiledCircuit.level_gate_groups``): the
#: AND family is padded with the constant-1 sentinel, OR/XOR families with
#: constant 0.  The SP pass (:mod:`repro.probability.signal_prob`) shares
#: these sets — its kernels have the same neutral elements.
_PADDABLE_CODES = frozenset(
    (CODE_AND, CODE_NAND, CODE_OR, CODE_NOR, CODE_XOR, CODE_XNOR)
)
_PAD_ONE_CODES = frozenset((CODE_AND, CODE_NAND))

#: Codes with closed-form kernels; everything else runs the generic
#: truth-table kernel, whose per-cell cost dwarfs the compacted gather.
_CLOSED_FORM_CODES = _PADDABLE_CODES | frozenset((CODE_NOT, CODE_BUF))


class CompactChunkPlan:
    """One chunk's union-of-cones row remap (the compacted state layout).

    Built once per distinct site chunk by :meth:`BatchPlan.compact_chunk_plan`
    and cached on the plan's :class:`~repro.core.schedule.ChunkCache`: the
    compacted sweep allocates its state/mask buffers with only ``n_rows``
    rows — the chunk's union-of-cones gates, every fanin row those gates
    read (off-path fanins hold their SP constants), the site rows and any
    referenced sentinel row — and every gate-group index array is already
    translated into that compact row space, so the kernels of
    :mod:`repro.core.rules_vec` index the small matrix unchanged.  The
    remap is pure indexing: each computed cell runs exactly the ops the
    full-row sweep ran, so compacted results are bit-identical.

    Attributes
    ----------
    rows:
        Global node ids of the compact rows, ascending — ``rows[j]`` is
        the global id of compact row ``j``.
    n_rows:
        ``len(rows)`` — the compacted state matrix's row count.
    site_rows:
        Compact row index of each chunk site, aligned with the chunk.
    groups:
        ``(group, out_rows, fanin_rows)`` per active gate group in sweep
        order: the plan's :class:`_Group` (kernel dispatch) with its
        active rows' output/fanin indices translated to compact space.
    sink_rows / sink_positions:
        Compact row indices of the observable sinks present in the
        matrix, and their positions into ``BatchPlan.sink_ids`` — absent
        sinks are off-path for every column by construction, so the
        sink-pair reduction over the present subset selects exactly the
        pairs the full-row reduction selected, in the same order.
    """

    __slots__ = (
        "rows", "n_rows", "site_rows", "groups", "sink_rows", "sink_positions"
    )


class BatchPlan:
    """Level-grouped execution plan for one compiled circuit.

    Built once per :class:`~repro.netlist.circuit.CompiledCircuit` (and
    cached on it): combinational gates bucketed by gate code per level —
    mixed arities of the paddable families share a group via sentinel
    padding; truth-table gates group by exact arity — with fanin ids packed
    into rectangular index arrays, plus the sink id vector the
    sensitization product reads.  Sentinel ids: ``n`` holds constant 1,
    ``n + 1`` constant 0 (two extra rows in the backend's state matrix).
    """

    def __init__(self, compiled: CompiledCircuit):
        self.n = compiled.n
        levels: dict[int, list[_Group]] = {}
        for level, code, outs, fins, width in compiled.level_gate_groups(
            _PADDABLE_CODES, _PAD_ONE_CODES
        ):
            cell_factor = (
                _CELL_FACTOR_CLOSED if code in _CLOSED_FORM_CODES
                else _CELL_FACTOR_TABLE
            )
            levels.setdefault(level, []).append(
                _Group(
                    np.asarray(outs, dtype=np.intp),
                    np.asarray(fins, dtype=np.intp),
                    gather_rule_for(code, width),
                    compact_rule_for(code, width),
                    cell_factor,
                )
            )
        #: ``(level value, groups)`` pairs in ascending level order.  The
        #: level values let the cone-aware sweep skip every level at or
        #: below a chunk's minimum site level without touching its groups.
        self.levels: list[tuple[int, list[_Group]]] = [
            (k, levels[k]) for k in sorted(levels)
        ]
        self.node_level = np.asarray(compiled.level, dtype=np.intp)
        self.sink_ids = np.asarray(compiled.sink_ids, dtype=np.intp)
        self.sink_names = [compiled.names[s] for s in compiled.sink_ids]
        #: Per-chunk derived artifacts, shared by every backend over this
        #: circuit: compacted-row plans (key prefix ``rows:``) and the
        #: ``prune="auto"`` saturation verdicts (``sat:``).  Bounded FIFO.
        self.chunk_cache = ChunkCache()

    def compact_chunk_plan(self, site_ids: np.ndarray) -> CompactChunkPlan:
        """The (cached) compacted-row plan for one chunk of sites.

        One vectorized forward-reachability pass over the level groups —
        the same per-group ``any`` tests the full-row pruned sweep runs
        incrementally, now run once per distinct chunk and memoized:
        repeated sweeps of the same chunk (benchmark repeats, long-lived
        analyzers re-analyzing a module) skip straight to the remapped
        index arrays.  Built through ``get_or_create`` so concurrent
        sweeps of the same chunk construct exactly one plan.
        """
        key = b"rows:" + chunk_cache_key(site_ids)
        return self.chunk_cache.get_or_create(
            key, lambda: self._build_compact_chunk_plan(site_ids)
        )

    def _build_compact_chunk_plan(self, site_ids: np.ndarray) -> CompactChunkPlan:
        total = self.n + 2
        # reach: on the union of the chunk's fanout cones (what the full
        # sweep calls on_path); needed: additionally every row an active
        # group *reads* — off-path fanins supply their SP constants, so
        # they must exist in the compacted matrix too.
        reach = np.zeros(total, dtype=bool)
        reach[site_ids] = True
        needed = np.zeros(total, dtype=bool)
        needed[site_ids] = True
        min_site_level = int(self.node_level[site_ids].min())
        entries: list[tuple[_Group, np.ndarray, np.ndarray]] = []
        for level, groups in self.levels:
            if level <= min_site_level:
                continue
            for group in groups:
                active = np.nonzero(reach[group.fanin].any(axis=1))[0]
                if active.size == 0:
                    continue
                # The full sweep's 7/8 heuristic, mirrored: slicing a
                # nearly-fully-active group trades the few rows it skips
                # for fancy-indexed copies, so such groups keep their
                # full rectangular block (their inactive rows join the
                # matrix as writable SP-constant rows, exactly as the
                # full-row sweep scatters them).
                if active.size <= (len(group.out_ids) * 7) // 8:
                    out_ids = group.out_ids[active]
                    fanin = group.fanin[active]
                    reach[out_ids] = True
                else:
                    out_ids = group.out_ids
                    fanin = group.fanin
                    reach[out_ids[active]] = True
                needed[out_ids] = True
                needed[fanin] = True
                entries.append((group, out_ids, fanin))
        rows = np.nonzero(needed)[0]
        remap = np.zeros(total, dtype=np.intp)
        remap[rows] = np.arange(len(rows), dtype=np.intp)
        plan = CompactChunkPlan()
        plan.rows = rows
        plan.n_rows = len(rows)
        plan.site_rows = remap[site_ids]
        plan.groups = [
            (group, remap[out_ids], remap[fanin])
            for group, out_ids, fanin in entries
        ]
        present = needed[self.sink_ids]
        plan.sink_rows = remap[self.sink_ids[present]]
        plan.sink_positions = np.nonzero(present)[0]
        return plan

    @staticmethod
    def for_compiled(compiled: CompiledCircuit) -> "BatchPlan":
        """The cached plan for a compiled circuit (built on first use)."""
        plan = getattr(compiled, "_batch_epp_plan", None)
        if plan is None:
            plan = BatchPlan(compiled)
            compiled._batch_epp_plan = plan
        return plan


class BatchEPPBackend:
    """Vectorized many-site EPP bound to one engine's circuit and SP map.

    Parameters
    ----------
    compiled:
        The compiled circuit (shared with the scalar engine).
    signal_probs:
        Per-node P(1), indexed by node id — the same validated vector the
        scalar engine holds.
    track_polarity:
        Mirrors the engine flag; ``False`` merges ``ā`` into ``a`` after
        every gate group (the polarity-blind ablation).
    batch_size:
        Site columns per chunk; default sized by :func:`default_batch_size`.
    min_vector_work:
        Crossover threshold on ``n_nodes * n_sites`` below which chunks are
        delegated to ``scalar_fallback``; 0 forces the vectorized sweep.
    scalar_fallback:
        ``callable(site_id) -> EPPResult`` used below the crossover
        (normally ``EPPEngine.node_epp``).
    prune:
        Cone-aware sparse sweeps: slice every gate group to the rows on
        some chunk member's fanout cone and skip levels at or below the
        chunk's minimum site level.  ``None`` (the default) resolves to
        ``"auto"``: prune unless the chunk's union-of-cones signature
        predicts a saturated sweep (small circuit, most sinks covered —
        the regime where `BENCH_pr3.json` measured pruning slower than
        dense), in which case the chunk runs the dense sweep.  ``True``
        forces pruning everywhere; ``False`` restores the dense
        full-circuit sweep (the reference for the benchmarks).  All three
        are bit-identical — the knobs change *which rows compute*, never
        their values.
    schedule:
        Chunk scheduling strategy (see :mod:`repro.core.schedule`):
        ``"auto"`` (default, also ``None``) cone-clusters multi-chunk site
        lists, ``"cone"`` always clusters, ``"input"`` keeps caller order.
    cells:
        Cell-compaction mode for pruned sweeps: ``"auto"`` (default, also
        ``None``) lets the per-group cost model choose — a group whose
        on-path cell count times the kernel's calibrated cost factor is
        below its dense cell count gathers only the on-path
        (row, column) cells and computes them through the compacted
        kernels of :func:`~repro.core.rules_vec.compact_rule_for`;
        ``"on"`` forces compaction for every partially-on-path group,
        ``"off"`` keeps the PR-3 row-sparse kernels.  Bit-identical
        either way (same elementwise IEEE ops per computed cell).
    chunking:
        Chunk-width strategy: ``"adaptive"`` aligns chunk boundaries to
        cone-cluster boundaries with
        :func:`~repro.core.schedule.adaptive_chunk_spans` (disjoint
        cluster runs get their own chunks, coherent runs keep the full
        ``batch_size`` width); ``"fixed"`` is flat slicing.  ``"auto"``
        (default, also ``None``) applies the *calibrated* policy — fixed
        full-width chunks, because on the measured workloads every extra
        chunk costs more width-independent overhead (dispatch, buffer
        restore, sink reduction) than its smaller union saves once the
        cell-compacted tier caps kernel FLOPs (see :meth:`_chunk_spans`).
        When every chunk is *guaranteed* a compacted sweep (see ``rows``)
        the recalibrated ``auto`` policy widens chunks by
        :data:`_COMPACT_WIDTH_HALVES`/2 instead — the restore overhead
        that penalized chunk count is gone, and ``_compact_spans`` splits
        any span whose union-of-cones footprint would exceed the
        state-byte budget.  Pure scheduling — any span partition is bit-identical
        per site.
    rows:
        State-matrix row layout for *pruned* sweeps: ``"compact"``
        allocates per-chunk state/mask buffers with only the chunk's
        union-of-cones rows (plus read-only fanin rows and sentinels),
        indexed through the cached row remap of
        :meth:`BatchPlan.compact_chunk_plan` — no off-path template is
        materialized and no dirty-row restore ever runs for those
        sweeps.  ``"full"`` keeps the PR-4 full-circuit buffers with the
        dirty-row incremental reset.  ``"auto"`` (default, also ``None``)
        is the calibrated policy — compact for every pruned sweep.
        Dense sweeps (``prune=False`` or the saturated-chunk fallback)
        always use full-row buffers, whose union is the circuit itself.
        Bit-identical across all three: the remap only renames rows.
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        signal_probs: Sequence[float],
        track_polarity: bool = True,
        batch_size: int | None = None,
        min_vector_work: int = _MIN_VECTOR_WORK,
        scalar_fallback=None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
        rows: str | None = None,
    ):
        self.compiled = compiled
        self.plan = BatchPlan.for_compiled(compiled)
        self.sp = np.asarray(signal_probs, dtype=np.float64)
        self.track_polarity = track_polarity
        if batch_size is not None and int(batch_size) < 1:
            raise AnalysisError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = (
            int(batch_size) if batch_size is not None
            else default_batch_size(compiled.n)
        )
        self.min_vector_work = min_vector_work
        self.scalar_fallback = scalar_fallback
        self.prune = resolve_prune(prune)
        self.schedule = validate_schedule(schedule)
        self.cells = validate_cells(cells)
        self.chunking = validate_chunking(chunking)
        self.rows = validate_rows(rows)
        #: Cumulative execution counters, updated by every sweep: chunk
        #: accounting (``chunks`` / ``chunk_splits`` — extra spans the
        #: adaptive splitter emitted over fixed slicing;
        #: ``dense_fallback_sweeps`` — chunks ``prune="auto"`` ran dense;
        #: ``compact_sweeps`` / ``compact_rows`` — sweeps on compacted
        #: union-of-cones state matrices and the total compact rows they
        #: allocated, vs ``n + 2`` per full-row sweep),
        #: per-tier group counts (``groups_dense`` / ``groups_row`` /
        #: ``groups_cell``) and cell accounting over *pruned* groups
        #: (``cells_on`` on-path cells, ``cells_total`` cells spanned,
        #: ``cells_computed`` cells actually computed — the FLOP measure
        #: the benchmarks report; always ``<= cells_total``).  Dense
        #: sweeps count their cells separately in ``cells_dense`` — their
        #: on-cell count is never measured, so folding them into the
        #: pruned pair would corrupt the density ratios.
        self.sweep_stats = {
            "sweeps": 0,
            "dense_fallback_sweeps": 0,
            "compact_sweeps": 0,
            "compact_rows": 0,
            "chunks": 0,
            "chunk_splits": 0,
            "groups_dense": 0,
            "groups_row": 0,
            "groups_cell": 0,
            "cells_on": 0,
            "cells_total": 0,
            "cells_computed": 0,
            "cells_dense": 0,
        }
        self._rows = compiled.n + 2
        # The big state arrays are built lazily on the first sweep: a
        # backend whose every call crosses over to the scalar fallback
        # (small site sets on a large circuit) never pays for them.
        self._template: np.ndarray | None = None
        self._const: np.ndarray | None = None
        self._sink_names_arr = np.asarray(self.plan.sink_names, dtype=object)
        self._buffer_slots: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Flat per-slot arenas the compacted sweeps carve their
        #: (n_rows, 4, s) state and (n_rows, s) mask views from — grown to
        #: the largest chunk seen, reused across sweeps so the hot path
        #: never re-faults fresh pages.  Every compacted sweep fully
        #: seeds its state and clears its mask, so stale content between
        #: sweeps is harmless (no dirty tracking needed, by construction).
        self._compact_arenas: dict[int, list[np.ndarray]] = {}

    def _ensure_const(self) -> None:
        """The (rows, 4) per-node off-path constants — all a *compacted*
        sweep needs: its state is seeded by a broadcast of the gathered
        compact rows, never from the full-width template."""
        if self._const is not None:
            return
        # Two sentinel rows extend the node axis: constant 1 (id n) and
        # constant 0 (id n + 1), the padding inputs of mixed-arity groups.
        # Expressed as SPs, that is simply sp = 1.0 and sp = 0.0.
        sp_ext = np.concatenate((self.sp, (1.0, 0.0)))
        # Per-node off-path constants, (rows, 4): broadcast into np.where as
        # the else-branch so the sweep never gathers the previous output
        # state.
        const = np.zeros((self._rows, 4))
        const[:, 2] = 1.0 - sp_ext
        const[:, 3] = sp_ext
        self._const = const

    def _ensure_state_arrays(self) -> None:
        """Const vector plus the full-width off-path template the
        *full-row* sweeps memcpy their state from.  Backends whose every
        sweep is compacted never materialize the template at all."""
        self._ensure_const()
        if self._template is not None:
            return
        # Contiguous off-path template, memcpy'd to seed every chunk's
        # state matrix: (rows, 4, batch_size) with (0, 0, 1-SP, SP) per node.
        template = np.zeros((self._rows, 4, self.batch_size))
        template[:, 2, :] = self._const[:, 2][:, None]
        template[:, 3, :] = self._const[:, 3][:, None]
        self._template = template

    # ------------------------------------------------------------------ sweep

    def _buffers(self, s: int, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """Reusable (state, mask) buffer views, reset to the off-path
        template; ``slot`` double-buffers the pipeline so a sweep can fill
        one pair while the collector reads the other.  Narrow final chunks
        reuse a full-width buffer's prefix.

        The reset is *dirty-row incremental*: a pruned sweep can only
        write rows on its union-of-cones, and it records them in the
        slot's dirty set on completion — so instead of memcpy'ing the
        whole ``(n + 2, 4, batch_size)`` template (the dominant fixed
        cost of clustered sweeps on large circuits), the next sweep of
        the slot restores exactly the rows the previous sweep touched.
        The invariant: outside a running sweep the full-width buffer
        always equals the template with an all-``False`` mask.  Dense
        sweeps (which write every gate row) leave the dirty set as
        ``None`` — a full reset.
        """
        entry = self._buffer_slots.get(slot)
        if entry is None:
            entry = [
                np.empty((self._rows, 4, self.batch_size)),
                np.empty((self._rows, self.batch_size), dtype=bool),
                None,  # dirty rows of the last sweep (None: whole buffer)
            ]
            self._buffer_slots[slot] = entry
        state, mask, dirty = entry
        if dirty is None or dirty.size * 2 > self._rows:
            # Saturated sweeps dirty most rows; a flat memcpy beats a
            # fancy-indexed restore well before that point.
            np.copyto(state, self._template)
            mask[:] = False
        else:
            # Restore the full width of each dirty row: columns beyond the
            # previous sweep's width were never written and stay clean.
            state[dirty] = self._template[dirty]
            mask[dirty] = False
        # From here until ``_mark_dirty`` runs, the buffer's content is
        # *unknown*: the upcoming sweep writes rows of its own union as it
        # goes, and if it dies mid-flight (a raising kernel, an interrupt)
        # the previous dirty set would describe a buffer it no longer
        # matches — the next restore would skip the half-written rows and
        # compute on stale state.  Invalidate now; only a *completed*
        # sweep re-records its dirty rows.
        entry[2] = None
        return state[:, :, :s], mask[:, :s]

    def _mark_dirty(self, slot: int, dirty) -> None:
        """Record which rows the finished sweep of ``slot`` wrote."""
        entry = self._buffer_slots.get(slot)
        if entry is not None:
            entry[2] = dirty

    def _chunk_saturated(self, site_ids: np.ndarray) -> bool:
        """The ``prune="auto"`` saturation verdict, memoized per chunk.

        :func:`~repro.core.schedule.chunk_prune_saturated` walks the cone
        signatures of every site; the verdict depends only on the compiled
        circuit and the chunk, so it lives in the plan's shared chunk
        cache — repeated sweeps of the same chunk (and the whole-call
        check of :meth:`_schedule_order`) pay the walk once.
        """
        key = b"sat:" + chunk_cache_key(site_ids)
        # get_or_create, not get/put: the verdict is a plain bool (False
        # is a valid cached value), and concurrent sweeps of one chunk
        # must agree on a single walk.
        return self.plan.chunk_cache.get_or_create(
            key, lambda: chunk_prune_saturated(self.compiled, site_ids)
        )

    def _sweep(self, site_ids: np.ndarray, slot: int = 0):
        """One level-synchronized pass for a chunk of sites.

        Returns ``(state, mask, sinks)``: the four-valued state matrix,
        the on-path membership bitmask, and the sink translation of the
        layout the sweep ran on — ``None`` for full-row sweeps (state is
        ``(n + 2, 4, s)``, sinks are ``plan.sink_ids``), or the chunk
        plan's ``(sink_rows, sink_positions)`` pair for compacted sweeps
        (state is ``(n_rows, 4, s)`` over the union-of-cones remap).
        """
        stats = self.sweep_stats
        stats["sweeps"] += 1
        prune = self.prune
        if prune == "auto":
            # The bench-calibrated dense fallback: a chunk whose union of
            # cones covers most sinks of a small circuit prunes nothing
            # and pays the per-group bookkeeping anyway — run it dense.
            prune = not self._chunk_saturated(site_ids)
            if not prune:
                stats["dense_fallback_sweeps"] += 1
        if prune and self.rows != "full":
            # The calibrated rows="auto" policy is compact for every
            # pruned sweep: same active rows, same kernels, a smaller
            # matrix — and no template restore to pay next time.
            return self._sweep_compact(
                site_ids, self.plan.compact_chunk_plan(site_ids), slot
            )
        return self._sweep_full(site_ids, slot, prune)

    def _compact_buffers(
        self, n_rows: int, s: int, slot: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Carve (state, mask) views for one compacted sweep from the
        slot's reusable flat arenas (grown monotonically to the largest
        chunk), so repeated sweeps touch warm pages instead of faulting a
        fresh allocation every chunk.  The mask comes back cleared; the
        caller seeds the state in full."""
        state_need = n_rows * 4 * s
        mask_need = n_rows * s
        arenas = self._compact_arenas.get(slot)
        if arenas is None or arenas[0].size < state_need:
            grown = np.empty(
                max(state_need, arenas[0].size if arenas else 0)
            )
            grown_mask = np.empty(
                max(mask_need, arenas[1].size if arenas else 0), dtype=bool
            )
            arenas = [grown, grown_mask]
            self._compact_arenas[slot] = arenas
        state = arenas[0][:state_need].reshape(n_rows, 4, s)
        mask = arenas[1][:mask_need].reshape(n_rows, s)
        mask[:] = False
        return state, mask

    def _sweep_compact(
        self, site_ids: np.ndarray, cplan: CompactChunkPlan, slot: int = 0
    ):
        """A pruned sweep over the chunk's compacted union-of-cones matrix.

        Carves ``(n_rows, 4, s)`` state out of the slot arena and seeds it
        from the gathered off-path constants (the whole "buffer reset" —
        proportional to the compact size, with no full-width template or
        dirty tracking), then runs exactly the full-row pruned sweep's
        tier logic with every index array pre-translated to compact row
        space.  Per computed cell the kernels run the same elementwise
        IEEE ops, so the packed results are bit-identical to the full-row
        sweep's.
        """
        s = len(site_ids)
        self._ensure_const()
        const = self._const[cplan.rows]  # (n_rows, 4) off-path constants
        state, mask = self._compact_buffers(cplan.n_rows, s, slot)
        state[:] = const[:, :, None]
        cols = np.arange(s)
        site_rows = cplan.site_rows
        # The error site carries the erroneous value with certainty: 1(a).
        state[site_rows, :, cols] = (1.0, 0.0, 0.0, 0.0)
        mask[site_rows, cols] = True
        # Columns to re-inject when a group's output row is itself a site
        # in this chunk (the scatter writes SP constants over them) —
        # keyed by *compact* row, the space every group index lives in.
        site_cols: dict[int, list[int]] = {}
        for col, row in enumerate(site_rows.tolist()):
            site_cols.setdefault(row, []).append(col)

        track_polarity = self.track_polarity
        stats = self.sweep_stats
        stats["compact_sweeps"] += 1
        stats["compact_rows"] += cplan.n_rows
        cells = self.cells
        for group, out_ids, fanin in cplan.groups:
            out_mask = mask[fanin].any(axis=1)  # (r, s)
            n_on = int(out_mask.sum())
            if n_on == 0:
                continue
            stats["cells_on"] += n_on
            stats["cells_total"] += out_mask.size
            if cells != "off" and n_on < out_mask.size and (
                cells == "on" or n_on * group.cell_factor < out_mask.size
            ):
                # Cell-compacted tier, unchanged from the full-row sweep:
                # gather exactly the on-path (row, column) cells, compute
                # them as one (m, 4) block, scatter back.  Off-path cells
                # keep their seeded SP constants and a site row's own
                # column is never on-path for itself.
                on_rows, on_cols = np.nonzero(out_mask)
                cell_values = group.compact_rule(
                    state, fanin[on_rows], on_cols
                )  # (m, 4)
                if not track_polarity:
                    cell_values[:, 0] += cell_values[:, 1]
                    cell_values[:, 1] = 0.0
                node_rows = out_ids[on_rows]
                state[node_rows, :, on_cols] = cell_values
                mask[node_rows, on_cols] = True
                stats["groups_cell"] += 1
                stats["cells_computed"] += n_on
                continue
            stats["groups_row"] += 1
            stats["cells_computed"] += out_mask.size
            result = group.rule(state, fanin)  # (r, 4, s)
            if not track_polarity:
                result[:, 0, :] += result[:, 1, :]
                result[:, 1, :] = 0.0
            if out_mask.all():
                state[out_ids] = result
                mask[out_ids] = True
                continue
            if n_on * 8 < out_mask.size:
                # Targeted scatter for column-sparse groups (see the
                # full-row sweep): off-path cells already hold their SP
                # constants from the seed.
                on_rows, on_cols = np.nonzero(out_mask)
                node_rows = out_ids[on_rows]
                state[node_rows, :, on_cols] = result[on_rows, :, on_cols]
                mask[node_rows, on_cols] = True
                continue
            state[out_ids] = np.where(
                out_mask[:, None, :], result, const[out_ids][:, :, None]
            )
            mask[out_ids] = out_mask
            for row in out_ids.tolist():
                columns = site_cols.get(row)
                if columns is None:
                    continue
                # Restore the injected 1(a) the scatter just overwrote
                # (a site is never on-path for its own column).
                for col in columns:
                    state[row, 0, col] = 1.0
                    state[row, 1, col] = 0.0
                    state[row, 2, col] = 0.0
                    state[row, 3, col] = 0.0
                    mask[row, col] = True
        return state, mask, (cplan.sink_rows, cplan.sink_positions)

    def _sweep_full(self, site_ids: np.ndarray, slot: int, prune: bool):
        """The full-row sweep: ``(n + 2, 4, s)`` slot buffers, dirty-row
        restore, and — when ``prune`` — the incrementally-maintained
        union-of-cones row pruning of PR 3/4."""
        s = len(site_ids)
        self._ensure_state_arrays()
        state, mask = self._buffers(s, slot)
        cols = np.arange(s)
        # The error site carries the erroneous value with certainty: 1(a).
        state[site_ids, :, cols] = (1.0, 0.0, 0.0, 0.0)
        mask[site_ids, cols] = True
        # Columns to re-inject when a group's output node is itself a site
        # in this chunk (the scatter writes SP constants over them).
        site_cols: dict[int, list[int]] = {}
        for col, site_id in enumerate(site_ids.tolist()):
            site_cols.setdefault(site_id, []).append(col)

        track_polarity = self.track_polarity
        const = self._const
        stats = self.sweep_stats
        cells = self.cells if prune else "off"
        if prune:
            # Union-of-cones, maintained incrementally: on_path[i] is True
            # iff row i is on-path for *some* column (= mask[i].any()).  A
            # gate row can only be active when some fanin is on-path
            # somewhere, so testing the (g, k) union vector first avoids
            # gathering the full (g, k, s) mask block for rows whose
            # fanins are all-off everywhere — and since on_path is exact,
            # the surviving candidate rows are exactly the active rows.
            on_path = np.zeros(self._rows, dtype=bool)
            on_path[site_ids] = True
            # No gate at or below the chunk's minimum site level can have
            # an on-path fanin (cone members sit strictly above their
            # site's level), so those levels are skipped outright.
            min_site_level = int(self.plan.node_level[site_ids].min())
        for level, groups in self.plan.levels:
            if prune and level <= min_site_level:
                continue
            for group in groups:
                out_ids = group.out_ids
                fanin = group.fanin
                if prune:
                    active = np.nonzero(on_path[fanin].any(axis=1))[0]
                    if active.size == 0:
                        continue  # whole group off-path everywhere
                    # Slice only when it pays: a nearly-fully-active group
                    # would trade the rows it skips for two fancy-index
                    # copies, so it runs dense (on_path stays exact either
                    # way — the active set *is* out_mask.any(axis=1)).
                    if active.size <= (len(out_ids) * 7) // 8:
                        out_ids = out_ids[active]
                        fanin = fanin[active]
                        on_path[out_ids] = True
                    else:
                        on_path[out_ids[active]] = True
                    out_mask = mask[fanin].any(axis=1)  # (r, s)
                    n_on = int(out_mask.sum())
                    stats["cells_on"] += n_on
                    stats["cells_total"] += out_mask.size
                    if cells != "off" and n_on < out_mask.size and (
                        cells == "on"
                        or n_on * group.cell_factor < out_mask.size
                    ):
                        # Cell-compacted tier: even inside active rows only
                        # a few columns are on-path on clustered chunks, so
                        # gather exactly those (row, column) cells, compute
                        # them as one (m, 4) block and scatter back into the
                        # sentinel-padded dense state.  Off-path cells keep
                        # their template SP constants (each node is written
                        # at most once per sweep), and a site row's own
                        # column is never on-path, so the injected 1(a)
                        # survives untouched — the same invariants the
                        # targeted scatter below relies on.
                        on_rows, on_cols = np.nonzero(out_mask)
                        cell_values = group.compact_rule(
                            state, fanin[on_rows], on_cols
                        )  # (m, 4)
                        if not track_polarity:
                            cell_values[:, 0] += cell_values[:, 1]
                            cell_values[:, 1] = 0.0
                        node_rows = out_ids[on_rows]
                        state[node_rows, :, on_cols] = cell_values
                        mask[node_rows, on_cols] = True
                        stats["groups_cell"] += 1
                        stats["cells_computed"] += n_on
                        continue
                    stats["groups_row"] += 1
                    stats["cells_computed"] += out_mask.size
                else:
                    out_mask = mask[fanin].any(axis=1)  # (g, s)
                    if not out_mask.any():
                        continue  # whole group off-path: SP constants hold
                    stats["groups_dense"] += 1
                    # Dense sweeps get their own cell counter: folding
                    # them into cells_computed (without the on/total pair
                    # the pruned tiers track) let the computed fraction
                    # exceed 1, and counting on-cells here would put an
                    # out_mask.sum() on the dense reference path purely
                    # for bookkeeping.
                    stats["cells_dense"] += out_mask.size
                result = group.rule(state, fanin)  # (r, 4, s)
                if not track_polarity:
                    result[:, 0, :] += result[:, 1, :]
                    result[:, 1, :] = 0.0
                if out_mask.all():
                    # Fully on-path rows (can hold no injected site column:
                    # a site is never on-path for itself) — assign directly.
                    state[out_ids] = result
                    mask[out_ids] = True
                    continue
                if prune and n_on * 8 < out_mask.size:
                    # Targeted scatter for column-sparse groups: every
                    # off-path cell already holds its SP constant (the
                    # chunk state is seeded from the constants template and
                    # each node is written at most once per sweep), so only
                    # the on-path cells need a write.  This also never
                    # touches a site row's own column — no 1(a)
                    # re-injection required.  Column-dense groups fall
                    # through to the row-vectorized ``np.where`` scatter,
                    # which beats per-element fancy indexing there.
                    on_rows, on_cols = np.nonzero(out_mask)
                    node_rows = out_ids[on_rows]
                    state[node_rows, :, on_cols] = result[on_rows, :, on_cols]
                    mask[node_rows, on_cols] = True
                    continue
                # Off-path columns take their broadcast SP constant — cheaper
                # than gathering the previous output state back out.
                state[out_ids] = np.where(
                    out_mask[:, None, :], result, const[out_ids][:, :, None]
                )
                mask[out_ids] = out_mask
                for node_id in out_ids.tolist():
                    columns = site_cols.get(node_id)
                    if columns is None:
                        continue
                    # Restore the injected 1(a) the scatter just overwrote
                    # (a site is never on-path for its own column).
                    for col in columns:
                        state[node_id, 0, col] = 1.0
                        state[node_id, 1, col] = 0.0
                        state[node_id, 2, col] = 0.0
                        state[node_id, 3, col] = 0.0
                        mask[node_id, col] = True
        # Hand the slot its dirty-row set: a pruned sweep writes only
        # rows on its union-of-cones (on_path is exact), so the next
        # sweep of this slot restores just those rows instead of the
        # whole template.  Dense sweeps may write any gate row — full
        # reset.
        self._mark_dirty(slot, np.nonzero(on_path)[0] if prune else None)
        return state, mask, None

    def release_buffers(self) -> None:
        """Free the chunk-width state matrices (template, constants, and
        the double-buffered sweep/mask pairs) — the backend's ~3x
        ``_STATE_BYTES_TARGET`` resident set — plus the plan's cached
        per-chunk artifacts (compacted-row remaps, saturation verdicts).
        Clearing the slots also drops every recorded dirty-row set with
        them: a freshly allocated slot always starts from a full template
        reset, never from a stale dirty entry describing buffers that no
        longer exist.  Everything is rebuilt lazily on the next sweep, so
        this is always safe to call between analyses on long-lived
        engines/analyzers."""
        self._template = None
        self._const = None
        self._buffer_slots.clear()
        self._compact_arenas.clear()
        self.plan.chunk_cache.clear()

    # ------------------------------------------------------------- scheduling

    def _schedule_order(self, ids: np.ndarray):
        """The sweep permutation for one call, or ``None`` for input order.

        Resolves the backend's ``schedule`` knob against this call's site
        count (``auto`` clusters only multi-chunk calls) and returns
        ``order`` with ``order[j]`` = input position of the ``j``-th site
        to sweep.  Scheduling cannot change any per-site result — every
        column is computed independently — so callers restore input order
        after the sweep.
        """
        if len(ids) < 2:
            return None
        strategy = resolve_schedule(self.schedule, len(ids), self.batch_size)
        if strategy != "cone":
            return None
        if (
            self.schedule == "auto"
            and self.prune == "auto"
            and self._chunk_saturated(ids)
        ):
            # The whole call saturates a small circuit: every chunk will
            # take the dense fallback regardless of which sites share it,
            # so the cluster sort (and the packed-result reorder it
            # forces) is pure overhead — exactly the s953/s1423
            # regression BENCH_pr3.json measured.  Explicit
            # schedule="cone" or prune=True still cluster.
            return None
        return cone_cluster_order(self.compiled, ids)

    def _chunk_spans(self, ids: np.ndarray) -> list[tuple[int, int]]:
        """The ``(start, stop)`` spans one bulk call sweeps, in order.

        ``chunking="adaptive"`` runs the boundary-aligned splitter of
        :func:`~repro.core.schedule.adaptive_chunk_spans` (chunks close
        at cluster boundaries once past half width, so disjoint cone
        clusters never share a sweep; with an unclustered order it simply
        inherits whatever locality the caller's order has); ``"fixed"``
        is flat ``batch_size`` slicing.  The calibrated ``"auto"`` policy
        is *fixed*: measured on the s9234/s38417 workloads
        (``benchmarks/run_bench.py``), every extra chunk costs ~40-80 ms
        of width-independent overhead — group dispatch, the dirty-row
        buffer restore (which rewrites each dirty row across the full
        buffer width regardless of the chunk's width), the per-chunk sink
        reduction — which consistently outweighs the smaller unions a
        split buys, so full-width chunks win wherever the cell-compacted
        tier already caps the kernel FLOPs at the on-path cells.
        """
        n = len(ids)
        adaptive = self.chunking == "adaptive"
        if adaptive and n > self.batch_size:
            spans = adaptive_chunk_spans(self.compiled, ids, self.batch_size)
            fixed = -(-n // self.batch_size)
            self.sweep_stats["chunk_splits"] += len(spans) - fixed
        elif (
            self.chunking == "auto"
            and n > self.batch_size
            and self._compact_guaranteed()
        ):
            spans = self._compact_spans(ids)
        else:
            spans = [
                (start, min(start + self.batch_size, n))
                for start in range(0, n, self.batch_size)
            ]
        self.sweep_stats["chunks"] += len(spans)
        return spans

    def _compact_guaranteed(self) -> bool:
        """Whether *every* chunk of this backend is certain to sweep on a
        compacted state matrix — the precondition for the recalibrated
        wide-chunk ``auto`` policy.  ``prune="auto"`` qualifies only on
        circuits at or above :data:`~repro.core.schedule.PRUNE_AUTO_MAX_NODES`,
        where the saturated dense fallback (which needs full-width
        full-row buffers) can never fire."""
        if self.rows == "full":
            return False
        if self.prune is True:
            return True
        return (
            self.prune == "auto"
            and self.compiled.n >= PRUNE_AUTO_MAX_NODES
        )

    def _compact_spans(self, ids: np.ndarray) -> list[tuple[int, int]]:
        """Wide fixed spans for guaranteed-compacted sweeps.

        The PR-4 calibration kept chunks at ``batch_size`` because each
        extra chunk paid a width-independent restore of the full
        ``(n + 2, 4, batch)`` template; compacted sweeps pay a seed
        proportional to their own union instead, so the same state-byte
        budget buys :data:`_COMPACT_WIDTH_HALVES`/2 wider chunks — fewer
        per-call fixed costs (dispatch, sink reductions, pack merges).
        Each candidate span's *measured* union-of-cones footprint (its
        cached chunk plan's ``n_rows``) is checked against
        ``_STATE_BYTES_TARGET`` and the span is halved — never below
        ``batch_size`` — until it fits, so a wide chunk whose cones
        saturate the circuit cannot blow the memory bound the dense
        layout respected.
        """
        n = len(ids)
        target = min(n, (self.batch_size * _COMPACT_WIDTH_HALVES) // 2)
        spans: list[tuple[int, int]] = []
        start = 0
        while start < n:
            stop = min(start + target, n)
            while stop - start > self.batch_size:
                span_ids = ids[start:stop]
                cplan = self.plan.compact_chunk_plan(span_ids)
                if cplan.n_rows * 32 * (stop - start) <= _STATE_BYTES_TARGET:
                    break
                # A rejected candidate will never be swept: evict its plan
                # so dead oversized remaps don't crowd live per-chunk
                # plans out of the FIFO cache.
                self.plan.chunk_cache.discard(
                    b"rows:" + chunk_cache_key(span_ids)
                )
                stop = start + max(self.batch_size, (stop - start) // 2)
            spans.append((start, stop))
            start = stop
        return spans

    def _swept_chunks(self, ids: np.ndarray):
        """Yield ``(chunk, state, mask, sinks)`` per chunk of ``ids``,
        pipelined.

        The shared chunking driver of every bulk query: two-stage pipeline
        where the NumPy sweep of chunk ``i+1`` (GIL released inside the
        array kernels) overlaps the Python-side consumption of chunk
        ``i``; double buffering keeps full-row stages on disjoint slot
        matrices (compacted sweeps allocate fresh per-chunk state, so they
        never share buffers to begin with).  Single-chunk calls skip the
        thread machinery.  ``sinks`` is the sweep's sink translation —
        ``None`` for full-row layouts (see :meth:`_sweep`).
        """
        chunks = [ids[start:stop] for start, stop in self._chunk_spans(ids)]
        if not chunks:
            return
        if len(chunks) == 1:
            state, mask, sinks = self._sweep(chunks[0])
            yield chunks[0], state, mask, sinks
            return
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as sweeper:
            future = sweeper.submit(self._sweep, chunks[0], 0)
            for index, chunk in enumerate(chunks):
                state, mask, sinks = future.result()
                if index + 1 < len(chunks):
                    future = sweeper.submit(
                        self._sweep, chunks[index + 1], (index + 1) % 2
                    )
                yield chunk, state, mask, sinks

    # ---------------------------------------------------------------- queries

    def p_sensitized_many(self, site_ids: Sequence[int]) -> np.ndarray:
        """``P_sensitized`` for many sites, aligned with ``site_ids``.

        Shares the full bulk path with :meth:`analyze_sites`: the scalar
        crossover guard, the double-buffered sweep pipeline, the chunk
        scheduler, and — through :meth:`_select_pairs` — the exact
        reduction and clamping policy of the packed path, so the two
        queries can never drift numerically.
        """
        ids = np.asarray(site_ids, dtype=np.intp)
        out = np.empty(len(ids))
        if (
            self.scalar_fallback is not None
            and self.compiled.n * len(ids) < self.min_vector_work
        ):
            for position, site_id in enumerate(ids.tolist()):
                out[position] = self.scalar_fallback(site_id).p_sensitized
            return out
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        cursor = 0
        for chunk, state, mask, sinks in self._swept_chunks(sweep_ids):
            p_sens = self._select_pairs(chunk, state, mask, sinks)[0]
            if order is None:
                out[cursor : cursor + len(chunk)] = p_sens
            else:
                out[order[cursor : cursor + len(chunk)]] = p_sens
            cursor += len(chunk)
        return out

    def analyze_sites(self, site_ids: Sequence[int]):
        """Full per-site results (sink vectors included) for many sites.

        Returns ``{site_name: EPPResult}`` in input order, matching
        ``EPPEngine.node_epp`` per site to floating-point reassociation.
        """
        from repro.core.epp import EPPResult

        site_ids = list(site_ids)
        results: dict[str, EPPResult] = {}
        use_scalar = (
            self.scalar_fallback is not None
            and self.compiled.n * len(site_ids) < self.min_vector_work
        )
        if use_scalar:
            for site_id in site_ids:
                result = self.scalar_fallback(site_id)
                results[result.site] = result
            return results
        ids = np.asarray(site_ids, dtype=np.intp)
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        for chunk, state, mask, sinks in self._swept_chunks(sweep_ids):
            self._collect(chunk, state, mask, sinks, results)
        if order is not None:
            names = self.compiled.names
            results = {
                names[site_id]: results[names[site_id]] for site_id in site_ids
            }
        return results

    def _collect(self, chunk, state, mask, sinks, results) -> None:
        """Assemble per-site EPPResults from one chunk's sweep."""
        self.materialize(
            chunk.tolist(), self._pack(chunk, state, mask, sinks), results
        )

    def _select_pairs(self, chunk, state, mask, sinks=None) -> tuple:
        """The shared sink-pair reduction of one chunk's sweep.

        All numeric work happens in bulk: the on-path (site, sink) pairs
        are selected with one boolean pick, clamped with one
        ``np.maximum`` (``EPPValue.clamped`` in bulk), the per-pair error
        masses capped at 1, and the per-site survival products run through
        ``multiply.reduceat``.  This is the single reduction/clamping
        policy behind both :meth:`p_sensitized_many` and :meth:`_pack`.
        ``sinks`` carries a compacted sweep's ``(sink_rows,
        sink_positions)`` translation: reducing over the present subset
        selects the same pairs in the same order — absent sinks are
        off-path in every column — so the products stay bit-identical.
        Returns ``(p_sens, counts, sink_mask, selected)``.
        """
        sink_rows = self.plan.sink_ids if sinks is None else sinks[0]
        sink_state = state[sink_rows]  # (ns, 4, s)
        sink_mask = mask[sink_rows].T  # (s, ns)
        # Site-major selection of every on-path (site, sink) pair: the
        # boolean pick over (s, ns, ...) walks sites first, sinks second.
        selected = sink_state.transpose(2, 0, 1)[sink_mask]  # (m, 4)
        np.maximum(selected, 0.0, out=selected)
        # P_sensitized = 1 - prod(1 - (pa + pā)) over each site's own pairs.
        error = np.minimum(selected[:, 0] + selected[:, 1], 1.0)
        counts = sink_mask.sum(axis=1)  # pairs per site
        p_sens = np.zeros(len(chunk))
        occupied = counts > 0
        if occupied.any():
            # Segment starts for the non-empty sites only: consecutive starts
            # then delimit exactly each site's own pairs (empty sites add no
            # elements), so reduceat never sees a degenerate slice.
            starts = (np.cumsum(counts) - counts)[occupied]
            p_sens[occupied] = 1.0 - np.multiply.reduceat(1.0 - error, starts)
        return p_sens, counts, sink_mask, selected

    def _pack(self, chunk, state, mask, sinks=None) -> tuple:
        """Reduce one chunk's sweep to compact per-site numeric arrays.

        Returns ``(p_sens, cone_sizes, counts, sink_pos, values)`` aligned
        with the chunk: ``counts[i]`` on-path pairs per site, ``sink_pos``
        indices into ``plan.sink_ids`` and ``values`` their clamped ``(m, 4)``
        four-valued vectors.  A compacted sweep's ``sink_pos`` is mapped
        back through its ``sink_positions`` translation, so the packed
        layout is identical whichever row layout swept the chunk.  This
        tuple of plain arrays is also the wire format the sharded driver
        (:mod:`repro.core.epp_shard`) ships across the process boundary —
        flat buffers, no per-object overhead.
        """
        p_sens, counts, sink_mask, selected = self._select_pairs(
            chunk, state, mask, sinks
        )
        sink_pos = np.nonzero(sink_mask)[1]
        if sinks is not None:
            sink_pos = sinks[1][sink_pos]
        cone_sizes = mask.sum(axis=0) - 1  # mask includes the site
        return p_sens, cone_sizes, counts, sink_pos, selected

    @staticmethod
    def _reorder_packed(packed: tuple, inverse: np.ndarray) -> tuple:
        """Permute a packed tuple from sweep order back to input order.

        ``inverse[i]`` is the sweep position of input site ``i``.  The
        per-site arrays gather directly; the variable-length sink-pair
        segments (``sink_pos``/``values``) are gathered via a repeat-built
        index so the whole reorder stays vectorized.
        """
        p_sens, cone_sizes, counts, sink_pos, values = packed
        starts = np.cumsum(counts) - counts
        new_counts = counts[inverse]
        total = int(new_counts.sum())
        if total:
            heads = np.repeat(starts[inverse], new_counts)
            prefix = np.cumsum(new_counts) - new_counts
            within = np.arange(total) - np.repeat(prefix, new_counts)
            segment_index = heads + within
            sink_pos = sink_pos[segment_index]
            values = values[segment_index]
        return p_sens[inverse], cone_sizes[inverse], new_counts, sink_pos, values

    def pack_sites(self, site_ids: Sequence[int]) -> tuple:
        """Compact numeric results for many sites (chunks concatenated).

        The sharded driver's per-worker entry point: sweeps the sites
        chunk by chunk — through the same scheduler as the other bulk
        queries — and returns one concatenated ``_pack`` tuple aligned
        with ``site_ids`` input order, ready to cross the process
        boundary and be materialized by the parent.
        """
        ids = np.asarray(site_ids, dtype=np.intp)
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        parts = [
            self._pack(chunk, state, mask, sinks)
            for chunk, state, mask, sinks in self._swept_chunks(sweep_ids)
        ]
        if not parts:
            empty = np.zeros(0)
            return empty, empty.astype(np.intp), empty.astype(np.intp), \
                empty.astype(np.intp), np.zeros((0, 4))
        if len(parts) == 1:
            packed = parts[0]
        else:
            packed = (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
                np.concatenate([p[3] for p in parts]),
                np.concatenate([p[4] for p in parts]),
            )
        if order is not None:
            inverse = np.empty(len(order), dtype=np.intp)
            inverse[order] = np.arange(len(order), dtype=np.intp)
            packed = self._reorder_packed(packed, inverse)
        return packed

    def materialize(self, site_ids: Sequence[int], packed: tuple, results) -> None:
        """Build per-site EPPResults from a ``_pack``/``pack_sites`` tuple.

        The per-sink ``EPPValue`` dicts are *deferred*: each result holds a
        slice descriptor into the packed arrays and builds its dict on
        first ``sink_values`` access (full-circuit analyses carry millions
        of (site, sink) pairs, and the dominant consumers read only
        ``p_sensitized``).  The packed arrays stay alive exactly as long
        as some un-materialized result references them.  ``results`` is
        updated in ``site_ids`` order.
        """
        from repro.core.epp import EPPResult

        names = self.compiled.names
        sink_names_arr = self._sink_names_arr
        p_sens, cone_sizes, counts, sink_pos, values = packed
        stops = np.cumsum(counts)
        starts = (stops - counts).tolist()
        stops = stops.tolist()
        p_sens = p_sens.tolist()
        cone_sizes = cone_sizes.tolist()

        def sink_source(start, stop):
            def build():
                return dict(
                    zip(
                        sink_names_arr[sink_pos[start:stop]].tolist(),
                        starmap(
                            EPPValue._unchecked, values[start:stop].tolist()
                        ),
                    )
                )

            return build

        for column, site_id in enumerate(site_ids):
            site_name = names[site_id]
            results[site_name] = EPPResult.deferred(
                site_name,
                p_sens[column],
                cone_sizes[column],
                sink_source(starts[column], stops[column]),
            )
