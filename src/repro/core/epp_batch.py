"""Batch EPP backend: every error site analyzed in level-parallel sweeps.

The scalar engine (:mod:`repro.core.epp`) walks one cone per site and pays
Python-interpreter overhead for every gate of every cone.  This backend
flips the loop structure: per-node state becomes a ``(4, s)`` float64
matrix (``pa``, ``pā``, ``p0``, ``p1`` columns, one per active site) and
one *level-synchronized* sweep over the whole circuit propagates **all**
sites of a chunk at once:

* gates are pre-grouped by ``(level, gate code, arity)`` into rectangular
  index blocks (the :class:`BatchPlan`), so each group is a single call
  into the vectorized kernels of :mod:`repro.core.rules_vec` over a
  ``(g, k, 4, s)`` tensor;
* an on-path membership bitmask per node row tracks, per site column,
  whether the node lies on some path from that site — off-path columns
  keep the broadcast signal-probability constant ``(0, 0, 1-SP, SP)``,
  exactly as the scalar engine reads off-path fanins;
* sites are processed in chunks (``batch_size`` columns at a time) so the
  ``(n_nodes, 4, batch_size)`` state matrix stays memory-bounded on
  20k+-gate circuits, and on multi-core hosts the NumPy sweep of the next
  chunk overlaps the Python-side result packaging of the previous one;
* the sweep is *cone-aware* (``prune="auto"``, the default): a running
  union-of-cones vector marks which node rows are on-path for *any*
  column, every gate group is sliced down to those active rows before its
  kernel runs, and all levels at or below the chunk's minimum site level
  are skipped outright — so the per-level kernel calls shrink to the
  union of the chunk's fanout cones instead of the full circuit.  Since
  each retained row computes exactly what the dense sweep computed, the
  pruned sweep is bit-identical to the dense one.  ``"auto"`` also runs
  the *dense fallback*: chunks whose union-of-cones signature covers most
  sinks of a small circuit (pruning can only discover that everything is
  active) skip the bookkeeping and sweep dense;
* inside active rows the sweep is *cell-compacted* (``cells="auto"``,
  the default): on clustered chunks only a few percent of an active
  row's columns are on-path, so groups below the calibrated density
  threshold gather exactly their on-path (row, column) cells, compute
  them as one ``(m, 4)`` block through the compacted kernels of
  :func:`~repro.core.rules_vec.compact_rule_for`, and scatter the block
  back into the sentinel-padded dense state — bit-identical again, the
  kernels run the same elementwise IEEE ops per computed cell;
* which sites share a chunk is decided by the scheduling layer
  (:mod:`repro.core.schedule`): ``schedule="cone"`` (the ``auto`` default
  for multi-chunk calls) clusters sites with overlapping fanout cones so
  each chunk's union-of-cones — the pruned sweep's cost — stays small;
  ``schedule="input"`` keeps the caller's order (the pre-scheduling
  contiguous chunking).  Chunk *widths* are cost-modelled too:
  ``chunking="adaptive"`` aligns chunk boundaries to cluster boundaries
  so disjoint cone unions never share a sweep, while the calibrated
  ``"auto"`` default keeps full-width chunks — on the measured
  workloads each extra chunk's width-independent overhead outweighs the
  smaller unions it buys.  Scheduling is a pure permutation; results
  are always returned in input order.

Results are bit-compatible with the scalar engine up to floating-point
reassociation (the per-sink survival product and per-group reductions run
in a different order); the backend-equivalence tests pin agreement to
1e-9.  Tiny workloads — where array dispatch overhead would exceed the
interpreter time it saves — are routed to the scalar per-site kernel by a
crossover guard (``min_vector_work``), mirroring how BLAS libraries pick
small-matrix kernels; pass ``min_vector_work=0`` to force the vectorized
sweep everywhere (the equivalence tests do).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import starmap

import numpy as np

from repro.errors import AnalysisError
from repro.core.fourvalue import EPPValue
from repro.core.rules_vec import compact_rule_for, gather_rule_for
from repro.core.schedule import (
    adaptive_chunk_spans,
    chunk_prune_saturated,
    cone_cluster_order,
    resolve_prune,
    resolve_schedule,
    validate_cells,
    validate_chunking,
    validate_schedule,
)
from repro.netlist.circuit import CompiledCircuit
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
)

__all__ = ["BatchPlan", "BatchEPPBackend", "default_batch_size"]

#: Target footprint of the per-chunk state matrix (bytes).  Wide chunks
#: amortize per-group dispatch; the per-group operands (a handful of
#: ``(g, batch)`` rows) stay cache-resident regardless of this total.  The
#: backend's resident set is ~3x this figure (template + double-buffered
#: state) — bounded and explicit; pass ``batch_size`` to shrink it on
#: memory-constrained hosts.
_STATE_BYTES_TARGET = 256 << 20

#: Below this ``n_nodes * n_sites`` product the vectorized sweep cannot
#: amortize NumPy call overhead; the backend falls through to the scalar
#: kernel (same results, no array dispatch cost).
_MIN_VECTOR_WORK = 50_000

#: Per-cell cost of a compacted kernel relative to a dense one — the
#: ``cells="auto"`` threshold: a group runs compacted when
#: ``on_cells * factor < rows * columns``.  The compacted gather pays
#: fancy indexing per pin per plane where the dense kernel reads
#: contiguous planes, so a compacted cell costs a small multiple of a
#: dense cell; calibrated on the s9234/s38417 clustered workloads
#: (``benchmarks/run_bench.py``) where measured break-even sits near 1/4
#: density for the closed forms.  Truth-table kernels (MUX/MAJ) pay the
#: full ``4^k`` enumeration per cell either way, so their gather overhead
#: is proportionally smaller and compaction pays almost immediately.
_CELL_FACTOR_CLOSED = 4
_CELL_FACTOR_TABLE = 2


def default_batch_size(n_nodes: int) -> int:
    """Chunk width sized so ``n_nodes * 4 * batch * 8`` bytes stays bounded."""
    width = _STATE_BYTES_TARGET // (max(n_nodes, 1) * 32)
    return int(max(32, min(512, width)))


class _Group:
    """One rectangular gate block: same level, gate code and arity."""

    __slots__ = ("out_ids", "fanin", "rule", "compact_rule", "cell_factor")

    def __init__(self, out_ids: np.ndarray, fanin: np.ndarray, rule,
                 compact_rule, cell_factor: int):
        self.out_ids = out_ids  # (g,)
        self.fanin = fanin  # (g, k)
        self.rule = rule
        self.compact_rule = compact_rule
        self.cell_factor = cell_factor


#: Codes whose kernels have an exact neutral input, letting mixed-arity
#: gates share one group (see ``CompiledCircuit.level_gate_groups``): the
#: AND family is padded with the constant-1 sentinel, OR/XOR families with
#: constant 0.  The SP pass (:mod:`repro.probability.signal_prob`) shares
#: these sets — its kernels have the same neutral elements.
_PADDABLE_CODES = frozenset(
    (CODE_AND, CODE_NAND, CODE_OR, CODE_NOR, CODE_XOR, CODE_XNOR)
)
_PAD_ONE_CODES = frozenset((CODE_AND, CODE_NAND))

#: Codes with closed-form kernels; everything else runs the generic
#: truth-table kernel, whose per-cell cost dwarfs the compacted gather.
_CLOSED_FORM_CODES = _PADDABLE_CODES | frozenset((CODE_NOT, CODE_BUF))


class BatchPlan:
    """Level-grouped execution plan for one compiled circuit.

    Built once per :class:`~repro.netlist.circuit.CompiledCircuit` (and
    cached on it): combinational gates bucketed by gate code per level —
    mixed arities of the paddable families share a group via sentinel
    padding; truth-table gates group by exact arity — with fanin ids packed
    into rectangular index arrays, plus the sink id vector the
    sensitization product reads.  Sentinel ids: ``n`` holds constant 1,
    ``n + 1`` constant 0 (two extra rows in the backend's state matrix).
    """

    def __init__(self, compiled: CompiledCircuit):
        self.n = compiled.n
        levels: dict[int, list[_Group]] = {}
        for level, code, outs, fins, width in compiled.level_gate_groups(
            _PADDABLE_CODES, _PAD_ONE_CODES
        ):
            cell_factor = (
                _CELL_FACTOR_CLOSED if code in _CLOSED_FORM_CODES
                else _CELL_FACTOR_TABLE
            )
            levels.setdefault(level, []).append(
                _Group(
                    np.asarray(outs, dtype=np.intp),
                    np.asarray(fins, dtype=np.intp),
                    gather_rule_for(code, width),
                    compact_rule_for(code, width),
                    cell_factor,
                )
            )
        #: ``(level value, groups)`` pairs in ascending level order.  The
        #: level values let the cone-aware sweep skip every level at or
        #: below a chunk's minimum site level without touching its groups.
        self.levels: list[tuple[int, list[_Group]]] = [
            (k, levels[k]) for k in sorted(levels)
        ]
        self.node_level = np.asarray(compiled.level, dtype=np.intp)
        self.sink_ids = np.asarray(compiled.sink_ids, dtype=np.intp)
        self.sink_names = [compiled.names[s] for s in compiled.sink_ids]

    @staticmethod
    def for_compiled(compiled: CompiledCircuit) -> "BatchPlan":
        """The cached plan for a compiled circuit (built on first use)."""
        plan = getattr(compiled, "_batch_epp_plan", None)
        if plan is None:
            plan = BatchPlan(compiled)
            compiled._batch_epp_plan = plan
        return plan


class BatchEPPBackend:
    """Vectorized many-site EPP bound to one engine's circuit and SP map.

    Parameters
    ----------
    compiled:
        The compiled circuit (shared with the scalar engine).
    signal_probs:
        Per-node P(1), indexed by node id — the same validated vector the
        scalar engine holds.
    track_polarity:
        Mirrors the engine flag; ``False`` merges ``ā`` into ``a`` after
        every gate group (the polarity-blind ablation).
    batch_size:
        Site columns per chunk; default sized by :func:`default_batch_size`.
    min_vector_work:
        Crossover threshold on ``n_nodes * n_sites`` below which chunks are
        delegated to ``scalar_fallback``; 0 forces the vectorized sweep.
    scalar_fallback:
        ``callable(site_id) -> EPPResult`` used below the crossover
        (normally ``EPPEngine.node_epp``).
    prune:
        Cone-aware sparse sweeps: slice every gate group to the rows on
        some chunk member's fanout cone and skip levels at or below the
        chunk's minimum site level.  ``None`` (the default) resolves to
        ``"auto"``: prune unless the chunk's union-of-cones signature
        predicts a saturated sweep (small circuit, most sinks covered —
        the regime where `BENCH_pr3.json` measured pruning slower than
        dense), in which case the chunk runs the dense sweep.  ``True``
        forces pruning everywhere; ``False`` restores the dense
        full-circuit sweep (the reference for the benchmarks).  All three
        are bit-identical — the knobs change *which rows compute*, never
        their values.
    schedule:
        Chunk scheduling strategy (see :mod:`repro.core.schedule`):
        ``"auto"`` (default, also ``None``) cone-clusters multi-chunk site
        lists, ``"cone"`` always clusters, ``"input"`` keeps caller order.
    cells:
        Cell-compaction mode for pruned sweeps: ``"auto"`` (default, also
        ``None``) lets the per-group cost model choose — a group whose
        on-path cell count times the kernel's calibrated cost factor is
        below its dense cell count gathers only the on-path
        (row, column) cells and computes them through the compacted
        kernels of :func:`~repro.core.rules_vec.compact_rule_for`;
        ``"on"`` forces compaction for every partially-on-path group,
        ``"off"`` keeps the PR-3 row-sparse kernels.  Bit-identical
        either way (same elementwise IEEE ops per computed cell).
    chunking:
        Chunk-width strategy: ``"adaptive"`` aligns chunk boundaries to
        cone-cluster boundaries with
        :func:`~repro.core.schedule.adaptive_chunk_spans` (disjoint
        cluster runs get their own chunks, coherent runs keep the full
        ``batch_size`` width); ``"fixed"`` is flat slicing.  ``"auto"``
        (default, also ``None``) applies the *calibrated* policy — fixed
        full-width chunks, because on the measured workloads every extra
        chunk costs more width-independent overhead (dispatch, buffer
        restore, sink reduction) than its smaller union saves once the
        cell-compacted tier caps kernel FLOPs (see :meth:`_chunk_spans`).
        Pure scheduling — any span partition is bit-identical per site.
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        signal_probs: Sequence[float],
        track_polarity: bool = True,
        batch_size: int | None = None,
        min_vector_work: int = _MIN_VECTOR_WORK,
        scalar_fallback=None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
    ):
        self.compiled = compiled
        self.plan = BatchPlan.for_compiled(compiled)
        self.sp = np.asarray(signal_probs, dtype=np.float64)
        self.track_polarity = track_polarity
        if batch_size is not None and int(batch_size) < 1:
            raise AnalysisError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = (
            int(batch_size) if batch_size is not None
            else default_batch_size(compiled.n)
        )
        self.min_vector_work = min_vector_work
        self.scalar_fallback = scalar_fallback
        self.prune = resolve_prune(prune)
        self.schedule = validate_schedule(schedule)
        self.cells = validate_cells(cells)
        self.chunking = validate_chunking(chunking)
        #: Cumulative execution counters, updated by every sweep: chunk
        #: accounting (``chunks`` / ``chunk_splits`` — extra spans the
        #: adaptive splitter emitted over fixed slicing;
        #: ``dense_fallback_sweeps`` — chunks ``prune="auto"`` ran dense),
        #: per-tier group counts (``groups_dense`` / ``groups_row`` /
        #: ``groups_cell``) and cell accounting over *pruned* groups
        #: (``cells_on`` on-path cells, ``cells_total`` cells spanned,
        #: ``cells_computed`` cells actually computed — the FLOP measure
        #: the benchmarks report; always ``<= cells_total``).  Dense
        #: sweeps count their cells separately in ``cells_dense`` — their
        #: on-cell count is never measured, so folding them into the
        #: pruned pair would corrupt the density ratios.
        self.sweep_stats = {
            "sweeps": 0,
            "dense_fallback_sweeps": 0,
            "chunks": 0,
            "chunk_splits": 0,
            "groups_dense": 0,
            "groups_row": 0,
            "groups_cell": 0,
            "cells_on": 0,
            "cells_total": 0,
            "cells_computed": 0,
            "cells_dense": 0,
        }
        self._rows = compiled.n + 2
        # The big state arrays are built lazily on the first sweep: a
        # backend whose every call crosses over to the scalar fallback
        # (small site sets on a large circuit) never pays for them.
        self._template: np.ndarray | None = None
        self._const: np.ndarray | None = None
        self._sink_names_arr = np.asarray(self.plan.sink_names, dtype=object)
        self._buffer_slots: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _ensure_state_arrays(self) -> None:
        if self._template is not None:
            return
        # Two sentinel rows extend the node axis: constant 1 (id n) and
        # constant 0 (id n + 1), the padding inputs of mixed-arity groups.
        # Expressed as SPs, that is simply sp = 1.0 and sp = 0.0.
        sp_ext = np.concatenate((self.sp, (1.0, 0.0)))
        # Contiguous off-path template, memcpy'd to seed every chunk's
        # state matrix: (rows, 4, batch_size) with (0, 0, 1-SP, SP) per node.
        template = np.zeros((self._rows, 4, self.batch_size))
        template[:, 2, :] = (1.0 - sp_ext)[:, None]
        template[:, 3, :] = sp_ext[:, None]
        self._template = template
        # Per-node off-path constants, (rows, 4): broadcast into np.where as
        # the else-branch so the sweep never gathers the previous output
        # state.
        const = np.zeros((self._rows, 4))
        const[:, 2] = 1.0 - sp_ext
        const[:, 3] = sp_ext
        self._const = const

    # ------------------------------------------------------------------ sweep

    def _buffers(self, s: int, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """Reusable (state, mask) buffer views, reset to the off-path
        template; ``slot`` double-buffers the pipeline so a sweep can fill
        one pair while the collector reads the other.  Narrow final chunks
        reuse a full-width buffer's prefix.

        The reset is *dirty-row incremental*: a pruned sweep can only
        write rows on its union-of-cones, and it records them in the
        slot's dirty set on completion — so instead of memcpy'ing the
        whole ``(n + 2, 4, batch_size)`` template (the dominant fixed
        cost of clustered sweeps on large circuits), the next sweep of
        the slot restores exactly the rows the previous sweep touched.
        The invariant: outside a running sweep the full-width buffer
        always equals the template with an all-``False`` mask.  Dense
        sweeps (which write every gate row) leave the dirty set as
        ``None`` — a full reset.
        """
        entry = self._buffer_slots.get(slot)
        if entry is None:
            entry = [
                np.empty((self._rows, 4, self.batch_size)),
                np.empty((self._rows, self.batch_size), dtype=bool),
                None,  # dirty rows of the last sweep (None: whole buffer)
            ]
            self._buffer_slots[slot] = entry
        state, mask, dirty = entry
        if dirty is None or dirty.size * 2 > self._rows:
            # Saturated sweeps dirty most rows; a flat memcpy beats a
            # fancy-indexed restore well before that point.
            np.copyto(state, self._template)
            mask[:] = False
        else:
            # Restore the full width of each dirty row: columns beyond the
            # previous sweep's width were never written and stay clean.
            state[dirty] = self._template[dirty]
            mask[dirty] = False
        return state[:, :, :s], mask[:, :s]

    def _mark_dirty(self, slot: int, dirty) -> None:
        """Record which rows the finished sweep of ``slot`` wrote."""
        entry = self._buffer_slots.get(slot)
        if entry is not None:
            entry[2] = dirty

    def _sweep(self, site_ids: np.ndarray, slot: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """One level-synchronized pass for a chunk of sites.

        Returns ``(state, mask)``: the ``(n + 2, 4, s)`` four-valued state
        (two trailing sentinel rows) and the ``(n + 2, s)`` on-path
        membership bitmask.
        """
        s = len(site_ids)
        self._ensure_state_arrays()
        state, mask = self._buffers(s, slot)
        cols = np.arange(s)
        # The error site carries the erroneous value with certainty: 1(a).
        state[site_ids, :, cols] = (1.0, 0.0, 0.0, 0.0)
        mask[site_ids, cols] = True
        # Columns to re-inject when a group's output node is itself a site
        # in this chunk (the scatter writes SP constants over them).
        site_cols: dict[int, list[int]] = {}
        for col, site_id in enumerate(site_ids.tolist()):
            site_cols.setdefault(site_id, []).append(col)

        track_polarity = self.track_polarity
        const = self._const
        stats = self.sweep_stats
        stats["sweeps"] += 1
        prune = self.prune
        if prune == "auto":
            # The bench-calibrated dense fallback: a chunk whose union of
            # cones covers most sinks of a small circuit prunes nothing
            # and pays the per-group bookkeeping anyway — run it dense.
            prune = not chunk_prune_saturated(self.compiled, site_ids)
            if not prune:
                stats["dense_fallback_sweeps"] += 1
        cells = self.cells if prune else "off"
        if prune:
            # Union-of-cones, maintained incrementally: on_path[i] is True
            # iff row i is on-path for *some* column (= mask[i].any()).  A
            # gate row can only be active when some fanin is on-path
            # somewhere, so testing the (g, k) union vector first avoids
            # gathering the full (g, k, s) mask block for rows whose
            # fanins are all-off everywhere — and since on_path is exact,
            # the surviving candidate rows are exactly the active rows.
            on_path = np.zeros(self._rows, dtype=bool)
            on_path[site_ids] = True
            # No gate at or below the chunk's minimum site level can have
            # an on-path fanin (cone members sit strictly above their
            # site's level), so those levels are skipped outright.
            min_site_level = int(self.plan.node_level[site_ids].min())
        for level, groups in self.plan.levels:
            if prune and level <= min_site_level:
                continue
            for group in groups:
                out_ids = group.out_ids
                fanin = group.fanin
                if prune:
                    active = np.nonzero(on_path[fanin].any(axis=1))[0]
                    if active.size == 0:
                        continue  # whole group off-path everywhere
                    # Slice only when it pays: a nearly-fully-active group
                    # would trade the rows it skips for two fancy-index
                    # copies, so it runs dense (on_path stays exact either
                    # way — the active set *is* out_mask.any(axis=1)).
                    if active.size <= (len(out_ids) * 7) // 8:
                        out_ids = out_ids[active]
                        fanin = fanin[active]
                        on_path[out_ids] = True
                    else:
                        on_path[out_ids[active]] = True
                    out_mask = mask[fanin].any(axis=1)  # (r, s)
                    n_on = int(out_mask.sum())
                    stats["cells_on"] += n_on
                    stats["cells_total"] += out_mask.size
                    if cells != "off" and n_on < out_mask.size and (
                        cells == "on"
                        or n_on * group.cell_factor < out_mask.size
                    ):
                        # Cell-compacted tier: even inside active rows only
                        # a few columns are on-path on clustered chunks, so
                        # gather exactly those (row, column) cells, compute
                        # them as one (m, 4) block and scatter back into the
                        # sentinel-padded dense state.  Off-path cells keep
                        # their template SP constants (each node is written
                        # at most once per sweep), and a site row's own
                        # column is never on-path, so the injected 1(a)
                        # survives untouched — the same invariants the
                        # targeted scatter below relies on.
                        on_rows, on_cols = np.nonzero(out_mask)
                        cell_values = group.compact_rule(
                            state, fanin[on_rows], on_cols
                        )  # (m, 4)
                        if not track_polarity:
                            cell_values[:, 0] += cell_values[:, 1]
                            cell_values[:, 1] = 0.0
                        node_rows = out_ids[on_rows]
                        state[node_rows, :, on_cols] = cell_values
                        mask[node_rows, on_cols] = True
                        stats["groups_cell"] += 1
                        stats["cells_computed"] += n_on
                        continue
                    stats["groups_row"] += 1
                    stats["cells_computed"] += out_mask.size
                else:
                    out_mask = mask[fanin].any(axis=1)  # (g, s)
                    if not out_mask.any():
                        continue  # whole group off-path: SP constants hold
                    stats["groups_dense"] += 1
                    # Dense sweeps get their own cell counter: folding
                    # them into cells_computed (without the on/total pair
                    # the pruned tiers track) let the computed fraction
                    # exceed 1, and counting on-cells here would put an
                    # out_mask.sum() on the dense reference path purely
                    # for bookkeeping.
                    stats["cells_dense"] += out_mask.size
                result = group.rule(state, fanin)  # (r, 4, s)
                if not track_polarity:
                    result[:, 0, :] += result[:, 1, :]
                    result[:, 1, :] = 0.0
                if out_mask.all():
                    # Fully on-path rows (can hold no injected site column:
                    # a site is never on-path for itself) — assign directly.
                    state[out_ids] = result
                    mask[out_ids] = True
                    continue
                if prune and n_on * 8 < out_mask.size:
                    # Targeted scatter for column-sparse groups: every
                    # off-path cell already holds its SP constant (the
                    # chunk state is seeded from the constants template and
                    # each node is written at most once per sweep), so only
                    # the on-path cells need a write.  This also never
                    # touches a site row's own column — no 1(a)
                    # re-injection required.  Column-dense groups fall
                    # through to the row-vectorized ``np.where`` scatter,
                    # which beats per-element fancy indexing there.
                    on_rows, on_cols = np.nonzero(out_mask)
                    node_rows = out_ids[on_rows]
                    state[node_rows, :, on_cols] = result[on_rows, :, on_cols]
                    mask[node_rows, on_cols] = True
                    continue
                # Off-path columns take their broadcast SP constant — cheaper
                # than gathering the previous output state back out.
                state[out_ids] = np.where(
                    out_mask[:, None, :], result, const[out_ids][:, :, None]
                )
                mask[out_ids] = out_mask
                for node_id in out_ids.tolist():
                    columns = site_cols.get(node_id)
                    if columns is None:
                        continue
                    # Restore the injected 1(a) the scatter just overwrote
                    # (a site is never on-path for its own column).
                    for col in columns:
                        state[node_id, 0, col] = 1.0
                        state[node_id, 1, col] = 0.0
                        state[node_id, 2, col] = 0.0
                        state[node_id, 3, col] = 0.0
                        mask[node_id, col] = True
        # Hand the slot its dirty-row set: a pruned sweep writes only
        # rows on its union-of-cones (on_path is exact), so the next
        # sweep of this slot restores just those rows instead of the
        # whole template.  Dense sweeps may write any gate row — full
        # reset.
        self._mark_dirty(slot, np.nonzero(on_path)[0] if prune else None)
        return state, mask

    def release_buffers(self) -> None:
        """Free the chunk-width state matrices (template, constants, and
        the double-buffered sweep/mask pairs) — the backend's ~3x
        ``_STATE_BYTES_TARGET`` resident set.  Everything is rebuilt
        lazily on the next sweep, so this is always safe to call between
        analyses on long-lived engines/analyzers."""
        self._template = None
        self._const = None
        self._buffer_slots.clear()

    # ------------------------------------------------------------- scheduling

    def _schedule_order(self, ids: np.ndarray):
        """The sweep permutation for one call, or ``None`` for input order.

        Resolves the backend's ``schedule`` knob against this call's site
        count (``auto`` clusters only multi-chunk calls) and returns
        ``order`` with ``order[j]`` = input position of the ``j``-th site
        to sweep.  Scheduling cannot change any per-site result — every
        column is computed independently — so callers restore input order
        after the sweep.
        """
        if len(ids) < 2:
            return None
        strategy = resolve_schedule(self.schedule, len(ids), self.batch_size)
        if strategy != "cone":
            return None
        if (
            self.schedule == "auto"
            and self.prune == "auto"
            and chunk_prune_saturated(self.compiled, ids)
        ):
            # The whole call saturates a small circuit: every chunk will
            # take the dense fallback regardless of which sites share it,
            # so the cluster sort (and the packed-result reorder it
            # forces) is pure overhead — exactly the s953/s1423
            # regression BENCH_pr3.json measured.  Explicit
            # schedule="cone" or prune=True still cluster.
            return None
        return cone_cluster_order(self.compiled, ids)

    def _chunk_spans(self, ids: np.ndarray) -> list[tuple[int, int]]:
        """The ``(start, stop)`` spans one bulk call sweeps, in order.

        ``chunking="adaptive"`` runs the boundary-aligned splitter of
        :func:`~repro.core.schedule.adaptive_chunk_spans` (chunks close
        at cluster boundaries once past half width, so disjoint cone
        clusters never share a sweep; with an unclustered order it simply
        inherits whatever locality the caller's order has); ``"fixed"``
        is flat ``batch_size`` slicing.  The calibrated ``"auto"`` policy
        is *fixed*: measured on the s9234/s38417 workloads
        (``benchmarks/run_bench.py``), every extra chunk costs ~40-80 ms
        of width-independent overhead — group dispatch, the dirty-row
        buffer restore (which rewrites each dirty row across the full
        buffer width regardless of the chunk's width), the per-chunk sink
        reduction — which consistently outweighs the smaller unions a
        split buys, so full-width chunks win wherever the cell-compacted
        tier already caps the kernel FLOPs at the on-path cells.
        """
        n = len(ids)
        adaptive = self.chunking == "adaptive"
        if adaptive and n > self.batch_size:
            spans = adaptive_chunk_spans(self.compiled, ids, self.batch_size)
            fixed = -(-n // self.batch_size)
            self.sweep_stats["chunk_splits"] += len(spans) - fixed
        else:
            spans = [
                (start, min(start + self.batch_size, n))
                for start in range(0, n, self.batch_size)
            ]
        self.sweep_stats["chunks"] += len(spans)
        return spans

    def _swept_chunks(self, ids: np.ndarray):
        """Yield ``(chunk, state, mask)`` per chunk of ``ids``, pipelined.

        The shared chunking driver of every bulk query: two-stage pipeline
        where the NumPy sweep of chunk ``i+1`` (GIL released inside the
        array kernels) overlaps the Python-side consumption of chunk
        ``i``; double buffering keeps the stages on disjoint state
        matrices.  Single-chunk calls skip the thread machinery.
        """
        chunks = [ids[start:stop] for start, stop in self._chunk_spans(ids)]
        if not chunks:
            return
        if len(chunks) == 1:
            state, mask = self._sweep(chunks[0])
            yield chunks[0], state, mask
            return
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as sweeper:
            future = sweeper.submit(self._sweep, chunks[0], 0)
            for index, chunk in enumerate(chunks):
                state, mask = future.result()
                if index + 1 < len(chunks):
                    future = sweeper.submit(
                        self._sweep, chunks[index + 1], (index + 1) % 2
                    )
                yield chunk, state, mask

    # ---------------------------------------------------------------- queries

    def p_sensitized_many(self, site_ids: Sequence[int]) -> np.ndarray:
        """``P_sensitized`` for many sites, aligned with ``site_ids``.

        Shares the full bulk path with :meth:`analyze_sites`: the scalar
        crossover guard, the double-buffered sweep pipeline, the chunk
        scheduler, and — through :meth:`_select_pairs` — the exact
        reduction and clamping policy of the packed path, so the two
        queries can never drift numerically.
        """
        ids = np.asarray(site_ids, dtype=np.intp)
        out = np.empty(len(ids))
        if (
            self.scalar_fallback is not None
            and self.compiled.n * len(ids) < self.min_vector_work
        ):
            for position, site_id in enumerate(ids.tolist()):
                out[position] = self.scalar_fallback(site_id).p_sensitized
            return out
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        cursor = 0
        for chunk, state, mask in self._swept_chunks(sweep_ids):
            p_sens = self._select_pairs(chunk, state, mask)[0]
            if order is None:
                out[cursor : cursor + len(chunk)] = p_sens
            else:
                out[order[cursor : cursor + len(chunk)]] = p_sens
            cursor += len(chunk)
        return out

    def analyze_sites(self, site_ids: Sequence[int]):
        """Full per-site results (sink vectors included) for many sites.

        Returns ``{site_name: EPPResult}`` in input order, matching
        ``EPPEngine.node_epp`` per site to floating-point reassociation.
        """
        from repro.core.epp import EPPResult

        site_ids = list(site_ids)
        results: dict[str, EPPResult] = {}
        use_scalar = (
            self.scalar_fallback is not None
            and self.compiled.n * len(site_ids) < self.min_vector_work
        )
        if use_scalar:
            for site_id in site_ids:
                result = self.scalar_fallback(site_id)
                results[result.site] = result
            return results
        ids = np.asarray(site_ids, dtype=np.intp)
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        for chunk, state, mask in self._swept_chunks(sweep_ids):
            self._collect(chunk, state, mask, results)
        if order is not None:
            names = self.compiled.names
            results = {
                names[site_id]: results[names[site_id]] for site_id in site_ids
            }
        return results

    def _collect(self, chunk, state, mask, results) -> None:
        """Assemble per-site EPPResults from one chunk's sweep."""
        self.materialize(chunk.tolist(), self._pack(chunk, state, mask), results)

    def _select_pairs(self, chunk, state, mask) -> tuple:
        """The shared sink-pair reduction of one chunk's sweep.

        All numeric work happens in bulk: the on-path (site, sink) pairs
        are selected with one boolean pick, clamped with one
        ``np.maximum`` (``EPPValue.clamped`` in bulk), the per-pair error
        masses capped at 1, and the per-site survival products run through
        ``multiply.reduceat``.  This is the single reduction/clamping
        policy behind both :meth:`p_sensitized_many` and :meth:`_pack`.
        Returns ``(p_sens, counts, sink_mask, selected)``.
        """
        sink_state = state[self.plan.sink_ids]  # (ns, 4, s)
        sink_mask = mask[self.plan.sink_ids].T  # (s, ns)
        # Site-major selection of every on-path (site, sink) pair: the
        # boolean pick over (s, ns, ...) walks sites first, sinks second.
        selected = sink_state.transpose(2, 0, 1)[sink_mask]  # (m, 4)
        np.maximum(selected, 0.0, out=selected)
        # P_sensitized = 1 - prod(1 - (pa + pā)) over each site's own pairs.
        error = np.minimum(selected[:, 0] + selected[:, 1], 1.0)
        counts = sink_mask.sum(axis=1)  # pairs per site
        p_sens = np.zeros(len(chunk))
        occupied = counts > 0
        if occupied.any():
            # Segment starts for the non-empty sites only: consecutive starts
            # then delimit exactly each site's own pairs (empty sites add no
            # elements), so reduceat never sees a degenerate slice.
            starts = (np.cumsum(counts) - counts)[occupied]
            p_sens[occupied] = 1.0 - np.multiply.reduceat(1.0 - error, starts)
        return p_sens, counts, sink_mask, selected

    def _pack(self, chunk, state, mask) -> tuple:
        """Reduce one chunk's sweep to compact per-site numeric arrays.

        Returns ``(p_sens, cone_sizes, counts, sink_pos, values)`` aligned
        with the chunk: ``counts[i]`` on-path pairs per site, ``sink_pos``
        indices into ``plan.sink_ids`` and ``values`` their clamped ``(m, 4)``
        four-valued vectors.  This tuple of plain arrays is also the wire
        format the sharded driver (:mod:`repro.core.epp_shard`) ships across
        the process boundary — flat buffers, no per-object overhead.
        """
        p_sens, counts, sink_mask, selected = self._select_pairs(chunk, state, mask)
        sink_pos = np.nonzero(sink_mask)[1]
        cone_sizes = mask.sum(axis=0) - 1  # mask includes the site
        return p_sens, cone_sizes, counts, sink_pos, selected

    @staticmethod
    def _reorder_packed(packed: tuple, inverse: np.ndarray) -> tuple:
        """Permute a packed tuple from sweep order back to input order.

        ``inverse[i]`` is the sweep position of input site ``i``.  The
        per-site arrays gather directly; the variable-length sink-pair
        segments (``sink_pos``/``values``) are gathered via a repeat-built
        index so the whole reorder stays vectorized.
        """
        p_sens, cone_sizes, counts, sink_pos, values = packed
        starts = np.cumsum(counts) - counts
        new_counts = counts[inverse]
        total = int(new_counts.sum())
        if total:
            heads = np.repeat(starts[inverse], new_counts)
            prefix = np.cumsum(new_counts) - new_counts
            within = np.arange(total) - np.repeat(prefix, new_counts)
            segment_index = heads + within
            sink_pos = sink_pos[segment_index]
            values = values[segment_index]
        return p_sens[inverse], cone_sizes[inverse], new_counts, sink_pos, values

    def pack_sites(self, site_ids: Sequence[int]) -> tuple:
        """Compact numeric results for many sites (chunks concatenated).

        The sharded driver's per-worker entry point: sweeps the sites
        chunk by chunk — through the same scheduler as the other bulk
        queries — and returns one concatenated ``_pack`` tuple aligned
        with ``site_ids`` input order, ready to cross the process
        boundary and be materialized by the parent.
        """
        ids = np.asarray(site_ids, dtype=np.intp)
        order = self._schedule_order(ids)
        sweep_ids = ids if order is None else ids[order]
        parts = [
            self._pack(chunk, state, mask)
            for chunk, state, mask in self._swept_chunks(sweep_ids)
        ]
        if not parts:
            empty = np.zeros(0)
            return empty, empty.astype(np.intp), empty.astype(np.intp), \
                empty.astype(np.intp), np.zeros((0, 4))
        if len(parts) == 1:
            packed = parts[0]
        else:
            packed = (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
                np.concatenate([p[3] for p in parts]),
                np.concatenate([p[4] for p in parts]),
            )
        if order is not None:
            inverse = np.empty(len(order), dtype=np.intp)
            inverse[order] = np.arange(len(order), dtype=np.intp)
            packed = self._reorder_packed(packed, inverse)
        return packed

    def materialize(self, site_ids: Sequence[int], packed: tuple, results) -> None:
        """Build per-site EPPResults from a ``_pack``/``pack_sites`` tuple.

        The per-sink ``EPPValue`` dicts are *deferred*: each result holds a
        slice descriptor into the packed arrays and builds its dict on
        first ``sink_values`` access (full-circuit analyses carry millions
        of (site, sink) pairs, and the dominant consumers read only
        ``p_sensitized``).  The packed arrays stay alive exactly as long
        as some un-materialized result references them.  ``results`` is
        updated in ``site_ids`` order.
        """
        from repro.core.epp import EPPResult

        names = self.compiled.names
        sink_names_arr = self._sink_names_arr
        p_sens, cone_sizes, counts, sink_pos, values = packed
        stops = np.cumsum(counts)
        starts = (stops - counts).tolist()
        stops = stops.tolist()
        p_sens = p_sens.tolist()
        cone_sizes = cone_sizes.tolist()

        def sink_source(start, stop):
            def build():
                return dict(
                    zip(
                        sink_names_arr[sink_pos[start:stop]].tolist(),
                        starmap(
                            EPPValue._unchecked, values[start:stop].tolist()
                        ),
                    )
                )

            return build

        for column, site_id in enumerate(site_ids):
            site_name = names[site_id]
            results[site_name] = EPPResult.deferred(
                site_name,
                p_sens[column],
                cone_sizes[column],
                sink_source(starts[column], stops[column]),
            )
