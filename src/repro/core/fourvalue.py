"""The four-valued error-propagation probability vector.

Every *on-path* signal — a signal on some structural path from the error
site to an output — carries four probabilities (paper Section 2):

* ``pa``     — the signal equals the erroneous value ``a`` (the error has
  propagated with an **even** number of inversions);
* ``pa_bar`` — the signal equals ``ā`` (odd number of inversions);
* ``p0`` / ``p1`` — the error was blocked and the signal sits at constant
  0 / 1.

The four entries of an on-path signal sum to 1.  An *off-path* signal has
``pa = pa_bar = 0`` and ``p0 + p1 = 1`` — its vector is just its signal
probability.  These states are the D-calculus alphabet ``{D, D̄, 0, 1}``
with probabilities attached, which is what makes reconvergent fanout
first-order correct: two reconverging error paths with opposite parities
cancel exactly as the algebra dictates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = ["EPPValue"]

_SUM_TOLERANCE = 1e-6


@dataclass(frozen=True, slots=True)
class EPPValue:
    """Immutable four-valued probability vector ``(pa, pa_bar, p0, p1)``.

    Use the constructors :meth:`error_site`, :meth:`off_path` and
    :meth:`blocked` for the three common shapes.  ``validate`` (default on)
    checks ranges and unit sum; engines that clamp tiny negative rounding
    residues construct with ``validate=False`` via :meth:`clamped`.
    (``slots=True`` both shrinks the footprint and speeds construction —
    full-circuit batch analyses build one instance per on-path sink per
    site, hundreds of thousands on Table 2-sized circuits.)
    """

    pa: float
    pa_bar: float
    p0: float
    p1: float

    def __post_init__(self) -> None:
        for field_name in ("pa", "pa_bar", "p0", "p1"):
            value = getattr(self, field_name)
            if not -_SUM_TOLERANCE <= value <= 1.0 + _SUM_TOLERANCE:
                raise AnalysisError(
                    f"EPPValue.{field_name} out of range [0,1]: {value!r}"
                )
        if abs(self.total - 1.0) > 1e-3:
            raise AnalysisError(
                f"EPPValue components must sum to 1, got {self.total!r} for {self!r}"
            )

    # ---------------------------------------------------------- constructors

    @staticmethod
    def error_site() -> "EPPValue":
        """The vector at the SEU site itself: the erroneous value with certainty."""
        return EPPValue(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def off_path(signal_probability: float) -> "EPPValue":
        """Vector of an off-path signal with the given probability of 1."""
        if not 0.0 <= signal_probability <= 1.0:
            raise AnalysisError(
                f"signal probability out of [0,1]: {signal_probability!r}"
            )
        return EPPValue(0.0, 0.0, 1.0 - signal_probability, signal_probability)

    @staticmethod
    def blocked(p1: float) -> "EPPValue":
        """Fully blocked error: constant 1 with probability ``p1``, else 0."""
        return EPPValue.off_path(p1)

    @staticmethod
    def clamped(pa: float, pa_bar: float, p0: float, p1: float) -> "EPPValue":
        """Construct with tiny negative rounding residues clamped to 0."""
        return EPPValue(
            pa if pa > 0.0 else 0.0,
            pa_bar if pa_bar > 0.0 else 0.0,
            p0 if p0 > 0.0 else 0.0,
            p1 if p1 > 0.0 else 0.0,
        )

    @staticmethod
    def _unchecked(pa: float, pa_bar: float, p0: float, p1: float) -> "EPPValue":
        """Construct without range/sum validation.

        Reserved for engine hot paths whose components are already clamped
        and normalized in bulk (the batch backend builds hundreds of
        thousands of sink vectors per full-circuit analyze; re-validating
        each would dominate the run).
        """
        value = object.__new__(EPPValue)
        _setattr = object.__setattr__
        _setattr(value, "pa", pa)
        _setattr(value, "pa_bar", pa_bar)
        _setattr(value, "p0", p0)
        _setattr(value, "p1", p1)
        return value

    # ------------------------------------------------------------ properties

    @property
    def total(self) -> float:
        return self.pa + self.pa_bar + self.p0 + self.p1

    @property
    def error_probability(self) -> float:
        """Probability the signal still carries the error (either polarity).

        This is the quantity ``Pa(PO) + Pā(PO)`` the paper feeds into
        ``P_sensitized``.
        """
        return self.pa + self.pa_bar

    @property
    def is_off_path(self) -> bool:
        return self.pa == 0.0 and self.pa_bar == 0.0

    # ------------------------------------------------------------ operations

    def invert(self) -> "EPPValue":
        """The vector after a NOT gate: polarities and constants swap."""
        return EPPValue(self.pa_bar, self.pa, self.p1, self.p0)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.pa, self.pa_bar, self.p0, self.p1)

    def isclose(self, other: "EPPValue", tolerance: float = 1e-9) -> bool:
        return (
            abs(self.pa - other.pa) <= tolerance
            and abs(self.pa_bar - other.pa_bar) <= tolerance
            and abs(self.p0 - other.p0) <= tolerance
            and abs(self.p1 - other.p1) <= tolerance
        )

    def __str__(self) -> str:
        """The paper's notation, e.g. ``0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)``."""
        parts = []
        if self.pa:
            parts.append(f"{self.pa:.4g}(a)")
        if self.pa_bar:
            parts.append(f"{self.pa_bar:.4g}(a̅)")
        if self.p0:
            parts.append(f"{self.p0:.4g}(0)")
        if self.p1:
            parts.append(f"{self.p1:.4g}(1)")
        return " + ".join(parts) if parts else "0"
