"""Sharded multi-process EPP: the full-circuit analysis fanned out over workers.

The batch backend (:mod:`repro.core.epp_batch`) removed the Python
interpreter from the per-gate hot loop; what remains on large circuits is a
single process saturating one core with NumPy sweeps.  This module removes
the single-process ceiling: :class:`ShardedEPPEngine` partitions the site
list into contiguous shards and fans them out across a
``ProcessPoolExecutor``, each worker running the *existing*
:class:`~repro.core.epp_batch.BatchEPPBackend` sweep over its shard.

Design
------
* **One pickled payload, unpickled once per worker.**  The compiled
  circuit (stripped of its cached execution plans — see
  ``CompiledCircuit.__getstate__``), the signal-probability vector and the
  backend knobs are pickled exactly once in the parent and shipped through
  the executor *initializer*; each worker rebuilds its
  :class:`~repro.core.epp_batch.BatchPlan` locally.  Per-task traffic is
  just the shard's site-id list.
* **Compact wire format.**  Workers return the backend's ``pack_sites``
  tuple — five flat NumPy arrays per shard — not per-site dataclasses;
  the parent materializes :class:`~repro.core.epp.EPPResult` objects while
  the remaining shards are still sweeping, so result packaging overlaps
  worker compute exactly as the single-process pipeline overlapped
  sweep and collect.
* **Column independence makes sharding exact.**  Every site occupies its
  own state-matrix column and no kernel mixes columns, so the shard
  partition cannot change any result: sharded output is bit-identical to
  the vector backend per site (and therefore within the same 1e-9 envelope
  of the scalar oracle the equivalence suite pins).
* **Crossover guard.**  Small workloads (``n_nodes * n_sites`` below
  ``min_process_work``), single-job configurations and single-site calls
  run on the in-process vector backend — an s27-sized circuit never pays
  process spin-up, mirroring the vector backend's own scalar-crossover
  guard.

Selection: ``EPPEngine.analyze(backend="sharded", jobs=4)`` (CLI:
``--backend sharded --jobs 4``); passing ``jobs=`` alone implies the
sharded backend.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool

from repro.errors import AnalysisError

__all__ = ["ShardedEPPEngine", "default_jobs", "partition_shards"]

#: Below this ``n_nodes * n_sites`` product the whole call runs on the
#: in-process vector backend: process spin-up plus payload transfer costs
#: on the order of 100 ms, which a sub-second sweep cannot amortize.  The
#: threshold sits between s1423-sized full-circuit runs (~0.7M, fastest
#: in-process) and s9234-sized runs (~35M, where sharding is the point).
_MIN_PROCESS_WORK = 4_000_000

#: Shards per worker.  Cone sizes vary wildly across a circuit, so handing
#: every worker exactly one shard invites stragglers; a few shards per
#: worker lets the executor rebalance without shrinking shards so far that
#: per-task overhead shows.
_SHARDS_PER_WORKER = 4


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: one per available core."""
    return os.cpu_count() or 1


def partition_shards(items: list, n_shards: int) -> list[list]:
    """Split ``items`` into at most ``n_shards`` contiguous, balanced runs.

    Contiguity keeps the merged result dict in input order (shards are
    collected out of order but merged in shard order); balance keeps the
    largest shard within one item of the smallest.
    """
    n = len(items)
    n_shards = max(1, min(n_shards, n))
    base, extra = divmod(n, n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


# --------------------------------------------------------------------- worker

#: Per-process backend, built once by :func:`_shard_worker_init` from the
#: parent's pickled payload and reused by every task the worker runs.
_WORKER_BACKEND = None


def _shard_worker_init(payload: bytes) -> None:
    """Executor initializer: unpickle the circuit once, plan locally.

    ``min_vector_work=0``: the parent-level crossover guard already decided
    this workload is large enough for processes, so every shard runs the
    vectorized sweep (workers carry no scalar engine to fall back to).
    """
    global _WORKER_BACKEND
    from repro.core.epp_batch import BatchEPPBackend

    compiled, signal_probs, track_polarity, batch_size = pickle.loads(payload)
    _WORKER_BACKEND = BatchEPPBackend(
        compiled,
        signal_probs,
        track_polarity=track_polarity,
        batch_size=batch_size,
        min_vector_work=0,
    )


def _run_shard(site_ids: list[int], full: bool):
    """One shard's sweep in a worker: packed results or bare P_sensitized."""
    backend = _WORKER_BACKEND
    if full:
        return backend.pack_sites(site_ids)
    return backend.p_sensitized_many(site_ids)


def _worker_warmup(delay: float) -> int:
    """Barrier task for :meth:`ShardedEPPEngine.warm`.

    Holds its worker long enough that every concurrently submitted warmup
    task must land on a *distinct* worker, forcing the executor — which
    spawns processes lazily, on submit — to fork and initialize the whole
    pool now rather than inside the caller's timed region.
    """
    import time

    time.sleep(delay)
    return os.getpid()


# --------------------------------------------------------------------- driver


class ShardedEPPEngine:
    """Multi-process site-sharded EPP bound to one circuit and SP map.

    Parameters
    ----------
    compiled:
        The compiled circuit (pickled once into the worker pool).
    signal_probs:
        Per-node P(1) indexed by node id, as the vector backend consumes.
    track_polarity:
        Mirrors the engine flag (forwarded to every worker backend).
    jobs:
        Worker process count; default one per available core.
    batch_size:
        Per-chunk site columns inside each worker's sweep.  When omitted,
        the single-process chunk budget is divided across the pool so the
        aggregate resident memory of a sharded run matches the vector
        backend's, instead of multiplying by ``jobs``.
    min_process_work:
        Crossover threshold on ``n_nodes * n_sites`` below which calls run
        on the in-process vector backend; 0 forces the process path.
    shards_per_worker:
        Load-balancing factor (see :data:`_SHARDS_PER_WORKER`).
    mp_context:
        Optional ``multiprocessing`` context; default prefers ``fork``
        (cheapest spin-up) and falls back to the platform default.
    local_backend:
        The in-process :class:`~repro.core.epp_batch.BatchEPPBackend` used
        below the crossover and for materializing worker results (built on
        demand when omitted; ``EPPEngine`` passes its cached one).

    The worker pool is created lazily on the first sharded call and reused
    across calls; :meth:`close` (or the context-manager protocol) tears it
    down.  Results are identical to ``backend="vector"`` — sharding cannot
    reorder any per-site arithmetic.
    """

    def __init__(
        self,
        compiled,
        signal_probs: Sequence[float],
        track_polarity: bool = True,
        jobs: int | None = None,
        batch_size: int | None = None,
        min_process_work: int = _MIN_PROCESS_WORK,
        shards_per_worker: int = _SHARDS_PER_WORKER,
        mp_context=None,
        local_backend=None,
    ):
        if jobs is not None and int(jobs) < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        self.compiled = compiled
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        self.track_polarity = track_polarity
        self.min_process_work = min_process_work
        self.shards_per_worker = max(1, int(shards_per_worker))
        if local_backend is None:
            from repro.core.epp_batch import BatchEPPBackend

            local_backend = BatchEPPBackend(
                compiled,
                signal_probs,
                track_polarity=track_polarity,
                batch_size=batch_size,
            )
        self.local = local_backend
        self.batch_size = self.local.batch_size
        #: The caller's explicit batch_size (None = defaulted) — part of
        #: the engine-level cache identity, so an explicit width never
        #: silently reuses a pool built with the derived default.
        self.requested_batch_size = None if batch_size is None else int(batch_size)
        # Workers each hold their own state matrices, so the per-chunk
        # budget is divided across the pool: aggregate resident memory of a
        # sharded run stays at the single-process budget instead of
        # multiplying by ``jobs``.
        if batch_size is not None:
            self.worker_batch_size = int(batch_size)
        else:
            from repro.core.epp_batch import default_batch_size

            self.worker_batch_size = max(
                32, default_batch_size(compiled.n) // self.jobs
            )
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._payload: bytes | None = None

    # ------------------------------------------------------------- lifecycle

    @property
    def pool_started(self) -> bool:
        """Whether worker processes have been spun up (guard introspection)."""
        return self._pool is not None

    def payload(self) -> bytes:
        """The once-pickled worker payload (cached across pool restarts)."""
        if self._payload is None:
            self._payload = pickle.dumps(
                (
                    self.compiled,
                    self.local.sp,
                    self.track_polarity,
                    self.worker_batch_size,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return self._payload

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = self._mp_context
            if context is None:
                # fork inherits the parent image — payload bytes land in the
                # child for free and spin-up is milliseconds; spawn/forkserver
                # platforms re-import and unpickle, which the initializer
                # design supports identically.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=_shard_worker_init,
                initargs=(self.payload(),),
            )
        return self._pool

    def warm(self) -> "ShardedEPPEngine":
        """Fork and initialize every worker now, not inside a timed region.

        ``ProcessPoolExecutor`` spawns workers lazily on submit, so merely
        constructing the pool warms nothing.  One short barrier task per
        worker is submitted and awaited — each must occupy a distinct
        worker, so all ``jobs`` processes fork and run the payload
        initializer here.  A bounded retry with a longer hold covers the
        race where an early worker finishes before the last one forks.
        """
        from concurrent.futures import wait

        pool = self._ensure_pool()
        delay = 0.02
        for _ in range(3):
            wait([pool.submit(_worker_warmup, delay) for _ in range(self.jobs)])
            processes = getattr(pool, "_processes", None)
            if processes is None or len(processes) >= self.jobs:
                break
            delay *= 4
        return self

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool respawns on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedEPPEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # -------------------------------------------------------------- sharding

    def _use_local(self, n_sites: int) -> bool:
        """The crossover guard: does this call even want processes?

        ``min_process_work <= 0`` is an explicit force — every call fans
        out, even with one worker or one site (mirroring the batch
        backend's ``min_vector_work=0`` contract) — so harnesses that
        *must* measure or exercise the process path never silently fall
        back to the in-process sweep.
        """
        if self.min_process_work <= 0:
            return False
        return (
            self.jobs <= 1
            or n_sites < 2
            or self.compiled.n * n_sites < self.min_process_work
        )

    def _shards(self, site_ids: list[int]) -> list[list[int]]:
        return partition_shards(site_ids, self.jobs * self.shards_per_worker)

    def _map_shards(self, shards: list[list[int]], full: bool):
        """Yield ``(shard_index, worker_result)`` as shards complete."""
        pool = self._ensure_pool()
        futures = {
            pool.submit(_run_shard, shard, full): index
            for index, shard in enumerate(shards)
        }
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        except BrokenProcessPool as exc:
            self._pool = None  # the pool is dead; let a later call respawn it
            raise AnalysisError(
                "sharded EPP worker pool died mid-analysis (worker killed or "
                "out of memory); rerun with fewer jobs or a smaller batch_size"
            ) from exc

    # --------------------------------------------------------------- queries

    def analyze_sites(self, site_ids: Sequence[int]):
        """Full per-site results for many sites, fanned out across workers.

        Returns ``{site_name: EPPResult}`` in input order, exactly matching
        ``BatchEPPBackend.analyze_sites`` (the shard partition cannot change
        per-site arithmetic).  Workers ship packed arrays; materialization
        into result objects happens here, overlapping the remaining shards'
        sweeps.
        """
        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return {}
        if self._use_local(len(site_ids)):
            return self.local.analyze_sites(site_ids)
        shards = self._shards(site_ids)
        shard_results: list[dict | None] = [None] * len(shards)
        for index, packed in self._map_shards(shards, full=True):
            out: dict = {}
            self.local.materialize(shards[index], packed, out)
            shard_results[index] = out
        results: dict = {}
        for out in shard_results:
            results.update(out)
        return results

    def p_sensitized_many(self, site_ids: Sequence[int]):
        """``P_sensitized`` for many sites, aligned with ``site_ids``."""
        import numpy as np

        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return np.empty(0)
        if self._use_local(len(site_ids)):
            return self.local.p_sensitized_many(site_ids)
        shards = self._shards(site_ids)
        offsets = [0] * len(shards)
        position = 0
        for index, shard in enumerate(shards):
            offsets[index] = position
            position += len(shard)
        out = np.empty(len(site_ids))
        for index, values in self._map_shards(shards, full=False):
            out[offsets[index] : offsets[index] + len(shards[index])] = values
        return out
