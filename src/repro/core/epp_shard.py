"""Sharded multi-process EPP: the full-circuit analysis fanned out over workers.

The batch backend (:mod:`repro.core.epp_batch`) removed the Python
interpreter from the per-gate hot loop; what remains on large circuits is a
single process saturating one core with NumPy sweeps.  This module removes
the single-process ceiling: :class:`ShardedEPPEngine` partitions the site
list into contiguous shards and fans them out across a
``ProcessPoolExecutor``, each worker running the *existing*
:class:`~repro.core.epp_batch.BatchEPPBackend` sweep over its shard.

Design
------
* **One pickled payload, unpickled once per worker.**  The compiled
  circuit (stripped of its cached execution plans — see
  ``CompiledCircuit.__getstate__``), the signal-probability vector and the
  backend knobs are pickled exactly once in the parent and shipped through
  the executor *initializer*; each worker rebuilds its
  :class:`~repro.core.epp_batch.BatchPlan` locally.  Per-task traffic is
  just the shard's site-id list.
* **Compact wire format, shared-memory transport.**  Workers reduce their
  shard to the backend's ``pack_sites`` tuple — five flat NumPy arrays —
  not per-site dataclasses, and (``transport="shm"``, the default on
  POSIX) write those arrays into a ``multiprocessing.shared_memory``
  segment sized from the pack layout; only a tiny
  :class:`ShmHandle` descriptor crosses the process boundary, so the
  parent materializes results without pickling/unpickling megabytes of
  float64 per shard.  ``transport="pickle"`` restores the PR-2 wire
  format (arrays through the executor's pickle channel); per-shard
  traffic is tallied in :attr:`ShardedEPPEngine.stats` either way.  The
  parent materializes :class:`~repro.core.epp.EPPResult` objects while
  the remaining shards are still sweeping, so result packaging overlaps
  worker compute exactly as the single-process pipeline overlapped
  sweep and collect.
* **Cone-clustered shards.**  The site list is ordered by
  :func:`~repro.core.schedule.cone_cluster_order` before the contiguous
  partition (``schedule="auto"``/``"cone"``), so each shard's sites share
  fanout cones and every worker's cone-aware sparse sweep
  (``prune=True``, forwarded to worker backends) prunes dense chunks.
  Results are restored to input order in the parent.
* **Column independence makes sharding exact.**  Every site occupies its
  own state-matrix column and no kernel mixes columns, so neither the
  shard partition nor the cone-clustered permutation can change any
  result: sharded output is bit-identical to the vector backend per site
  (and therefore within the same 1e-9 envelope of the scalar oracle the
  equivalence suite pins).
* **Crossover guard.**  Small workloads (``n_nodes * n_sites`` below
  ``min_process_work``), single-job configurations and single-site calls
  run on the in-process vector backend — an s27-sized circuit never pays
  process spin-up, mirroring the vector backend's own scalar-crossover
  guard.

Selection: ``EPPEngine.analyze(backend="sharded", jobs=4)`` (CLI:
``--backend sharded --jobs 4``); passing ``jobs=`` alone implies the
sharded backend.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = [
    "ShardedEPPEngine",
    "ShmHandle",
    "default_jobs",
    "default_transport",
    "export_shm",
    "import_shm",
    "partition_shards",
    "preferred_mp_context",
]

#: Result transports: ``shm`` round-trips packed arrays through
#: ``multiprocessing.shared_memory`` segments (zero array pickling);
#: ``pickle`` ships them through the executor's result channel (the PR-2
#: wire format, kept for non-POSIX hosts and as a differential reference).
TRANSPORTS = ("shm", "pickle")


def default_transport() -> str:
    """``shm`` where POSIX shared memory is available, else ``pickle``.

    Windows shared-memory segments die with their last open handle, so a
    worker cannot safely hand a segment to the parent after returning;
    the pickle wire format stays the default there.
    """
    if os.name != "posix":
        return "pickle"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - py3.8+ always has it
        return "pickle"
    return "shm"

#: Below this ``n_nodes * n_sites`` product the whole call runs on the
#: in-process vector backend: process spin-up plus payload transfer costs
#: on the order of 100 ms, which a sub-second sweep cannot amortize.  The
#: threshold sits between s1423-sized full-circuit runs (~0.7M, fastest
#: in-process) and s9234-sized runs (~35M, where sharding is the point).
_MIN_PROCESS_WORK = 4_000_000

#: Shards per worker.  Cone sizes vary wildly across a circuit, so handing
#: every worker exactly one shard invites stragglers; a few shards per
#: worker lets the executor rebalance without shrinking shards so far that
#: per-task overhead shows.
_SHARDS_PER_WORKER = 4


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: one per available core."""
    return os.cpu_count() or 1


def preferred_mp_context():
    """The cheapest multiprocessing context this platform offers.

    ``fork`` inherits the parent image — payload bytes land in the child
    for free and spin-up is milliseconds; spawn/forkserver platforms
    re-import and unpickle, which the initializer designs support
    identically.  Shared by the sharded driver and the table2 roster pool
    (:mod:`repro.experiments.table2`), so every pool in the tree picks
    workers the same way.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def partition_shards(items: list, n_shards: int) -> list[list]:
    """Split ``items`` into at most ``n_shards`` contiguous, balanced runs.

    Contiguity keeps the merged result dict in input order (shards are
    collected out of order but merged in shard order); balance keeps the
    largest shard within one item of the smallest.
    """
    n = len(items)
    n_shards = max(1, min(n_shards, n))
    base, extra = divmod(n, n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


# ------------------------------------------------------------ shm transport


@dataclass(frozen=True)
class ShmHandle:
    """Picklable descriptor of one shard's shared-memory result segment.

    The only thing the executor's result channel carries under
    ``transport="shm"``: a segment name plus the ``(shape, dtype, offset)``
    layout of each packed array — a few hundred bytes regardless of how
    many megabytes the arrays themselves occupy.  The parent attaches,
    reads zero-copy views, then closes and unlinks the segment.
    """

    name: str
    fields: tuple[tuple[tuple[int, ...], str, int], ...]
    nbytes: int


def _untrack_shm(shm) -> None:
    """Detach a segment from this process's resource tracker.

    The creating worker hands lifetime ownership to the parent (which
    unlinks after materializing), so the worker-side tracker must forget
    the segment — otherwise it would unlink it again at worker exit.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def export_shm(arrays: Sequence) -> ShmHandle:
    """Copy a tuple of arrays into one fresh shared-memory segment.

    Offsets are 64-byte aligned.  The segment is closed (not unlinked) and
    unregistered from the calling process's resource tracker before the
    handle is returned: the receiver owns the lifetime from here.
    """
    import numpy as np
    from multiprocessing import shared_memory

    fields = []
    offset = 0
    contiguous = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            # An object array over a shared buffer would ship raw
            # PyObject pointers to another process — refuse before any
            # segment exists.
            raise AnalysisError(
                f"cannot export dtype {array.dtype} through shared memory"
            )
        contiguous.append(array)
        fields.append((array.shape, array.dtype.str, offset))
        offset += array.nbytes
        offset = (offset + 63) & ~63
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        for array, (shape, dtype, start) in zip(contiguous, fields):
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
            view[...] = array
            del view
        handle = ShmHandle(shm.name, tuple(fields), shm.size)
    except BaseException:
        # The handle never reaches a receiver, so nobody else can reclaim
        # the segment — unlink it here before propagating.
        try:
            shm.close()
        finally:
            shm.unlink()
        raise
    _untrack_shm(shm)
    shm.close()
    return handle


def import_shm(handle: ShmHandle):
    """Attach a handle's segment; returns ``(arrays, shm)``.

    ``arrays`` are zero-copy views into the segment — the caller must drop
    every view before ``shm.close()`` and must ``shm.unlink()`` exactly
    once when done (the exporting side already relinquished ownership).
    """
    import numpy as np
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=handle.name)
    try:
        arrays = tuple(
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            for shape, dtype, offset in handle.fields
        )
    except BaseException:
        # Ownership transferred to this process the moment the worker
        # exported; a failed attach must not orphan the segment.
        shm.close()
        shm.unlink()
        raise
    return arrays, shm


# --------------------------------------------------------------------- worker

#: ``(key, payload)`` of this pool's circuit, stashed by the initializer;
#: the backend itself is built lazily through :func:`_worker_backend` so
#: the build is counted (and skipped) by the plan cache below.
_WORKER_PAYLOAD: tuple[str, bytes] | None = None

#: Worker-side plan cache: one fully-planned backend per *circuit
#: identity* (the SHA-1 of the pickled payload — same compiled circuit,
#: SP vector and sweep knobs => same key).  A worker process that serves
#: many tasks for the same circuit — repeated shard submissions on a
#: long-lived pool, re-submitted table2 roster jobs — re-plans at most
#: once; :data:`_WORKER_STATS` counts the builds so tests can pin that.
_WORKER_BACKENDS: dict[str, object] = {}
_WORKER_STATS = {"plans_built": 0}


def _shard_worker_init(payload: bytes, key: str) -> None:
    """Executor initializer: stash the payload; planning happens lazily."""
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = (key, payload)


def _worker_backend():
    """This worker's backend for the pool's circuit, built at most once.

    ``min_vector_work=0``: the parent-level crossover guard already decided
    this workload is large enough for processes, so every shard runs the
    vectorized sweep (workers carry no scalar engine to fall back to).
    ``schedule="input"``: the parent's partitioner already cone-clustered
    the site list, so shards arrive pre-ordered and workers must not
    permute them again (packed arrays stay aligned with the shard).
    """
    key, payload = _WORKER_PAYLOAD
    backend = _WORKER_BACKENDS.get(key)
    if backend is None:
        from repro.core.epp_batch import BatchEPPBackend

        (compiled, signal_probs, track_polarity, batch_size, prune,
         cells, chunking, rows) = pickle.loads(payload)
        backend = BatchEPPBackend(
            compiled,
            signal_probs,
            track_polarity=track_polarity,
            batch_size=batch_size,
            min_vector_work=0,
            prune=prune,
            schedule="input",
            cells=cells,
            chunking=chunking,
            rows=rows,
        )
        _WORKER_BACKENDS[key] = backend
        _WORKER_STATS["plans_built"] += 1
    return backend


def _run_shard(site_ids: list[int], full: bool, transport: str):
    """One shard's sweep in a worker: packed results or bare P_sensitized.

    Under ``transport="shm"`` the result arrays are written into a shared-
    memory segment and only a :class:`ShmHandle` goes back through the
    executor's pickle channel; under ``"pickle"`` the arrays themselves do
    (the PR-2 wire format).
    """
    backend = _worker_backend()
    if full:
        arrays = backend.pack_sites(site_ids)
    else:
        arrays = (backend.p_sensitized_many(site_ids),)
    if transport == "shm":
        return export_shm(arrays)
    return arrays if full else arrays[0]


def _worker_warmup(delay: float) -> int:
    """Barrier task for :meth:`ShardedEPPEngine.warm`.

    Holds its worker long enough that every concurrently submitted warmup
    task must land on a *distinct* worker, forcing the executor — which
    spawns processes lazily, on submit — to fork and initialize the whole
    pool now rather than inside the caller's timed region.  Planning is
    lazy, so the warmup also builds the worker's backend (through the
    plan cache) before it sleeps: warmed pools never re-plan inside a
    timed region either.
    """
    import time

    _worker_backend()
    time.sleep(delay)
    return os.getpid()


def _worker_cache_stats(delay: float) -> tuple[int, int, int]:
    """Probe task: ``(pid, plans_built, cached_circuits)`` of one worker.

    Takes the same barrier delay as :func:`_worker_warmup` so a batch of
    probes lands on distinct workers.
    """
    import time

    time.sleep(delay)
    return os.getpid(), _WORKER_STATS["plans_built"], len(_WORKER_BACKENDS)


# --------------------------------------------------------------------- driver


class ShardedEPPEngine:
    """Multi-process site-sharded EPP bound to one circuit and SP map.

    Parameters
    ----------
    compiled:
        The compiled circuit (pickled once into the worker pool).
    signal_probs:
        Per-node P(1) indexed by node id, as the vector backend consumes.
    track_polarity:
        Mirrors the engine flag (forwarded to every worker backend).
    jobs:
        Worker process count; default one per available core.
    batch_size:
        Per-chunk site columns inside each worker's sweep.  When omitted,
        the single-process chunk budget is divided across the pool so the
        aggregate resident memory of a sharded run matches the vector
        backend's, instead of multiplying by ``jobs``.
    min_process_work:
        Crossover threshold on ``n_nodes * n_sites`` below which calls run
        on the in-process vector backend; 0 forces the process path.
    shards_per_worker:
        Load-balancing factor (see :data:`_SHARDS_PER_WORKER`).
    mp_context:
        Optional ``multiprocessing`` context; default prefers ``fork``
        (cheapest spin-up) and falls back to the platform default.
    local_backend:
        The in-process :class:`~repro.core.epp_batch.BatchEPPBackend` used
        below the crossover and for materializing worker results (built on
        demand when omitted; ``EPPEngine`` passes its cached one).
    prune / schedule:
        The cone-aware sweep knobs (see
        :class:`~repro.core.epp_batch.BatchEPPBackend`): ``prune`` is
        forwarded to every worker backend; ``schedule`` drives the
        *parent-side* partitioner — ``"auto"``/``"cone"`` orders the site
        list by :func:`~repro.core.schedule.cone_cluster_order` before the
        contiguous shard split, so shards (and the chunks inside each
        worker) share fanout cones.
    cells / chunking / rows:
        The cell-compaction, chunk-width and state-matrix-row-layout
        knobs (see :class:`~repro.core.epp_batch.BatchEPPBackend`),
        forwarded to the local backend and through the payload to every
        worker backend — workers inherit compacted union-of-cones state
        matrices by default, and their packed results (already flat
        arrays, layout-independent) ship through shared memory unchanged.
    transport:
        Result wire format: ``"shm"`` (default on POSIX) ships packed
        arrays through shared-memory segments — only a tiny handle is
        pickled per shard; ``"pickle"`` ships the arrays through the
        executor's result channel.  Per-shard traffic is tallied in
        :attr:`stats` (``shm_shards``/``pickle_shards``/``shm_bytes``/
        ``pickled_array_bytes``).

    The worker pool is created lazily on the first sharded call and reused
    across calls; :meth:`close` (or the context-manager protocol) tears it
    down and releases the local backend's state buffers.  Results are
    identical to ``backend="vector"`` — neither sharding nor scheduling
    can reorder any per-site arithmetic.
    """

    def __init__(
        self,
        compiled,
        signal_probs: Sequence[float],
        track_polarity: bool = True,
        jobs: int | None = None,
        batch_size: int | None = None,
        min_process_work: int = _MIN_PROCESS_WORK,
        shards_per_worker: int = _SHARDS_PER_WORKER,
        mp_context=None,
        local_backend=None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
        rows: str | None = None,
        transport: str | None = None,
    ):
        from repro.core.schedule import (
            resolve_prune,
            validate_cells,
            validate_chunking,
            validate_rows,
            validate_schedule,
        )

        if jobs is not None and int(jobs) < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
        if batch_size is not None and int(batch_size) < 1:
            # Validate here, not just in the local backend's constructor:
            # with a caller-supplied local_backend the bad width would
            # otherwise ship straight into worker_batch_size and crash
            # every worker opaquely on its first shard.
            raise AnalysisError(f"batch_size must be >= 1, got {batch_size}")
        self.compiled = compiled
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        self.track_polarity = track_polarity
        self.min_process_work = min_process_work
        self.shards_per_worker = max(1, int(shards_per_worker))
        self.prune = resolve_prune(prune)
        self.schedule = validate_schedule(schedule)
        self.cells = validate_cells(cells)
        self.chunking = validate_chunking(chunking)
        self.rows = validate_rows(rows)
        if transport is None:
            transport = default_transport()
        if transport not in TRANSPORTS:
            raise AnalysisError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self.transport = transport
        #: Per-engine wire accounting, reset never: ``shm_shards`` /
        #: ``pickle_shards`` count shard results per transport,
        #: ``shm_bytes`` totals segment sizes, ``pickled_array_bytes``
        #: totals the array payloads that crossed the pickle channel
        #: (zero for every shm shard — the acceptance the transport tests
        #: pin).
        self.stats = {
            "shm_shards": 0,
            "pickle_shards": 0,
            "shm_bytes": 0,
            "pickled_array_bytes": 0,
        }
        if local_backend is None:
            from repro.core.epp_batch import BatchEPPBackend

            local_backend = BatchEPPBackend(
                compiled,
                signal_probs,
                track_polarity=track_polarity,
                batch_size=batch_size,
                prune=prune,
                schedule=schedule,
                cells=cells,
                chunking=chunking,
                rows=rows,
            )
        self.local = local_backend
        self.batch_size = self.local.batch_size
        #: The caller's explicit batch_size (None = defaulted) — part of
        #: the engine-level cache identity, so an explicit width never
        #: silently reuses a pool built with the derived default.
        self.requested_batch_size = None if batch_size is None else int(batch_size)
        # Workers each hold their own state matrices, so the per-chunk
        # budget is divided across the pool: aggregate resident memory of a
        # sharded run stays at the single-process budget instead of
        # multiplying by ``jobs``.  Explicit widths were validated >= 1
        # above; the defaulted branch's floor clamp keeps the division
        # from ever rounding a worker's chunk width to zero when ``jobs``
        # is large relative to the circuit's budgeted width.
        if batch_size is not None:
            self.worker_batch_size = int(batch_size)
        else:
            from repro.core.epp_batch import default_batch_size

            self.worker_batch_size = max(
                32, default_batch_size(compiled.n) // self.jobs
            )
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._payload: bytes | None = None
        #: Shard futures submitted but not yet delivered to a consumer.
        #: Tracked engine-wide (not just inside the ``_map_shards``
        #: generator) so :meth:`close` can drain undelivered shared-memory
        #: segments even when teardown arrives mid-flight — an interrupt
        #: between a worker's ``export_shm`` and the parent's receive, or
        #: a suspended result generator that never reaches its cleanup.
        self._inflight: set = set()

    # ------------------------------------------------------------- lifecycle

    @property
    def pool_started(self) -> bool:
        """Whether worker processes have been spun up (guard introspection)."""
        return self._pool is not None

    def payload(self) -> bytes:
        """The once-pickled worker payload (cached across pool restarts)."""
        if self._payload is None:
            self._payload = pickle.dumps(
                (
                    self.compiled,
                    self.local.sp,
                    self.track_polarity,
                    self.worker_batch_size,
                    self.prune,
                    self.cells,
                    self.chunking,
                    self.rows,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return self._payload

    def payload_key(self) -> str:
        """Content digest of the payload — the worker plan-cache key.

        Two engines over the same compiled circuit, SP vector and sweep
        knobs produce the same key, so a worker process that ever serves
        both (or the same circuit resubmitted) re-plans exactly once.
        """
        import hashlib

        return hashlib.sha1(self.payload()).hexdigest()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = self._mp_context
            if context is None:
                context = preferred_mp_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=_shard_worker_init,
                initargs=(self.payload(), self.payload_key()),
            )
        return self._pool

    def warm(self) -> "ShardedEPPEngine":
        """Fork and initialize every worker now, not inside a timed region.

        ``ProcessPoolExecutor`` spawns workers lazily on submit, so merely
        constructing the pool warms nothing.  One short barrier task per
        worker is submitted and awaited — each must occupy a distinct
        worker, so all ``jobs`` processes fork and run the payload
        initializer here.  A bounded retry with a longer hold covers the
        race where an early worker finishes before the last one forks.
        """
        from concurrent.futures import wait

        pool = self._ensure_pool()
        delay = 0.02
        for _ in range(3):
            wait([pool.submit(_worker_warmup, delay) for _ in range(self.jobs)])
            processes = getattr(pool, "_processes", None)
            if processes is None or len(processes) >= self.jobs:
                break
            delay *= 4
        return self

    def worker_stats(self) -> dict[int, dict[str, int]]:
        """Per-worker plan-cache counters, probed over the live pool.

        Returns ``{pid: {"plans_built": n, "cached_circuits": m}}``.  One
        barrier probe per worker (the :meth:`warm` pattern) so every
        worker answers for itself; the counters cover the worker's whole
        lifetime — a worker that served many shards of one circuit
        reports ``plans_built == 1``, which is what the plan-cache tests
        pin.
        """
        from concurrent.futures import wait

        pool = self._ensure_pool()
        stats: dict[int, dict[str, int]] = {}
        # The warm() escalation: a fixed barrier delay can let one worker
        # answer two probes on a loaded host, leaving another unprobed —
        # retry with a longer hold until every worker has reported.
        delay = 0.05
        for _ in range(3):
            futures = [
                pool.submit(_worker_cache_stats, delay)
                for _ in range(self.jobs)
            ]
            wait(futures)
            for future in futures:
                pid, plans_built, cached = future.result()
                stats[pid] = {
                    "plans_built": plans_built, "cached_circuits": cached,
                }
            if len(stats) >= self.jobs:
                break
            delay *= 4
        return stats

    def _drain_inflight(self, wait_for_results: bool) -> None:
        """Reclaim the segments of every undelivered shard future.

        Workers relinquish segment ownership the moment they export, so a
        shard result nobody receives — the pool torn down between a
        worker's ``export_shm`` and the parent's future resolution — must
        be unlinked here or it outlives the process in ``/dev/shm``.
        ``wait_for_results`` blocks until uncancelled shards finish and
        discards them synchronously (the deterministic :meth:`close`
        path); ``False`` attaches done-callbacks instead (the best-effort
        ``__del__`` path, which must never block).
        """
        from concurrent.futures import wait

        leftovers, self._inflight = list(self._inflight), set()
        for future in leftovers:
            future.cancel()
        pending = [f for f in leftovers if not f.cancelled()]
        if not pending:
            return
        if wait_for_results:
            wait(pending)
            for future in pending:
                self._discard_shard(future)
        else:  # pragma: no cover - interpreter-shutdown best effort
            for future in pending:
                future.add_done_callback(self._discard_shard)

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool respawns on next use).

        Undelivered in-flight shard results are drained first — their
        shared-memory segments unlinked — so tearing an engine down
        mid-analysis (KeyboardInterrupt, an abandoned result generator, a
        crashed consumer) never leaks ``/dev/shm`` space.  Worker teardown
        also releases the local backend's chunk-width state matrices — the
        parent-side share of the resident set — so a long-lived
        :class:`~repro.core.analysis.SERAnalyzer` reclaims the full
        footprint after ``analyze()`` (buffers rebuild lazily on the next
        bulk call).
        """
        self._drain_inflight(wait_for_results=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.local.release_buffers()

    def __enter__(self) -> "ShardedEPPEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self._drain_inflight(wait_for_results=False)
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # -------------------------------------------------------------- sharding

    def _use_local(self, n_sites: int) -> bool:
        """The crossover guard: does this call even want processes?

        ``min_process_work <= 0`` is an explicit force — every call fans
        out, even with one worker or one site (mirroring the batch
        backend's ``min_vector_work=0`` contract) — so harnesses that
        *must* measure or exercise the process path never silently fall
        back to the in-process sweep.
        """
        if self.min_process_work <= 0:
            return False
        return (
            self.jobs <= 1
            or n_sites < 2
            or self.compiled.n * n_sites < self.min_process_work
        )

    def _shards(self, site_ids: list[int]) -> tuple[list[list[int]], list[list[int]]]:
        """Partition into ``(shards, position_shards)``.

        ``schedule="auto"``/``"cone"`` orders the site list by cone
        signature first (:func:`~repro.core.schedule.cone_cluster_order`),
        so the contiguous split hands each worker sites with overlapping
        fanout cones — the layout the workers' pruned sweeps want.
        ``position_shards`` carries each shard member's position in the
        caller's input order, which is how results find their way back.
        """
        from repro.core.schedule import cone_cluster_order, resolve_schedule

        positions = list(range(len(site_ids)))
        # Resolve "auto" against the *worker* chunk width, not the larger
        # in-process width: workers sweep in worker_batch_size chunks (and
        # shards are smaller still), so clustering pays exactly when the
        # site list spans more than one worker chunk.
        strategy = resolve_schedule(
            self.schedule, len(site_ids), self.worker_batch_size
        )
        if strategy == "cone" and len(site_ids) > 1:
            order = cone_cluster_order(self.compiled, site_ids)
            positions = [int(position) for position in order]
        n_shards = self.jobs * self.shards_per_worker
        position_shards = partition_shards(positions, n_shards)
        shards = [
            [site_ids[position] for position in shard]
            for shard in position_shards
        ]
        return shards, position_shards

    def _receive(self, payload, full: bool):
        """Normalize one worker result to in-process arrays, tallying stats.

        Shared-memory shards are attached, copied out in one memcpy per
        array (far cheaper than the pickle round-trip they replace — and
        every view must be dropped before the segment can close), then
        closed and unlinked here so segment lifetime never escapes this
        method.  Pickle shards pass through with their array payload
        counted.
        """
        if isinstance(payload, ShmHandle):
            views, shm = import_shm(payload)
            try:
                arrays = tuple(view.copy() for view in views)
            finally:
                del views
                try:
                    shm.close()
                finally:
                    shm.unlink()  # never skipped, even if close() raises
            self.stats["shm_shards"] += 1
            self.stats["shm_bytes"] += payload.nbytes
            return arrays if full else arrays[0]
        arrays = payload if full else (payload,)
        self.stats["pickle_shards"] += 1
        self.stats["pickled_array_bytes"] += sum(array.nbytes for array in arrays)
        return payload

    @staticmethod
    def _discard_shard(future) -> None:
        """Unlink an undelivered shard's shared-memory segment, if any.

        Workers hand segment ownership to the parent (their resource
        trackers forget it), so a handle that never reaches a consumer
        must be unlinked here or it outlives the process in ``/dev/shm``.
        """
        try:
            payload = future.result()
        except Exception:
            return  # failed/cancelled shard: no segment was handed over
        if isinstance(payload, ShmHandle):
            try:
                _, shm = import_shm(payload)
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def _map_shards(self, shards: list[list[int]], full: bool):
        """Yield ``(shard_index, worker_result)`` as shards complete.

        On any abnormal exit — a worker exception, a dead pool, or the
        consumer abandoning the generator — every shard result that was
        not delivered is drained and its shared-memory segment unlinked,
        so failed analyses cannot leak ``/dev/shm`` space.
        """
        pool = self._ensure_pool()
        futures = {
            pool.submit(_run_shard, shard, full, self.transport): index
            for index, shard in enumerate(shards)
        }
        self._inflight.update(futures)
        delivered = set()
        try:
            for future in as_completed(futures):
                delivered.add(future)
                self._inflight.discard(future)
                yield futures[future], self._receive(future.result(), full)
        except BrokenProcessPool as exc:
            self._pool = None  # the pool is dead; let a later call respawn it
            raise AnalysisError(
                "sharded EPP worker pool died mid-analysis (worker killed or "
                "out of memory); rerun with fewer jobs or a smaller batch_size"
            ) from exc
        finally:
            leftovers = [f for f in futures if f not in delivered]
            for future in leftovers:
                future.cancel()
            for future in leftovers:
                self._inflight.discard(future)
                if not future.cancelled():
                    # Done callbacks run immediately for finished futures
                    # and from the executor thread otherwise, so an
                    # abandoned/failed analysis returns promptly instead
                    # of blocking here until every in-flight sweep ends.
                    future.add_done_callback(self._discard_shard)

    # --------------------------------------------------------------- queries

    def analyze_sites(self, site_ids: Sequence[int]):
        """Full per-site results for many sites, fanned out across workers.

        Returns ``{site_name: EPPResult}`` in input order, exactly matching
        ``BatchEPPBackend.analyze_sites`` (the shard partition cannot change
        per-site arithmetic).  Workers ship packed arrays; materialization
        into result objects happens here, overlapping the remaining shards'
        sweeps.
        """
        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return {}
        if self._use_local(len(site_ids)):
            return self.local.analyze_sites(site_ids)
        shards, _ = self._shards(site_ids)
        collected: dict = {}
        for index, packed in self._map_shards(shards, full=True):
            self.local.materialize(shards[index], packed, collected)
        # Shards complete out of order and the cone-clustered partition
        # permutes sites besides; one rebuild restores input order.
        names = self.compiled.names
        return {names[site_id]: collected[names[site_id]] for site_id in site_ids}

    def p_sensitized_many(self, site_ids: Sequence[int]):
        """``P_sensitized`` for many sites, aligned with ``site_ids``."""
        import numpy as np

        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return np.empty(0)
        if self._use_local(len(site_ids)):
            return self.local.p_sensitized_many(site_ids)
        shards, position_shards = self._shards(site_ids)
        out = np.empty(len(site_ids))
        for index, values in self._map_shards(shards, full=False):
            out[position_shards[index]] = values
        return out
