"""Sharded multi-process EPP: the full-circuit analysis fanned out over workers.

The batch backend (:mod:`repro.core.epp_batch`) removed the Python
interpreter from the per-gate hot loop; what remains on large circuits is a
single process saturating one core with NumPy sweeps.  This module removes
the single-process ceiling: :class:`ShardedEPPEngine` partitions the site
list into contiguous shards and fans them out across a
``ProcessPoolExecutor``, each worker running the *existing*
:class:`~repro.core.epp_batch.BatchEPPBackend` sweep over its shard.

Design
------
* **One pickled payload, unpickled once per worker.**  The compiled
  circuit (stripped of its cached execution plans — see
  ``CompiledCircuit.__getstate__``), the signal-probability vector and the
  backend knobs are pickled exactly once in the parent and shipped through
  the executor *initializer*; each worker rebuilds its
  :class:`~repro.core.epp_batch.BatchPlan` locally.  Per-task traffic is
  just the shard's site-id list.
* **Compact wire format, shared-memory transport.**  Workers reduce their
  shard to the backend's ``pack_sites`` tuple — five flat NumPy arrays —
  not per-site dataclasses, and (``transport="shm"``, the default on
  POSIX) write those arrays into a ``multiprocessing.shared_memory``
  segment sized from the pack layout; only a tiny
  :class:`ShmHandle` descriptor crosses the process boundary, so the
  parent materializes results without pickling/unpickling megabytes of
  float64 per shard.  ``transport="pickle"`` restores the PR-2 wire
  format (arrays through the executor's pickle channel); per-shard
  traffic is tallied in :attr:`ShardedEPPEngine.stats` either way.  The
  parent materializes :class:`~repro.core.epp.EPPResult` objects while
  the remaining shards are still sweeping, so result packaging overlaps
  worker compute exactly as the single-process pipeline overlapped
  sweep and collect.
* **Cone-clustered shards.**  The site list is ordered by
  :func:`~repro.core.schedule.cone_cluster_order` before the contiguous
  partition (``schedule="auto"``/``"cone"``), so each shard's sites share
  fanout cones and every worker's cone-aware sparse sweep
  (``prune=True``, forwarded to worker backends) prunes dense chunks.
  Results are restored to input order in the parent.
* **Column independence makes sharding exact.**  Every site occupies its
  own state-matrix column and no kernel mixes columns, so neither the
  shard partition nor the cone-clustered permutation can change any
  result: sharded output is bit-identical to the vector backend per site
  (and therefore within the same 1e-9 envelope of the scalar oracle the
  equivalence suite pins).
* **Crossover guard.**  Small workloads (``n_nodes * n_sites`` below
  ``min_process_work``), single-job configurations and single-site calls
  run on the in-process vector backend — an s27-sized circuit never pays
  process spin-up, mirroring the vector backend's own scalar-crossover
  guard.
* **Fault tolerance.**  Column independence makes every shard *exactly
  re-runnable*, so the driver recovers from failures without perturbing
  results: a broken pool (crashed/OOMed worker) is respawned from the
  cached payload, the dead workers' shared-memory segments are
  quarantined (workers export under deterministic
  ``repro_epp_<pid>_<seq>`` names so the parent can find orphans), and
  only *unfinished* shards are re-submitted — delivered packed arrays
  are kept, the merge stays exactly-once.  Slow shards are re-enqueued
  with deterministic seeded backoff once past their per-shard deadline
  (a wedged worker is killed by respawning the pool); a failed shm
  export is retried once on the pickle transport *inside the worker*
  before anything counts as a failure.  The
  :class:`~repro.core.resilience.FaultPolicy` decides what happens when
  a shard exhausts its retry budget: raise a typed error
  (:mod:`repro.errors`), or — ``on_failure="degrade"`` — finish the
  remaining shards on an in-process backend built with the *worker's*
  knobs, so results stay bit-identical even then.  Every recovery is
  ``np.array_equal`` to a clean run; :mod:`repro.testing.faults` is the
  seeded harness that proves it.

Selection: ``EPPEngine.analyze(backend="sharded", jobs=4)`` (CLI:
``--backend sharded --jobs 4``); passing ``jobs=`` alone implies the
sharded backend.  Resilience knobs: ``retries=``, ``shard_timeout=``,
``on_failure=`` (CLI: ``--retries``, ``--shard-timeout``,
``--on-worker-failure``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.resilience import Deadline, FaultPolicy, ShardOutcome
from repro.errors import (
    AnalysisConfigError,
    AnalysisError,
    RetryBudgetExceededError,
    ShardTimeoutError,
    WorkerCrashError,
)

__all__ = [
    "PickleFallback",
    "ShardedEPPEngine",
    "ShmHandle",
    "default_jobs",
    "default_transport",
    "export_shm",
    "import_shm",
    "partition_shards",
    "preferred_mp_context",
    "reap_orphan_segments",
]

#: Result transports: ``shm`` round-trips packed arrays through
#: ``multiprocessing.shared_memory`` segments (zero array pickling);
#: ``pickle`` ships them through the executor's result channel (the PR-2
#: wire format, kept for non-POSIX hosts and as a differential reference).
TRANSPORTS = ("shm", "pickle")


def default_transport() -> str:
    """``shm`` where POSIX shared memory is available, else ``pickle``.

    Windows shared-memory segments die with their last open handle, so a
    worker cannot safely hand a segment to the parent after returning;
    the pickle wire format stays the default there.
    """
    if os.name != "posix":
        return "pickle"
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - py3.8+ always has it
        return "pickle"
    return "shm"

#: Below this ``n_nodes * n_sites`` product the whole call runs on the
#: in-process vector backend: process spin-up plus payload transfer costs
#: on the order of 100 ms, which a sub-second sweep cannot amortize.  The
#: threshold sits between s1423-sized full-circuit runs (~0.7M, fastest
#: in-process) and s9234-sized runs (~35M, where sharding is the point).
_MIN_PROCESS_WORK = 4_000_000

#: Shards per worker.  Cone sizes vary wildly across a circuit, so handing
#: every worker exactly one shard invites stragglers; a few shards per
#: worker lets the executor rebalance without shrinking shards so far that
#: per-task overhead shows.
_SHARDS_PER_WORKER = 4


def default_jobs() -> int:
    """Worker count when ``jobs`` is not given: one per available core."""
    return os.cpu_count() or 1


def preferred_mp_context():
    """The cheapest multiprocessing context this platform offers.

    ``fork`` inherits the parent image — payload bytes land in the child
    for free and spin-up is milliseconds; spawn/forkserver platforms
    re-import and unpickle, which the initializer designs support
    identically.  Shared by the sharded driver and the table2 roster pool
    (:mod:`repro.experiments.table2`), so every pool in the tree picks
    workers the same way.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def partition_shards(items: list, n_shards: int) -> list[list]:
    """Split ``items`` into at most ``n_shards`` contiguous, balanced runs.

    Contiguity keeps the merged result dict in input order (shards are
    collected out of order but merged in shard order); balance keeps the
    largest shard within one item of the smallest.
    """
    n = len(items)
    n_shards = max(1, min(n_shards, n))
    base, extra = divmod(n, n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


# ------------------------------------------------------------ shm transport

#: Prefix of worker-exported segment names: ``repro_epp_<pid>_<seq>``.
#: Deterministic names are the recovery hook — a crashed worker leaves
#: its undelivered exports in ``/dev/shm`` under its own pid, so the
#: parent can quarantine (unlink) exactly the dead workers' orphans
#: without guessing at the random ``psm_*`` names anonymous segments get.
_SHM_NAME_PREFIX = "repro_epp_"

#: Per-process counter behind :func:`_segment_name` (workers only).
_SHM_SEQ = itertools.count()


def _segment_name() -> str:
    """A fresh deterministic segment name for this process's next export."""
    return f"{_SHM_NAME_PREFIX}{os.getpid()}_{next(_SHM_SEQ)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass
    # Signal 0 succeeds on zombies, but a zombie can never touch its
    # segments again — without this, a crashed host's not-yet-reaped
    # workers would keep their orphan exports pinned in /dev/shm.
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        if stat[stat.rindex(b")") + 2 : stat.rindex(b")") + 3] == b"Z":
            return False
    except (OSError, ValueError):
        pass
    return True


def reap_orphan_segments() -> int:
    """Unlink ``repro_epp_*`` segments whose creating process is dead.

    The in-process quarantine path
    (:meth:`ShardedEPPEngine._quarantine_segments`) cleans up after
    workers the *parent* watched die.  When the parent itself is killed
    (kill -9 mid-sweep), exported-but-undelivered segments outlive
    everyone; their deterministic ``repro_epp_<pid>_<seq>`` names make
    them reapable by the next process that resumes the work.  Called on
    checkpoint resume and at server startup; only segments whose
    embedded pid no longer exists are touched, so live sweeps in other
    processes are never disturbed.  Returns the number unlinked.
    """
    shm_dir = "/dev/shm"
    if os.name != "posix" or not os.path.isdir(shm_dir):
        return 0
    removed = 0
    for name in os.listdir(shm_dir):
        if not name.startswith(_SHM_NAME_PREFIX):
            continue
        tail = name[len(_SHM_NAME_PREFIX):]
        pid_text = tail.split("_", 1)[0]
        if not pid_text.isdigit() or _pid_alive(int(pid_text)):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:
            continue
        removed += 1
    return removed


@dataclass(frozen=True)
class PickleFallback:
    """A shard result demoted to the executor's pickle channel.

    Wraps the arrays a worker ships after its shared-memory export
    failed: the sweep had already produced a correct result, so the
    worker retries *delivery* (not the shard) on the pickle transport —
    the wrapper is how the parent tells a deliberate ``transport=
    "pickle"`` shard from a fallback, and counts the latter.
    """

    payload: object


@dataclass(frozen=True)
class ShmHandle:
    """Picklable descriptor of one shard's shared-memory result segment.

    The only thing the executor's result channel carries under
    ``transport="shm"``: a segment name plus the ``(shape, dtype, offset)``
    layout of each packed array — a few hundred bytes regardless of how
    many megabytes the arrays themselves occupy.  The parent attaches,
    reads zero-copy views, then closes and unlinks the segment.
    """

    name: str
    fields: tuple[tuple[tuple[int, ...], str, int], ...]
    nbytes: int


def _untrack_shm(shm) -> None:
    """Detach a segment from this process's resource tracker.

    The creating worker hands lifetime ownership to the parent (which
    unlinks after materializing), so the worker-side tracker must forget
    the segment — otherwise it would unlink it again at worker exit.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def export_shm(arrays: Sequence, name: str | None = None) -> ShmHandle:
    """Copy a tuple of arrays into one fresh shared-memory segment.

    Offsets are 64-byte aligned.  The segment is closed (not unlinked) and
    unregistered from the calling process's resource tracker before the
    handle is returned: the receiver owns the lifetime from here.
    ``name`` requests a deterministic segment name (workers pass
    :func:`_segment_name` so the parent can quarantine a dead worker's
    orphans); a collision with a stale segment falls back to an
    anonymous name rather than failing the export.
    """
    import numpy as np
    from multiprocessing import shared_memory

    fields = []
    offset = 0
    contiguous = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            # An object array over a shared buffer would ship raw
            # PyObject pointers to another process — refuse before any
            # segment exists.
            raise AnalysisError(
                f"cannot export dtype {array.dtype} through shared memory"
            )
        contiguous.append(array)
        fields.append((array.shape, array.dtype.str, offset))
        offset += array.nbytes
        offset = (offset + 63) & ~63
    size = max(1, offset)
    if name is None:
        shm = shared_memory.SharedMemory(create=True, size=size)
    else:
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        for array, (shape, dtype, start) in zip(contiguous, fields):
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
            view[...] = array
            del view
        handle = ShmHandle(shm.name, tuple(fields), shm.size)
    except BaseException:
        # The handle never reaches a receiver, so nobody else can reclaim
        # the segment — unlink it here before propagating.
        try:
            shm.close()
        finally:
            shm.unlink()
        raise
    _untrack_shm(shm)
    shm.close()
    return handle


def import_shm(handle: ShmHandle):
    """Attach a handle's segment; returns ``(arrays, shm)``.

    ``arrays`` are zero-copy views into the segment — the caller must drop
    every view before ``shm.close()`` and must ``shm.unlink()`` exactly
    once when done (the exporting side already relinquished ownership).
    """
    import numpy as np
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=handle.name)
    try:
        arrays = tuple(
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            for shape, dtype, offset in handle.fields
        )
    except BaseException:
        # Ownership transferred to this process the moment the worker
        # exported; a failed attach must not orphan the segment.
        shm.close()
        shm.unlink()
        raise
    return arrays, shm


# --------------------------------------------------------------------- worker

#: ``(key, payload)`` of this pool's circuit, stashed by the initializer;
#: the backend itself is built lazily through :func:`_worker_backend` so
#: the build is counted (and skipped) by the plan cache below.
_WORKER_PAYLOAD: tuple[str, bytes] | None = None

#: Worker-side plan cache: one fully-planned backend per *circuit
#: identity* (the SHA-1 of the pickled payload — same compiled circuit,
#: SP vector and sweep knobs => same key).  A worker process that serves
#: many tasks for the same circuit — repeated shard submissions on a
#: long-lived pool, re-submitted table2 roster jobs — re-plans at most
#: once; :data:`_WORKER_STATS` counts the builds so tests can pin that.
_WORKER_BACKENDS: dict[str, object] = {}
_WORKER_STATS = {"plans_built": 0}

#: The pool's :class:`~repro.testing.faults.FaultInjector`, if any —
#: ``None`` in production pools.  Consulted by :func:`_run_shard` at the
#: ``"kernel"`` and ``"export"`` stages of every shard attempt.
_WORKER_INJECTOR = None


def _shard_worker_init(payload: bytes, key: str, injector=None) -> None:
    """Executor initializer: stash the payload; planning happens lazily."""
    global _WORKER_PAYLOAD, _WORKER_INJECTOR
    _WORKER_PAYLOAD = (key, payload)
    _WORKER_INJECTOR = injector


def _worker_backend():
    """This worker's backend for the pool's circuit, built at most once.

    ``min_vector_work=0``: the parent-level crossover guard already decided
    this workload is large enough for processes, so every shard runs the
    vectorized sweep (workers carry no scalar engine to fall back to).
    ``schedule="input"``: the parent's partitioner already cone-clustered
    the site list, so shards arrive pre-ordered and workers must not
    permute them again (packed arrays stay aligned with the shard).
    """
    key, payload = _WORKER_PAYLOAD
    backend = _WORKER_BACKENDS.get(key)
    if backend is None:
        from repro.core.config import AnalysisConfig
        from repro.core.epp_batch import BatchEPPBackend

        data = pickle.loads(payload)
        if isinstance(data, tuple):
            # Tolerant-forward: a pool initialized by a pre-config
            # parent ships the historical bare knob tuple.
            (compiled, signal_probs, track_polarity, batch_size, prune,
             cells, chunking, rows) = data
            config = AnalysisConfig(
                batch_size=batch_size, prune=prune, schedule="input",
                cells=cells, chunking=chunking, rows=rows,
            )
        else:
            compiled = data["compiled"]
            signal_probs = data["signal_probs"]
            track_polarity = data["track_polarity"]
            config = AnalysisConfig.from_wire(data["config"])
        backend = BatchEPPBackend(
            compiled,
            signal_probs,
            track_polarity=track_polarity,
            min_vector_work=0,
            **config.sweep_kwargs(),
        )
        _WORKER_BACKENDS[key] = backend
        _WORKER_STATS["plans_built"] += 1
    return backend


def _run_shard(
    site_ids: list[int],
    full: bool,
    transport: str,
    shard_index: int = 0,
    attempt: int = 1,
):
    """One shard's sweep in a worker: ``(worker_pid, result)``.

    Under ``transport="shm"`` the result arrays are written into a shared-
    memory segment (named ``repro_epp_<pid>_<seq>`` so the parent can
    quarantine orphans after a crash) and only a :class:`ShmHandle` goes
    back through the executor's pickle channel; under ``"pickle"`` the
    arrays themselves do (the PR-2 wire format).  A failed shm export is
    *not* a failed shard — the sweep already produced correct arrays, so
    they are demoted to the pickle channel (wrapped in
    :class:`PickleFallback` so the parent counts the fallback) before
    anything counts as a failure.  ``shard_index``/``attempt`` identify
    this submission to the pool's fault injector, if one is installed.
    """
    injector = _WORKER_INJECTOR
    if injector is not None:
        injector.fire("kernel", shard_index, attempt)
    backend = _worker_backend()
    if full:
        arrays = backend.pack_sites(site_ids)
    else:
        arrays = (backend.p_sensitized_many(site_ids),)
    result = arrays if full else arrays[0]
    if transport == "shm":
        try:
            if injector is not None:
                injector.fire("export", shard_index, attempt)
            return os.getpid(), export_shm(arrays, name=_segment_name())
        except Exception:
            return os.getpid(), PickleFallback(result)
    return os.getpid(), result


def _worker_warmup(delay: float) -> int:
    """Barrier task for :meth:`ShardedEPPEngine.warm`.

    Holds its worker long enough that every concurrently submitted warmup
    task must land on a *distinct* worker, forcing the executor — which
    spawns processes lazily, on submit — to fork and initialize the whole
    pool now rather than inside the caller's timed region.  Planning is
    lazy, so the warmup also builds the worker's backend (through the
    plan cache) before it sleeps: warmed pools never re-plan inside a
    timed region either.
    """
    import time

    _worker_backend()
    time.sleep(delay)
    return os.getpid()


def _worker_cache_stats(delay: float) -> tuple[int, int, int]:
    """Probe task: ``(pid, plans_built, cached_circuits)`` of one worker.

    Takes the same barrier delay as :func:`_worker_warmup` so a batch of
    probes lands on distinct workers.
    """
    import time

    time.sleep(delay)
    return os.getpid(), _WORKER_STATS["plans_built"], len(_WORKER_BACKENDS)


# --------------------------------------------------------------------- driver


class ShardedEPPEngine:
    """Multi-process site-sharded EPP bound to one circuit and SP map.

    Parameters
    ----------
    compiled:
        The compiled circuit (pickled once into the worker pool).
    signal_probs:
        Per-node P(1) indexed by node id, as the vector backend consumes.
    track_polarity:
        Mirrors the engine flag (forwarded to every worker backend).
    jobs:
        Worker process count; default one per available core.
    batch_size:
        Per-chunk site columns inside each worker's sweep.  When omitted,
        the single-process chunk budget is divided across the pool so the
        aggregate resident memory of a sharded run matches the vector
        backend's, instead of multiplying by ``jobs``.
    min_process_work:
        Crossover threshold on ``n_nodes * n_sites`` below which calls run
        on the in-process vector backend; 0 forces the process path.
    shards_per_worker:
        Load-balancing factor (see :data:`_SHARDS_PER_WORKER`).
    mp_context:
        Optional ``multiprocessing`` context; default prefers ``fork``
        (cheapest spin-up) and falls back to the platform default.
    local_backend:
        The in-process :class:`~repro.core.epp_batch.BatchEPPBackend` used
        below the crossover and for materializing worker results (built on
        demand when omitted; ``EPPEngine`` passes its cached one).
    prune / schedule:
        The cone-aware sweep knobs (see
        :class:`~repro.core.epp_batch.BatchEPPBackend`): ``prune`` is
        forwarded to every worker backend; ``schedule`` drives the
        *parent-side* partitioner — ``"auto"``/``"cone"`` orders the site
        list by :func:`~repro.core.schedule.cone_cluster_order` before the
        contiguous shard split, so shards (and the chunks inside each
        worker) share fanout cones.
    cells / chunking / rows:
        The cell-compaction, chunk-width and state-matrix-row-layout
        knobs (see :class:`~repro.core.epp_batch.BatchEPPBackend`),
        forwarded to the local backend and through the payload to every
        worker backend — workers inherit compacted union-of-cones state
        matrices by default, and their packed results (already flat
        arrays, layout-independent) ship through shared memory unchanged.
    transport:
        Result wire format: ``"shm"`` (default on POSIX) ships packed
        arrays through shared-memory segments — only a tiny handle is
        pickled per shard; ``"pickle"`` ships the arrays through the
        executor's result channel.  Per-shard traffic is tallied in
        :attr:`stats` (``shm_shards``/``pickle_shards``/``shm_bytes``/
        ``pickled_array_bytes``).
    policy:
        A :class:`~repro.core.resilience.FaultPolicy` governing shard
        retries, backoff, deadlines and the terminal ``on_failure``
        action.  Mutually exclusive with the individual knobs below.
    retries / shard_timeout / on_failure / deadline:
        Shorthand for the matching :class:`FaultPolicy` fields (``None``
        means "the policy default") — the shapes ``EPPEngine.analyze``
        and the CLI thread through.
    fault_injector:
        A :class:`~repro.testing.faults.FaultInjector` shipped through
        the pool initializer — test-only machinery for staging worker
        crashes, stalls and transport failures deterministically.

    The worker pool is created lazily on the first sharded call and reused
    across calls; :meth:`close` (or the context-manager protocol) tears it
    down and releases the local backend's state buffers.  Results are
    identical to ``backend="vector"`` — neither sharding, scheduling nor
    any recovery path can reorder any per-site arithmetic.  After each
    sharded call, :attr:`last_outcomes` holds one
    :class:`~repro.core.resilience.ShardOutcome` audit record per shard.
    """

    def __init__(
        self,
        compiled,
        signal_probs: Sequence[float],
        track_polarity: bool = True,
        *,
        jobs: int | None = None,
        batch_size: int | None = None,
        min_process_work: int = _MIN_PROCESS_WORK,
        shards_per_worker: int = _SHARDS_PER_WORKER,
        mp_context=None,
        local_backend=None,
        prune: bool | None = None,
        schedule: str | None = None,
        cells: str | None = None,
        chunking: str | None = None,
        rows: str | None = None,
        transport: str | None = None,
        policy: FaultPolicy | None = None,
        retries: int | None = None,
        shard_timeout: float | None = None,
        on_failure: str | None = None,
        deadline: float | None = None,
        fault_injector=None,
        checkpoint=None,
        config: "AnalysisConfig | None" = None,
    ):
        from repro.core.config import AnalysisConfig

        # One validated config is the source of truth for every analysis
        # knob (jobs/batch_size value checks and the unknown-knob guard
        # included); the individual keyword parameters are the
        # backward-compatible spelling and fold into one.  ``config=``
        # plus individual knobs is ambiguous, so it is rejected naming
        # the conflicting fields.
        knob_params = {
            "jobs": jobs, "batch_size": batch_size, "prune": prune,
            "schedule": schedule, "cells": cells, "chunking": chunking,
            "rows": rows, "retries": retries, "shard_timeout": shard_timeout,
            "on_failure": on_failure, "deadline": deadline,
            "fault_injector": fault_injector, "checkpoint": checkpoint,
        }
        if config is None:
            config = AnalysisConfig.from_knobs(
                backend="sharded",
                **{k: v for k, v in knob_params.items() if v is not None},
            )
        else:
            conflicting = sorted(
                name for name, value in knob_params.items()
                if value is not None
            )
            if conflicting:
                raise AnalysisConfigError(
                    "pass either config= or individual analysis knobs, "
                    f"not both (got config= plus {conflicting})"
                )
        resolved = config.resolved()
        #: The validated :class:`~repro.core.config.AnalysisConfig` this
        #: driver runs under (sweep knobs resolved, ``None`` -> auto).
        self.config = resolved
        self.compiled = compiled
        self.jobs = (
            int(resolved.jobs) if resolved.jobs is not None else default_jobs()
        )
        batch_size = resolved.batch_size
        self.track_polarity = track_polarity
        self.min_process_work = min_process_work
        self.shards_per_worker = max(1, int(shards_per_worker))
        self.prune = resolved.prune
        self.schedule = resolved.schedule
        self.cells = resolved.cells
        self.chunking = resolved.chunking
        self.rows = resolved.rows
        if transport is None:
            transport = default_transport()
        if transport not in TRANSPORTS:
            raise AnalysisError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self.transport = transport
        if policy is None:
            policy = FaultPolicy.from_config(resolved)
        elif any(
            getattr(resolved, knob) is not None
            for knob in ("retries", "shard_timeout", "on_failure", "deadline")
        ):
            raise AnalysisError(
                "pass either policy= or the individual resilience knobs "
                "(retries/shard_timeout/on_failure/deadline), not both"
            )
        self.policy = policy
        self.fault_injector = resolved.fault_injector
        #: Directory for the per-shard sweep journal
        #: (:mod:`repro.core.checkpoint`), or ``None`` to disable.  Each
        #: full-result sweep journals completed shards there and resumes
        #: from whatever a previous (possibly killed) process left.
        self.checkpoint = (
            None if resolved.checkpoint is None
            else os.fspath(resolved.checkpoint)
        )
        #: Test hook threaded into :class:`ShardCheckpoint` — called as
        #: ``(shard_index, stored_count)`` after each shard file lands;
        #: the kill-9 chaos test dies here at a deterministic point.
        self._checkpoint_on_store = None
        #: One :class:`~repro.core.resilience.ShardOutcome` per shard of
        #: the most recent sharded call (empty until one runs).
        self.last_outcomes: list[ShardOutcome] = []
        #: Per-engine accounting, reset never.  Wire traffic:
        #: ``shm_shards`` / ``pickle_shards`` count shard results per
        #: transport, ``shm_bytes`` totals segment sizes,
        #: ``pickled_array_bytes`` totals the array payloads that crossed
        #: the pickle channel (zero for every shm shard — the acceptance
        #: the transport tests pin).  Resilience: ``retries`` counts
        #: re-submissions, ``respawns`` pool rebuilds, ``worker_crashes``
        #: pool-break events, ``shard_errors`` in-worker exceptions,
        #: ``shard_timeouts`` per-shard deadline expiries,
        #: ``transport_fallbacks`` shm-export failures demoted to pickle,
        #: ``degraded_shards`` shards finished on the in-process backend,
        #: ``quarantined_segments`` orphaned ``/dev/shm`` segments
        #: unlinked after worker death.  Durability:
        #: ``checkpoint_shards`` counts shards served from the sweep
        #: journal instead of re-sweeping, ``checkpointed_shards`` the
        #: shards journaled to disk as they completed.
        self.stats = {
            "shm_shards": 0,
            "pickle_shards": 0,
            "shm_bytes": 0,
            "pickled_array_bytes": 0,
            "retries": 0,
            "respawns": 0,
            "worker_crashes": 0,
            "shard_errors": 0,
            "shard_timeouts": 0,
            "transport_fallbacks": 0,
            "degraded_shards": 0,
            "quarantined_segments": 0,
            "checkpoint_shards": 0,
            "checkpointed_shards": 0,
        }
        if local_backend is None:
            from repro.core.epp_batch import BatchEPPBackend

            local_backend = BatchEPPBackend(
                compiled,
                signal_probs,
                track_polarity=track_polarity,
                **resolved.sweep_kwargs(),
            )
        self.local = local_backend
        self.batch_size = self.local.batch_size
        #: The caller's explicit batch_size (None = defaulted) — part of
        #: the engine-level cache identity, so an explicit width never
        #: silently reuses a pool built with the derived default.
        self.requested_batch_size = None if batch_size is None else int(batch_size)
        # Workers each hold their own state matrices, so the per-chunk
        # budget is divided across the pool: aggregate resident memory of a
        # sharded run stays at the single-process budget instead of
        # multiplying by ``jobs``.  Explicit widths were validated >= 1
        # above; the defaulted branch's floor clamp keeps the division
        # from ever rounding a worker's chunk width to zero when ``jobs``
        # is large relative to the circuit's budgeted width.
        if batch_size is not None:
            self.worker_batch_size = int(batch_size)
        else:
            from repro.core.epp_batch import default_batch_size

            self.worker_batch_size = max(
                32, default_batch_size(compiled.n) // self.jobs
            )
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._payload: bytes | None = None
        #: Serializes :meth:`close` against itself: the server's drain
        #: path, a context-manager exit and ``__del__`` can all race to
        #: tear the same engine down, and an unserialized double-close
        #: could drain the same in-flight futures twice — unlinking each
        #: shared-memory segment twice (the second unlink of a reused
        #: name could hit a *new* segment).
        self._close_lock = threading.Lock()
        #: Shard futures submitted but not yet delivered to a consumer.
        #: Tracked engine-wide (not just inside the ``_map_shards``
        #: generator) so :meth:`close` can drain undelivered shared-memory
        #: segments even when teardown arrives mid-flight — an interrupt
        #: between a worker's ``export_shm`` and the parent's receive, or
        #: a suspended result generator that never reaches its cleanup.
        self._inflight: set = set()
        #: Lazily built in-process backend with the *worker's* knobs
        #: (``min_vector_work=0``, ``schedule="input"``, the worker chunk
        #: width) for ``on_failure="degrade"`` — degraded shards must run
        #: the exact code path a worker would, so the merged result stays
        #: bit-identical to a clean sharded run.
        self._degraded_backend = None

    # ------------------------------------------------------------- lifecycle

    @property
    def pool_started(self) -> bool:
        """Whether worker processes have been spun up (guard introspection)."""
        return self._pool is not None

    def _worker_config(self):
        """The :class:`~repro.core.config.AnalysisConfig` worker backends
        run under: the worker chunk width, the parent-resolved sweep
        knobs, and ``schedule="input"`` — the parent's partitioner
        already cone-clustered the site list, so workers must not
        permute shards again."""
        from repro.core.config import AnalysisConfig

        return AnalysisConfig(
            batch_size=self.worker_batch_size,
            prune=self.prune,
            schedule="input",
            cells=self.cells,
            chunking=self.chunking,
            rows=self.rows,
        )

    def payload(self) -> bytes:
        """The once-pickled worker payload (cached across pool restarts).

        Ships one wire-format :class:`~repro.core.config.AnalysisConfig`
        instead of the historical bare knob tuple, so growing the knob
        surface never re-threads this seam; :func:`_worker_backend`
        still loads the old tuple shape (tolerant-forward), so a pool
        initialized by an old parent keeps working.
        """
        if self._payload is None:
            self._payload = pickle.dumps(
                {
                    "format": 2,
                    "compiled": self.compiled,
                    "signal_probs": self.local.sp,
                    "track_polarity": self.track_polarity,
                    "config": self._worker_config().to_wire(),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        return self._payload

    def payload_key(self) -> str:
        """Content digest of the payload — the worker plan-cache key.

        Two engines over the same compiled circuit, SP vector and sweep
        knobs produce the same key, so a worker process that ever serves
        both (or the same circuit resubmitted) re-plans exactly once.
        """
        import hashlib

        return hashlib.sha1(self.payload()).hexdigest()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = self._mp_context
            if context is None:
                context = preferred_mp_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=_shard_worker_init,
                initargs=(
                    self.payload(),
                    self.payload_key(),
                    self.fault_injector,
                ),
            )
        return self._pool

    def warm(self, timeout: float | None = 60.0) -> "ShardedEPPEngine":
        """Fork and initialize every worker now, not inside a timed region.

        ``ProcessPoolExecutor`` spawns workers lazily on submit, so merely
        constructing the pool warms nothing.  One short barrier task per
        worker is submitted and awaited — each must occupy a distinct
        worker, so all ``jobs`` processes fork and run the payload
        initializer here.  A bounded retry with a longer hold covers the
        race where an early worker finishes before the last one forks.

        ``timeout`` bounds the *whole* barrier (all escalation rounds):
        a wedged worker used to hang this call forever; now it raises
        :class:`~repro.errors.ShardTimeoutError` once the budget is spent
        (``None`` restores the unbounded wait).
        """
        pool = self._ensure_pool()
        countdown = Deadline(timeout)
        delay = 0.02
        for _ in range(3):
            futures = [
                pool.submit(_worker_warmup, delay) for _ in range(self.jobs)
            ]
            _, not_done = wait(futures, timeout=countdown.remaining())
            if not_done:
                for future in not_done:
                    future.cancel()
                raise ShardTimeoutError(
                    "worker pool warmup barrier timed out (wedged worker?); "
                    "close() the engine to respawn the pool",
                    timeout=timeout,
                )
            processes = getattr(pool, "_processes", None)
            if processes is None or len(processes) >= self.jobs:
                break
            delay *= 4
        return self

    def worker_stats(
        self, timeout: float | None = 60.0
    ) -> dict[int, dict[str, int]]:
        """Per-worker plan-cache counters, probed over the live pool.

        Returns ``{pid: {"plans_built": n, "cached_circuits": m}}``.  One
        barrier probe per worker (the :meth:`warm` pattern) so every
        worker answers for itself; the counters cover the worker's whole
        lifetime — a worker that served many shards of one circuit
        reports ``plans_built == 1``, which is what the plan-cache tests
        pin.  Like :meth:`warm`, ``timeout`` bounds the whole barrier and
        raises :class:`~repro.errors.ShardTimeoutError` instead of
        hanging on a wedged worker.
        """
        pool = self._ensure_pool()
        stats: dict[int, dict[str, int]] = {}
        countdown = Deadline(timeout)
        # The warm() escalation: a fixed barrier delay can let one worker
        # answer two probes on a loaded host, leaving another unprobed —
        # retry with a longer hold until every worker has reported.
        delay = 0.05
        for _ in range(3):
            futures = [
                pool.submit(_worker_cache_stats, delay)
                for _ in range(self.jobs)
            ]
            _, not_done = wait(futures, timeout=countdown.remaining())
            if not_done:
                for future in not_done:
                    future.cancel()
                raise ShardTimeoutError(
                    "worker-stats barrier timed out (wedged worker?); "
                    "close() the engine to respawn the pool",
                    timeout=timeout,
                )
            for future in futures:
                pid, plans_built, cached = future.result()
                stats[pid] = {
                    "plans_built": plans_built, "cached_circuits": cached,
                }
            if len(stats) >= self.jobs:
                break
            delay *= 4
        return stats

    def _drain_inflight_strict(self) -> None:
        """Reclaim the segments of every undelivered shard future.

        Workers relinquish segment ownership the moment they export, so a
        shard result nobody receives — the pool torn down between a
        worker's ``export_shm`` and the parent's future resolution — must
        be unlinked here or it outlives the process in ``/dev/shm``.
        The deterministic :meth:`close` path: blocks until uncancelled
        shards finish and discards them synchronously, and lets any
        unexpected error propagate — this path must never *mask* a leak.
        """
        leftovers, self._inflight = list(self._inflight), set()
        for future in leftovers:
            future.cancel()
        pending = [f for f in leftovers if not f.cancelled()]
        if not pending:
            return
        wait(pending)
        for future in pending:
            self._discard_shard(future)

    def _drain_inflight_best_effort(self) -> None:
        """The ``__del__``-time drain: never blocks, never raises.

        At interpreter shutdown, module globals (``wait``, even builtins)
        may already be torn down and executor threads half-dead — every
        step is individually guarded and failures are swallowed, because
        raising from ``__del__`` here would mask the caller's real error.
        Normal teardown must use :meth:`close` (strict drain) instead;
        keeping the two paths separate is what stops shutdown-race
        tolerance from hiding genuine shm leaks.
        """
        try:
            leftovers, self._inflight = list(self._inflight), set()
        except BaseException:
            return
        for future in leftovers:
            try:
                future.cancel()
                if not future.cancelled():
                    future.add_done_callback(self._discard_shard)
            except BaseException:
                pass

    def _quarantine_segments(self, pids) -> int:
        """Unlink ``/dev/shm`` segments exported by dead worker ``pids``.

        A worker that died between ``export_shm`` and its future's
        resolution leaves an orphaned segment no handle will ever reach.
        Deterministic names (``repro_epp_<pid>_<seq>``) make the orphans
        findable: everything under a dead pid's prefix is garbage — the
        parent holds handles only for *delivered* results, which it has
        already copied out and unlinked.  Returns the number removed.
        """
        prefixes = tuple(f"{_SHM_NAME_PREFIX}{pid}_" for pid in pids)
        if not prefixes or os.name != "posix":
            return 0
        try:
            entries = os.listdir("/dev/shm")
        except OSError:  # pragma: no cover - no /dev/shm on this host
            return 0
        removed = 0
        for entry in entries:
            if entry.startswith(prefixes):
                try:
                    os.unlink(os.path.join("/dev/shm", entry))
                    removed += 1
                except OSError:  # pragma: no cover - concurrent unlink
                    pass
        self.stats["quarantined_segments"] += removed
        return removed

    def _respawn_pool(self) -> None:
        """Tear down a broken or wedged pool and quarantine its segments.

        ``ProcessPoolExecutor`` cannot kill one task, so a wedged worker
        costs the whole pool: terminate every worker, shut the executor
        down without waiting, and unlink whatever segments the dead pids
        left in ``/dev/shm``.  The pool rebuilds lazily from the cached
        payload on the next submit; worker plan caches rebuild the same
        way (counted by ``plans_built``).  The caller must have already
        unregistered — and, for delivered results, received — every
        tracked future: after this, their segments are gone.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = dict(getattr(pool, "_processes", None) or {})
        for process in processes.values():
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            try:
                process.join(timeout=5.0)
            except Exception:  # pragma: no cover - already reaped
                pass
        self._quarantine_segments(processes.keys())
        self.stats["respawns"] += 1

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool respawns on next use).

        Undelivered in-flight shard results are drained first — their
        shared-memory segments unlinked — so tearing an engine down
        mid-analysis (KeyboardInterrupt, an abandoned result generator, a
        crashed consumer) never leaks ``/dev/shm`` space.  Worker teardown
        also releases the local backend's chunk-width state matrices — the
        parent-side share of the resident set — so a long-lived
        :class:`~repro.core.analysis.SERAnalyzer` reclaims the full
        footprint after ``analyze()`` (buffers rebuild lazily on the next
        bulk call).

        Safe to call repeatedly and from concurrent threads: the server's
        drain path, a ``with``-block exit and ``__del__`` may all reach
        here, and the whole teardown runs under a lock so two closers can
        never drain the same in-flight futures (and unlink the same
        ``/dev/shm`` segments) twice.
        """
        with self._close_lock:
            self._drain_inflight_strict()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._degraded_backend is not None:
                self._degraded_backend.release_buffers()
                self._degraded_backend = None
            self.local.release_buffers()

    def __enter__(self) -> "ShardedEPPEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            # Never *block* on the close lock from a finalizer — but if a
            # concurrent close() holds it, that thread owns the teardown
            # and this one must not race it through the same futures.
            if not self._close_lock.acquire(blocking=False):
                return
            try:
                self._drain_inflight_best_effort()
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
            finally:
                self._close_lock.release()
        except BaseException:
            pass

    # -------------------------------------------------------------- sharding

    def _use_local(self, n_sites: int) -> bool:
        """The crossover guard: does this call even want processes?

        ``min_process_work <= 0`` is an explicit force — every call fans
        out, even with one worker or one site (mirroring the batch
        backend's ``min_vector_work=0`` contract) — so harnesses that
        *must* measure or exercise the process path never silently fall
        back to the in-process sweep.
        """
        if self.min_process_work <= 0:
            return False
        return (
            self.jobs <= 1
            or n_sites < 2
            or self.compiled.n * n_sites < self.min_process_work
        )

    def _shards(self, site_ids: list[int]) -> tuple[list[list[int]], list[list[int]]]:
        """Partition into ``(shards, position_shards)``.

        ``schedule="auto"``/``"cone"`` orders the site list by cone
        signature first (:func:`~repro.core.schedule.cone_cluster_order`),
        so the contiguous split hands each worker sites with overlapping
        fanout cones — the layout the workers' pruned sweeps want.
        ``position_shards`` carries each shard member's position in the
        caller's input order, which is how results find their way back.
        """
        from repro.core.schedule import cone_cluster_order, resolve_schedule

        positions = list(range(len(site_ids)))
        # Resolve "auto" against the *worker* chunk width, not the larger
        # in-process width: workers sweep in worker_batch_size chunks (and
        # shards are smaller still), so clustering pays exactly when the
        # site list spans more than one worker chunk.
        strategy = resolve_schedule(
            self.schedule, len(site_ids), self.worker_batch_size
        )
        if strategy == "cone" and len(site_ids) > 1:
            order = cone_cluster_order(self.compiled, site_ids)
            positions = [int(position) for position in order]
        n_shards = self.jobs * self.shards_per_worker
        position_shards = partition_shards(positions, n_shards)
        shards = [
            [site_ids[position] for position in shard]
            for shard in position_shards
        ]
        return shards, position_shards

    def _receive(self, payload, full: bool):
        """Normalize one worker result: ``(arrays, transport_label)``.

        Shared-memory shards are attached, copied out in one memcpy per
        array (far cheaper than the pickle round-trip they replace — and
        every view must be dropped before the segment can close), then
        closed and unlinked here so segment lifetime never escapes this
        method.  Pickle shards pass through with their array payload
        counted; a :class:`PickleFallback` (a worker's failed shm export
        demoted to the pickle channel) additionally bumps
        ``transport_fallbacks``.
        """
        if isinstance(payload, ShmHandle):
            views, shm = import_shm(payload)
            try:
                arrays = tuple(view.copy() for view in views)
            finally:
                del views
                try:
                    shm.close()
                finally:
                    shm.unlink()  # never skipped, even if close() raises
            self.stats["shm_shards"] += 1
            self.stats["shm_bytes"] += payload.nbytes
            return (arrays if full else arrays[0]), "shm"
        if isinstance(payload, PickleFallback):
            self.stats["transport_fallbacks"] += 1
            payload = payload.payload
        arrays = payload if full else (payload,)
        self.stats["pickle_shards"] += 1
        self.stats["pickled_array_bytes"] += sum(array.nbytes for array in arrays)
        return payload, "pickle"

    @staticmethod
    def _discard_shard(future) -> None:
        """Unlink an undelivered shard's shared-memory segment, if any.

        Workers hand segment ownership to the parent (their resource
        trackers forget it), so a handle that never reaches a consumer
        must be unlinked here or it outlives the process in ``/dev/shm``.
        """
        try:
            payload = future.result()
        except BaseException:
            return  # failed/cancelled shard: no segment was handed over
        if isinstance(payload, tuple) and len(payload) == 2:
            payload = payload[1]  # strip the (worker_pid, result) wrapper
        if isinstance(payload, ShmHandle):
            try:
                _, shm = import_shm(payload)
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def _degrade_backend(self):
        """The in-process backend degraded shards run on (built lazily).

        Mirrors :func:`_worker_backend` exactly — ``min_vector_work=0``
        (no scalar crossover on small shards), ``schedule="input"``
        (shards arrive pre-cone-ordered), the worker chunk width — so a
        degraded shard takes the same code path a worker would and the
        merged analysis stays bit-identical to a clean sharded run.
        ``self.local`` would not do: its scalar-crossover guard and
        scheduler could route a small shard differently.
        """
        if self._degraded_backend is None:
            from repro.core.epp_batch import BatchEPPBackend

            self._degraded_backend = BatchEPPBackend(
                self.compiled,
                self.local.sp,
                track_polarity=self.track_polarity,
                min_vector_work=0,
                **self._worker_config().sweep_kwargs(),
            )
        return self._degraded_backend

    def _run_degraded(self, site_ids: list[int], full: bool):
        """One shard on the in-process degrade backend (terminal fallback)."""
        self.stats["degraded_shards"] += 1
        backend = self._degrade_backend()
        if full:
            return backend.pack_sites(site_ids)
        return backend.p_sensitized_many(site_ids)

    def _map_shards(self, shards: list[list[int]], full: bool):
        """Yield ``(shard_index, worker_result)`` as shards complete.

        The resilient scheduler.  Per-column shard independence makes
        every shard exactly re-runnable, so failures are handled by
        re-running — never by perturbing results:

        * A **broken pool** (crashed/OOMed worker) first delivers every
          shard that finished before the break (exactly-once merge: a
          delivered shard is never resubmitted), then respawns the pool
          — quarantining the dead workers' orphaned segments — and
          charges one attempt to each in-flight shard (the executor
          cannot say which one killed the worker).
        * A shard past its **per-shard deadline** is cancelled and
          re-enqueued with deterministic seeded backoff; if it was
          already running the wedged pool is respawned first (collateral
          shards are refunded their attempt and resubmitted at once).
        * A shard that **fails in the worker** is retried with backoff
          until its budget runs out; then ``on_failure`` decides:
          ``"raise"`` fails fast with a typed error, ``"retry"`` raises
          :class:`~repro.errors.RetryBudgetExceededError`, ``"degrade"``
          finishes the shard on the in-process worker-knob backend.
        * Past the **global deadline** the analysis raises — or, under
          ``"degrade"``, finishes every unfinished shard in-process.

        On any abnormal exit — including the consumer abandoning the
        generator — every undelivered shard result is drained and its
        shared-memory segment unlinked, so failed analyses cannot leak
        ``/dev/shm`` space.
        """
        policy = self.policy
        countdown = Deadline(policy.deadline)
        n = len(shards)
        attempts = [0] * n
        first_start = [0.0] * n
        pending: dict = {}  # future -> shard index
        started: dict = {}  # future -> submission time (monotonic)
        ready_at: dict[int, float] = {}  # shard index -> backoff wakeup
        outcomes = self.last_outcomes = []

        def submit(index: int) -> None:
            attempts[index] += 1
            future = self._ensure_pool().submit(
                _run_shard,
                shards[index],
                full,
                self.transport,
                index,
                attempts[index],
            )
            now = time.monotonic()
            if attempts[index] == 1:
                first_start[index] = now
            pending[future] = index
            started[future] = now
            self._inflight.add(future)

        def unregister(future) -> int:
            index = pending.pop(future)
            started.pop(future, None)
            self._inflight.discard(future)
            return index

        def receive(index: int, future):
            worker_pid, body = future.result()
            result, transport = self._receive(body, full)
            outcomes.append(
                ShardOutcome(
                    shard=index,
                    sites=len(shards[index]),
                    attempts=attempts[index],
                    worker_pid=worker_pid,
                    transport=transport,
                    elapsed=time.monotonic() - first_start[index],
                )
            )
            return result

        def degrade(index: int):
            result = self._run_degraded(shards[index], full)
            outcomes.append(
                ShardOutcome(
                    shard=index,
                    sites=len(shards[index]),
                    attempts=attempts[index],
                    worker_pid=None,
                    transport="local",
                    elapsed=time.monotonic()
                    - (first_start[index] or time.monotonic()),
                    degraded=True,
                )
            )
            return result

        def record_failure(index: int, error) -> str:
            """One failed attempt: schedule a retry (with backoff) or
            return ``"degrade"``; raises when the policy says stop."""
            if policy.on_failure == "raise":
                raise error
            if attempts[index] >= policy.max_attempts:
                if policy.on_failure == "degrade":
                    return "degrade"
                raise RetryBudgetExceededError(
                    f"shard {index} failed on all {attempts[index]} "
                    f"attempt(s)",
                    site_ids=shards[index],
                    attempts=attempts[index],
                ) from error
            self.stats["retries"] += 1
            ready_at[index] = time.monotonic() + policy.backoff_delay(
                index, attempts[index]
            )
            return "retry"

        def split_pending() -> tuple[list, list[int]]:
            """Unregister everything in flight: the successfully finished
            futures come back as ``(index, future)`` pairs (deliver them
            *before* any respawn/quarantine touches their segments), the
            rest as bare indices for the caller's recovery path."""
            done_ok: list = []
            rest: list[int] = []
            for future in list(pending):
                index = unregister(future)
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    done_ok.append((index, future))
                else:
                    future.cancel()
                    future.add_done_callback(self._discard_shard)
                    rest.append(index)
            return done_ok, rest

        try:
            for index in range(n):
                submit(index)
            while pending or ready_at:
                now = time.monotonic()
                if countdown.expired():
                    # Global deadline: fail, or finish in-process.
                    if policy.on_failure != "degrade":
                        unfinished = len(pending) + len(ready_at)
                        raise ShardTimeoutError(
                            f"analysis deadline expired with {unfinished} "
                            f"of {n} shard(s) unfinished",
                            timeout=policy.deadline,
                        )
                    leftover = sorted(ready_at)
                    ready_at.clear()
                    done_ok, rest = split_pending()
                    for index, future in done_ok:
                        yield index, receive(index, future)
                    for index in sorted(leftover + rest):
                        yield index, degrade(index)
                    return
                # Shards whose backoff has elapsed go back to the pool.
                for index in [i for i, at in ready_at.items() if at <= now]:
                    del ready_at[index]
                    submit(index)
                if not pending:
                    # Everything is waiting out a backoff: sleep to the
                    # earliest wakeup (bounded by the global deadline).
                    doze = min(ready_at.values()) - now
                    remaining = countdown.remaining()
                    if remaining is not None:
                        doze = min(doze, remaining)
                    if doze > 0:
                        time.sleep(doze)
                    continue
                # Block until the first completion — or the earliest of
                # the per-shard deadlines, backoff wakeups and the global
                # deadline, whichever comes first.
                marks = []
                if policy.shard_timeout is not None and started:
                    marks.append(min(started.values()) + policy.shard_timeout)
                if ready_at:
                    marks.append(min(ready_at.values()))
                remaining = countdown.remaining()
                if remaining is not None:
                    marks.append(now + remaining)
                timeout = max(0.0, min(marks) - now) if marks else None
                done, _ = wait(
                    list(pending), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken = None
                victims: list[int] = []
                for future in done:
                    index = unregister(future)
                    if future.cancelled():
                        # A shutdown race cancelled a queued shard; the
                        # attempt never ran, so resubmit without charge.
                        attempts[index] -= 1
                        ready_at[index] = time.monotonic()
                        continue
                    error = future.exception()
                    if error is None:
                        yield index, receive(index, future)
                    elif isinstance(error, BrokenProcessPool):
                        broken = error
                        victims.append(index)
                    else:
                        self.stats["shard_errors"] += 1
                        if record_failure(index, error) == "degrade":
                            yield index, degrade(index)
                if broken is not None:
                    # The pool is dead: every pending future carries the
                    # same BrokenProcessPool, so deliver what finished
                    # first, respawn (quarantining dead-pid segments),
                    # then charge one attempt to each in-flight shard.
                    self.stats["worker_crashes"] += 1
                    done_ok, rest = split_pending()
                    for index, future in done_ok:
                        yield index, receive(index, future)
                    self._respawn_pool()
                    for index in sorted(victims + rest):
                        error = WorkerCrashError(
                            "sharded EPP worker died mid-shard (killed, "
                            "out of memory, or crashed)",
                            site_ids=shards[index],
                            attempts=attempts[index],
                        )
                        error.__cause__ = broken
                        if record_failure(index, error) == "degrade":
                            yield index, degrade(index)
                    continue
                if policy.shard_timeout is None or not pending:
                    continue
                now = time.monotonic()
                overdue = [
                    (future, index)
                    for future, index in pending.items()
                    if now - started[future] >= policy.shard_timeout
                    and not future.done()
                ]
                if not overdue:
                    continue
                wedged = False
                timed_out: list[int] = []
                for future, index in overdue:
                    unregister(future)
                    timed_out.append(index)
                    if not future.cancel():
                        # Already running: the executor cannot kill one
                        # task, so the wedged worker costs the pool.
                        wedged = True
                    future.add_done_callback(self._discard_shard)
                if wedged:
                    done_ok, rest = split_pending()
                    for index, future in done_ok:
                        yield index, receive(index, future)
                    self._respawn_pool()
                    for index in rest:
                        # Collateral of the respawn, not slow: refund the
                        # attempt and resubmit immediately.
                        attempts[index] -= 1
                        ready_at[index] = now
                for index in timed_out:
                    self.stats["shard_timeouts"] += 1
                    error = ShardTimeoutError(
                        f"shard {index} exceeded its deadline",
                        site_ids=shards[index],
                        attempts=attempts[index],
                        timeout=policy.shard_timeout,
                    )
                    if record_failure(index, error) == "degrade":
                        yield index, degrade(index)
        finally:
            for future in list(pending):
                pending.pop(future, None)
                self._inflight.discard(future)
                future.cancel()
                if not future.cancelled():
                    # Done callbacks run immediately for finished futures
                    # and from the executor thread otherwise, so an
                    # abandoned/failed analysis returns promptly instead
                    # of blocking here until every in-flight sweep ends.
                    future.add_done_callback(self._discard_shard)

    def _map_with_checkpoint(self, shards: list[list[int]], full: bool):
        """:meth:`_map_shards` behind the sweep journal, when configured.

        With no ``checkpoint`` directory this is exactly
        :meth:`_map_shards`.  With one, shards already journaled by a
        previous (possibly killed) process over the *identical* sweep —
        same payload digest, same partition — are yielded immediately
        from disk (``stats["checkpoint_shards"]``), then only the
        unfinished shards go to the pool; each one is journaled
        (``stats["checkpointed_shards"]``) the moment it completes,
        *before* it is merged, so a crash between two merges loses at
        most the shard in flight.  Exactly-once merge is preserved: a
        shard comes from the journal or from the pool, never both.
        """
        if self.checkpoint is None:
            yield from self._map_shards(shards, full)
            return
        from repro.core.checkpoint import ShardCheckpoint

        journal = ShardCheckpoint.open(
            self.checkpoint, f"{self.payload_key()}|full={bool(full)}",
            shards, on_store=self._checkpoint_on_store,
        )
        if journal.stats["resumed"]:
            # A previous process may have died mid-export: its workers'
            # undelivered segments are orphaned under dead pids.
            self.stats["quarantined_segments"] += reap_orphan_segments()
        pending: list[int] = []
        for index in range(len(shards)):
            packed = journal.load(index)
            if packed is None:
                pending.append(index)
                continue
            self.stats["checkpoint_shards"] += 1
            yield index, packed
        if not pending:
            return
        for sub_index, packed in self._map_shards(
            [shards[i] for i in pending], full
        ):
            index = pending[sub_index]
            journal.store(index, packed)
            self.stats["checkpointed_shards"] += 1
            yield index, packed
        # _map_shards rebound last_outcomes and numbered them within the
        # pending subset; restore full-partition indices for the audit.
        for outcome in self.last_outcomes:
            outcome.shard = pending[outcome.shard]

    # --------------------------------------------------------------- queries

    def analyze_sites(self, site_ids: Sequence[int]):
        """Full per-site results for many sites, fanned out across workers.

        Returns ``{site_name: EPPResult}`` in input order, exactly matching
        ``BatchEPPBackend.analyze_sites`` (the shard partition cannot change
        per-site arithmetic).  Workers ship packed arrays; materialization
        into result objects happens here, overlapping the remaining shards'
        sweeps.
        """
        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return {}
        if self._use_local(len(site_ids)):
            return self.local.analyze_sites(site_ids)
        shards, _ = self._shards(site_ids)
        collected: dict = {}
        for index, packed in self._map_with_checkpoint(shards, full=True):
            self.local.materialize(shards[index], packed, collected)
        # Shards complete out of order and the cone-clustered partition
        # permutes sites besides; one rebuild restores input order.
        names = self.compiled.names
        return {names[site_id]: collected[names[site_id]] for site_id in site_ids}

    def pack_sites(self, site_ids: Sequence[int]):
        """Packed per-site arrays for many sites, in input order.

        The sharded counterpart of ``BatchEPPBackend.pack_sites`` — the
        incremental layer (:mod:`repro.core.epp_delta`) splices these
        arrays, so they must be bit-identical to the local backend's for
        the same sites.  They are: columns are computed independently of
        shard membership, shards' packed parts concatenate in shard
        order (which is the concatenated ``position_shards`` order), and
        one inverse permutation restores input order exactly as the
        local backend's ``ordered=True`` path does.
        """
        import numpy as np

        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids or self._use_local(len(site_ids)):
            return self.local.pack_sites(site_ids)
        shards, position_shards = self._shards(site_ids)
        parts: list = [None] * len(shards)
        for index, packed in self._map_with_checkpoint(shards, full=True):
            parts[index] = packed
        packed = tuple(
            np.concatenate([part[i] for part in parts]) for i in range(5)
        )
        positions = np.concatenate(
            [np.asarray(chunk, dtype=np.intp) for chunk in position_shards]
        )
        inverse = np.empty(len(site_ids), dtype=np.intp)
        inverse[positions] = np.arange(len(site_ids), dtype=np.intp)
        return self.local._reorder_packed(packed, inverse)

    def p_sensitized_many(self, site_ids: Sequence[int]):
        """``P_sensitized`` for many sites, aligned with ``site_ids``."""
        import numpy as np

        site_ids = [int(site_id) for site_id in site_ids]
        if not site_ids:
            return np.empty(0)
        if self._use_local(len(site_ids)):
            return self.local.p_sensitized_many(site_ids)
        shards, position_shards = self._shards(site_ids)
        out = np.empty(len(site_ids))
        for index, values in self._map_shards(shards, full=False):
            out[position_shards[index]] = values
        return out
