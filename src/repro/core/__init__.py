"""The paper's core contribution: EPP-based soft-error analysis.

* :mod:`repro.core.fourvalue` — the four-valued probability vector
  ``(Pa, Pā, P0, P1)`` attached to every on-path signal.
* :mod:`repro.core.rules` — per-gate propagation rules (paper Table 1 plus
  derived and generic rules).
* :mod:`repro.core.cone` — on-path cone extraction (paper steps 1 & 2).
* :mod:`repro.core.epp` — the one-pass EPP engine (paper step 3) and
  ``P_sensitized`` computation (scalar reference backend).
* :mod:`repro.core.rules_vec` / :mod:`repro.core.epp_batch` — the
  vectorized rule kernels and the batched level-parallel NumPy backend
  (``EPPEngine.analyze(backend="vector")``), cone-aware by default:
  gate groups are sliced to the rows on some chunk member's fanout cone
  (``prune=``) and chunks are cone-clustered (``schedule=``).
* :mod:`repro.core.schedule` — the scheduling layer: the cached per-node
  reachable-sink :class:`~repro.core.schedule.ConeIndex` and the
  cone-clustered site ordering the sparse sweeps feed on.
* :mod:`repro.core.epp_shard` — the multi-process sharded driver fanning
  cone-clustered site shards across a worker pool of vector backends
  (``EPPEngine.analyze(backend="sharded", jobs=4)``), returning packed
  results through shared-memory segments.
* :mod:`repro.core.baseline` — the random fault-injection estimator the
  paper compares against.
* :mod:`repro.core.analysis` — full SER analysis combining EPP with the
  R_SEU and latching models.
"""

from repro.core.fourvalue import EPPValue
from repro.core.epp import (
    EPPEngine,
    EPPResult,
    available_backends,
    default_backend,
)
from repro.core.epp_shard import ShardedEPPEngine, default_jobs, default_transport
from repro.core.schedule import ConeIndex, cone_cluster_order
from repro.core.baseline import RandomSimulationEstimator
from repro.core.sensitization import combine_sensitization
from repro.core.analysis import SERAnalyzer, NodeSER, CircuitSERReport

__all__ = [
    "EPPValue",
    "EPPEngine",
    "EPPResult",
    "ShardedEPPEngine",
    "ConeIndex",
    "available_backends",
    "cone_cluster_order",
    "default_backend",
    "default_jobs",
    "default_transport",
    "RandomSimulationEstimator",
    "combine_sensitization",
    "SERAnalyzer",
    "NodeSER",
    "CircuitSERReport",
]
