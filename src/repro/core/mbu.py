"""Multi-bit upset (MBU) analysis.

A single energetic particle can upset several physically adjacent nodes at
once; by the mid-2000s multi-node charge collection was already the
emerging concern the single-SEU model of the paper abstracts away.  This
module provides:

* :func:`mbu_p_sensitized` — **exact-semantics** Monte Carlo estimation of
  the probability that a simultaneous flip of a site *group* reaches an
  output (bit-parallel, union-cone resimulation);
* :func:`mbu_independence_estimate` — the cheap analytical approximation
  ``1 - prod(1 - P_sens(site))`` built from per-site EPP values, with the
  caveat documented below;
* :func:`level_adjacent_groups` — a layout proxy that groups nodes at the
  same logic level (physically adjacent cells in a placed row tend to be
  topologically close).

Caveat on the analytical estimate: simultaneous flips *interact* — they
can cancel (two flips feeding an XOR), reinforce, or mask each other — so
the independence combination is neither an upper nor a lower bound.  The
tests quantify the gap against the exact estimator; for signoff use the
simulation path.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.epp import EPPEngine
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import RandomVectorSource

__all__ = [
    "mbu_p_sensitized",
    "mbu_independence_estimate",
    "level_adjacent_groups",
]


def mbu_p_sensitized(
    circuit: Circuit,
    sites: Sequence[str],
    n_vectors: int = 10_000,
    seed: int = 2005,
    word_width: int = 1024,
    state_weights: dict[str, float] | None = None,
) -> float:
    """Monte Carlo ``P_sensitized`` of a simultaneous multi-site flip."""
    if not sites:
        raise AnalysisError("mbu_p_sensitized needs at least one site")
    injector = FaultInjector(circuit)
    weights: dict[str, float] = {}
    for name in circuit.flip_flops:
        weights[name] = (state_weights or {}).get(name, 0.5)
    source = RandomVectorSource(
        circuit.inputs + circuit.flip_flops, seed=seed, weights=weights
    )
    detected = 0
    remaining = n_vectors
    while remaining > 0:
        width = min(word_width, remaining)
        words = source.next_words(width)
        good = injector.simulator.run(words, width)
        detected += injector.multi_detection_word(good, list(sites), width).bit_count()
        remaining -= width
    return detected / n_vectors


def mbu_independence_estimate(engine: EPPEngine, sites: Sequence[str]) -> float:
    """``1 - prod(1 - P_sens(site))`` from per-site EPP analyses.

    Ignores flip interaction (see module docstring); exact when the site
    cones and their input supports are disjoint.
    """
    if not sites:
        raise AnalysisError("mbu_independence_estimate needs at least one site")
    survive = 1.0
    for site in sites:
        survive *= 1.0 - engine.p_sensitized(site)
    return 1.0 - survive


def level_adjacent_groups(
    circuit: Circuit, group_size: int = 2, max_groups: int | None = None
) -> list[list[str]]:
    """Plausible MBU site groups: runs of gates at the same logic level.

    A placed row tends to hold cells of similar depth, so consecutive
    same-level gates are a reasonable physical-adjacency proxy when no
    layout is available (the standard substitute in academic studies).
    """
    if group_size < 2:
        raise AnalysisError(f"group_size must be >= 2, got {group_size}")
    compiled = circuit.compiled()
    by_level: dict[int, list[str]] = {}
    for node_id in compiled.topo:
        if compiled.gate_type(node_id).is_combinational:
            by_level.setdefault(compiled.level[node_id], []).append(
                compiled.names[node_id]
            )
    groups: list[list[str]] = []
    for level in sorted(by_level):
        row = by_level[level]
        for start in range(0, len(row) - group_size + 1, group_size):
            groups.append(row[start : start + group_size])
            if max_groups is not None and len(groups) >= max_groups:
                return groups
    return groups
