"""SEU-site equivalence collapsing.

Classic fault collapsing, adapted from stuck-at ATPG to SEU analysis: if
node ``u``'s *only* fanout is a BUF or NOT gate ``v`` and ``u`` is not
itself observable (not a primary output or flip-flop D driver), then a
flip at ``u`` produces exactly the flip at ``v`` (a single non-blocking
gate always transmits a single input change), so
``P_sensitized(u) == P_sensitized(v)``.

Chains of buffers/inverters — ubiquitous in mapped netlists — therefore
collapse to a single EPP analysis per chain.  ``R_SEU`` and the SER
product remain per-node (an inverter and the buffer it drives have
different raw rates); only the propagation analysis is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType

__all__ = ["SiteEquivalence", "collapse_seu_sites"]


@dataclass
class SiteEquivalence:
    """Equivalence classes of SEU sites with identical ``P_sensitized``.

    ``representative[name]`` maps every node to its class representative
    (the most-downstream member, whose cone analysis covers the class);
    ``classes`` lists the nontrivial classes (size >= 2), members in
    topological order.
    """

    representative: dict[str, str] = field(default_factory=dict)
    classes: list[list[str]] = field(default_factory=list)

    @property
    def n_saved_analyses(self) -> int:
        """EPP passes avoided by analyzing one representative per class."""
        return sum(len(members) - 1 for members in self.classes)

    def members_of(self, name: str) -> list[str]:
        """All nodes sharing ``name``'s class (including itself)."""
        rep = self.representative.get(name, name)
        for members in self.classes:
            if members[-1] == rep:
                return list(members)
        return [name]


def collapse_seu_sites(circuit: Circuit) -> SiteEquivalence:
    """Compute SEU-site equivalence classes for ``circuit``.

    Only the provably exact rule is applied (single fanout into BUF/NOT,
    driver not directly observable); everything else stays in its own
    class.
    """
    compiled = circuit.compiled()
    sink_set = set(compiled.sink_ids)

    # next_hop[u] = v when flip(u) == flip(v) by the chain rule.
    next_hop: dict[int, int] = {}
    for u in range(compiled.n):
        if u in sink_set:
            continue
        fanout = compiled.fanout(u)
        if len(fanout) != 1:
            continue
        v = fanout[0]
        if compiled.gate_type(v) in (GateType.BUF, GateType.NOT):
            # v must be driven only by u (BUF/NOT are unary, so it is).
            next_hop[u] = v

    # Follow chains to their most-downstream member.
    def find_rep(u: int) -> int:
        seen = set()
        while u in next_hop and u not in seen:
            seen.add(u)
            u = next_hop[u]
        return u

    groups: dict[int, list[int]] = {}
    for u in range(compiled.n):
        rep = find_rep(u)
        groups.setdefault(rep, []).append(u)

    topo_position = {node_id: k for k, node_id in enumerate(compiled.topo)}
    result = SiteEquivalence()
    for rep, members in groups.items():
        members.sort(key=topo_position.__getitem__)
        rep_name = compiled.names[rep]
        for member in members:
            result.representative[compiled.names[member]] = rep_name
        if len(members) >= 2:
            result.classes.append([compiled.names[m] for m in members])
    result.classes.sort(key=lambda members: members[-1])
    return result
