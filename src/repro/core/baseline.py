"""The random-simulation baseline the paper compares against.

Every prior SER estimation flow cited by the paper ([2, 3, 4, 6]) measures
``P_sensitized`` by brute force: apply random vectors, flip the node, and
count how often the flip reaches an output.  Two implementations live here:

* :class:`RandomSimulationEstimator` — a *modern* baseline: bit-parallel
  words, cone-restricted resimulation, good-value amortization across
  sites.  Use it whenever an unbiased Monte Carlo reference is needed
  cheaply (it anchors the Table 2 accuracy column).

* :class:`SerialRandomSimulationEstimator` — the *2005-methodology*
  baseline: one vector at a time, full-circuit good and faulty evaluation
  per vector, no cone restriction.  This is what the paper's SimT column
  timed, so the Table 2 runtime/speedup columns are measured against it.

The ablation benchmark ``bench_ablation_cone`` quantifies how much of the
paper's reported gap a smarter simulator implementation closes.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import RandomVectorSource

__all__ = ["RandomSimulationEstimator", "SerialRandomSimulationEstimator"]


class RandomSimulationEstimator:
    """Monte Carlo ``P_sensitized`` estimation by SEU injection.

    Parameters
    ----------
    circuit:
        Circuit under analysis (combinational or sequential).
    n_vectors:
        Random vectors per site.  The standard error of each estimate is
        at most ``0.5 / sqrt(n_vectors)``.
    input_weights:
        Per-primary-input probability of 1 (default 0.5) — match these to
        the EPP engine's input SPs for an apples-to-apples comparison.
    state_weights:
        Probability of 1 for each flip-flop output.  Sequential circuits
        sample the state vector independently per pattern from these
        marginals (use the same SP map the EPP engine consumes, keeping
        both methods under the same input distribution).  Default 0.5.
    word_width:
        Patterns per bit-parallel pass.
    """

    def __init__(
        self,
        circuit: Circuit,
        n_vectors: int = 10_000,
        seed: int = 2005,
        input_weights: Mapping[str, float] | None = None,
        state_weights: Mapping[str, float] | None = None,
        word_width: int = 1024,
    ):
        if n_vectors < 1:
            raise SimulationError(f"n_vectors must be >= 1, got {n_vectors}")
        if word_width < 1:
            raise SimulationError(f"word_width must be >= 1, got {word_width}")
        self.circuit = circuit
        self.n_vectors = n_vectors
        self.seed = seed
        self.word_width = word_width
        self.injector = FaultInjector(circuit)
        self.compiled = self.injector.compiled

        weights: dict[str, float] = dict(input_weights or {})
        state_weights = dict(state_weights or {})
        for name in circuit.flip_flops:
            weights[name] = state_weights.get(name, 0.5)
        self._sources = circuit.inputs + circuit.flip_flops
        self._weights = weights

    # -------------------------------------------------------------- estimate

    def p_sensitized(self, site: int | str) -> float:
        """Estimate for a single site."""
        return self.estimate([site])[self._site_name(site)]

    def estimate(self, sites: Sequence[int | str]) -> dict[str, float]:
        """Estimates for many sites against a shared vector stream."""
        site_names = [self._site_name(site) for site in sites]
        source = RandomVectorSource(self._sources, seed=self.seed, weights=self._weights)
        counts = {name: 0 for name in site_names}
        remaining = self.n_vectors
        while remaining > 0:
            width = min(self.word_width, remaining)
            words = source.next_words(width)
            good = self.injector.simulator.run(words, width)
            for name in site_names:
                counts[name] += self.injector.detection_count(good, name, width)
            remaining -= width
        return {name: counts[name] / self.n_vectors for name in site_names}

    def estimate_adaptive(
        self,
        site: int | str,
        half_width: float = 0.01,
        confidence_z: float = 1.96,
        max_vectors: int = 1_000_000,
    ) -> tuple[float, int]:
        """Estimate one site until the CI half-width target is met.

        Runs batches until the normal-approximation confidence interval
        half-width ``z * sqrt(p(1-p)/n)`` drops below ``half_width`` (or
        ``max_vectors`` is reached).  Returns ``(estimate, vectors_used)``.
        """
        if not 0.0 < half_width < 0.5:
            raise SimulationError(f"half_width must be in (0, 0.5), got {half_width}")
        name = self._site_name(site)
        source = RandomVectorSource(self._sources, seed=self.seed, weights=self._weights)
        count = 0
        used = 0
        while used < max_vectors:
            width = min(self.word_width, max_vectors - used)
            words = source.next_words(width)
            good = self.injector.simulator.run(words, width)
            count += self.injector.detection_count(good, name, width)
            used += width
            p = count / used
            spread = confidence_z * ((p * (1.0 - p) / used) ** 0.5)
            # Guard: a run of all-0/all-1 observations gives spread 0 long
            # before the estimate is trustworthy; require a floor sample.
            if used >= 4 * self.word_width and spread <= half_width:
                break
        return count / used, used

    def estimate_sampled(
        self, sample: int, seed: int = 0, sites: Sequence[str] | None = None
    ) -> dict[str, float]:
        """Estimate a deterministic random subset of sites.

        Mirrors :meth:`EPPEngine.analyze`'s sampling so the two methods can
        be compared over the same site set.
        """
        if sites is None:
            sites = [
                self.compiled.names[i]
                for i in range(self.compiled.n)
                if self.compiled.gate_type(i).is_combinational
            ]
        sites = list(sites)
        if sample < len(sites):
            sites = random.Random(seed).sample(sites, sample)
        return self.estimate(sites)

    def _site_name(self, site: int | str) -> str:
        if isinstance(site, str):
            if site not in self.compiled.index:
                raise SimulationError(f"unknown error site {site!r}")
            return site
        return self.compiled.names[site]


class SerialRandomSimulationEstimator:
    """Per-vector, full-circuit random fault simulation (2005 methodology).

    For every vector: simulate the fault-free circuit, then for each site
    flip the site's value and re-simulate the *entire* circuit, comparing
    all observable sinks.  No bit-parallel words, no cone restriction —
    deliberately, because this is the implementation style whose runtime
    the paper's SimT column reports, and it is what makes the 4–5
    orders-of-magnitude ESP speedups reproducible in shape.

    The good-value evaluation is shared across sites within one vector, so
    timing a single site is conservative (the paper's per-node SimT pays
    the good simulation too).
    """

    def __init__(
        self,
        circuit: Circuit,
        n_vectors: int = 10_000,
        seed: int = 2005,
        input_weights: Mapping[str, float] | None = None,
        state_weights: Mapping[str, float] | None = None,
    ):
        if n_vectors < 1:
            raise SimulationError(f"n_vectors must be >= 1, got {n_vectors}")
        self.circuit = circuit
        self.n_vectors = n_vectors
        self.seed = seed
        self.injector = FaultInjector(circuit)  # reused for its compiled tables
        self.compiled = self.injector.compiled
        simulator = self.injector.simulator
        self._eval_order = simulator._eval_order
        self._order_position = {
            node_id: position for position, node_id in enumerate(self._eval_order)
        }
        self._simulator = simulator

        weights: dict[str, float] = dict(input_weights or {})
        for name in circuit.flip_flops:
            weights[name] = (state_weights or {}).get(name, 0.5)
        self._sources = circuit.inputs + circuit.flip_flops
        self._weights = weights

    def p_sensitized(self, site: int | str) -> float:
        return self.estimate([site])[self._site_name(site)]

    def estimate(self, sites: Sequence[int | str]) -> dict[str, float]:
        """Serial estimate for many sites against a shared vector stream."""
        compiled = self.compiled
        site_ids = [compiled.index[self._site_name(site)] for site in sites]
        counts = [0] * len(site_ids)
        sinks = compiled.sink_ids
        source = RandomVectorSource(self._sources, seed=self.seed, weights=self._weights)

        for _ in range(self.n_vectors):
            words = source.next_words(1)
            good = self._simulator.run(words, 1)
            for position, site_id in enumerate(site_ids):
                faulty = self._run_with_flip(good, words, site_id)
                for sink in sinks:
                    if faulty[sink] != good[sink]:
                        counts[position] += 1
                        break
        return {
            compiled.names[site_id]: counts[position] / self.n_vectors
            for position, site_id in enumerate(site_ids)
        }

    def _run_with_flip(self, good: list[int], words, site_id: int) -> list[int]:
        """Full-circuit single-vector evaluation with the site value flipped."""
        compiled = self.compiled
        values = list(good)
        order = self._eval_order
        if not compiled.gate_type(site_id).is_combinational:
            # Source-site SEU (input pad or flip-flop state bit).
            values[site_id] ^= 1
            self._simulator.run_into(values, 1, order)
            return values
        # One full pass, with the flip forced right after the site evaluates.
        position = self._order_position[site_id]
        self._simulator.run_into(values, 1, order[: position + 1])
        values[site_id] ^= 1
        self._simulator.run_into(values, 1, order[position + 1 :])
        return values

    def _site_name(self, site: int | str) -> str:
        if isinstance(site, str):
            if site not in self.compiled.index:
                raise SimulationError(f"unknown error site {site!r}")
            return site
        return self.compiled.names[site]
