"""End-to-end SER analysis: ``SER(n_i) = R_SEU x P_latched x P_sensitized``.

:class:`SERAnalyzer` combines the EPP engine's ``P_sensitized`` with the
parametric :class:`~repro.ser.seu_rate.SEURateModel` and
:class:`~repro.ser.latching.LatchingModel` exactly as the paper factors the
error rate, producing per-node and circuit-level FIT together with the
vulnerability ranking the paper motivates ("identify the most vulnerable
components to be protected").

Two optional extensions beyond the paper's two-factor derating:

* **electrical masking** — per-sink pulse attenuation over the traversed
  logic depth (:class:`~repro.ser.electrical.ElectricalMaskingModel`);
* **multi-cycle observability** — an error captured into a flip-flop is
  re-injected as an error site in the next cycle; a bounded-depth fixpoint
  estimates the probability it eventually reaches a primary output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.core.epp import EPPEngine, EPPResult
from repro.core.sensitization import combine_sensitization
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.ser.electrical import ElectricalMaskingModel
from repro.ser.fit import combine_fit, per_second_to_fit
from repro.ser.latching import LatchingModel
from repro.ser.seu_rate import SEURateModel

__all__ = ["NodeSER", "CircuitSERReport", "SERAnalyzer"]


@dataclass(frozen=True)
class NodeSER:
    """SER decomposition of one error site (rates in failures/second)."""

    node: str
    gate_type: str
    r_seu: float
    p_latched: float
    p_sensitized: float
    ser: float
    fit: float
    cone_size: int

    @staticmethod
    def header() -> str:
        return (
            f"{'node':<16} {'type':<6} {'R_SEU':>10} {'P_latch':>8} "
            f"{'P_sens':>8} {'FIT':>12}"
        )

    def format_row(self) -> str:
        return (
            f"{self.node:<16} {self.gate_type:<6} {self.r_seu:>10.3e} "
            f"{self.p_latched:>8.4f} {self.p_sensitized:>8.4f} {self.fit:>12.4e}"
        )


@dataclass
class CircuitSERReport:
    """Per-node and aggregate SER of one analysis run."""

    circuit_name: str
    nodes: dict[str, NodeSER] = field(default_factory=dict)

    @property
    def total_fit(self) -> float:
        return combine_fit(entry.fit for entry in self.nodes.values())

    def ranked(self, top: int | None = None) -> list[NodeSER]:
        """Nodes by decreasing SER contribution (the vulnerability ranking)."""
        ordered = sorted(self.nodes.values(), key=lambda e: (-e.ser, e.node))
        return ordered if top is None else ordered[:top]

    def contribution(self, node: str) -> float:
        """Fraction of the circuit SER contributed by one node."""
        total = self.total_fit
        if total == 0.0:
            return 0.0
        try:
            return self.nodes[node].fit / total
        except KeyError:
            raise AnalysisError(f"node {node!r} not in this report") from None

    def format_table(self, top: int = 10) -> str:
        lines = [
            f"SER report for {self.circuit_name}: "
            f"{len(self.nodes)} sites, total {self.total_fit:.4e} FIT",
            NodeSER.header(),
        ]
        lines += [entry.format_row() for entry in self.ranked(top)]
        return "\n".join(lines)

    def to_dict(self, top: int | None = None) -> dict:
        """JSON-ready view of the report (ranked, optionally truncated).

        Floats pass through untouched — ``repr`` round-trips them exactly
        through JSON, so a report served over the analysis-service wire
        is numerically identical to one assembled in-process.
        """
        return {
            "circuit": self.circuit_name,
            "sites": len(self.nodes),
            "total_fit": self.total_fit,
            "nodes": [
                {
                    "node": entry.node,
                    "gate_type": entry.gate_type,
                    "r_seu": entry.r_seu,
                    "p_latched": entry.p_latched,
                    "p_sensitized": entry.p_sensitized,
                    "ser": entry.ser,
                    "fit": entry.fit,
                    "cone_size": entry.cone_size,
                }
                for entry in self.ranked(top)
            ],
        }


class SERAnalyzer:
    """Full-circuit SER analysis on top of an :class:`EPPEngine`.

    Parameters mirror the paper's factorization; every model is replaceable.
    ``electrical_model`` switches the per-sink attenuation extension on.
    """

    def __init__(
        self,
        circuit: Circuit,
        seu_model: SEURateModel | None = None,
        latching_model: LatchingModel | None = None,
        electrical_model: ElectricalMaskingModel | None = None,
        signal_probs: Mapping[str, float] | None = None,
        sp_method: str = "topological",
        engine: EPPEngine | None = None,
        hardening_factors: Mapping[str, float] | None = None,
    ):
        self.circuit = circuit
        self.seu_model = seu_model if seu_model is not None else SEURateModel()
        self.latching_model = (
            latching_model if latching_model is not None else LatchingModel()
        )
        self.electrical_model = electrical_model
        self.engine = (
            engine
            if engine is not None
            else EPPEngine(circuit, signal_probs=signal_probs, sp_method=sp_method)
        )
        self.compiled = self.engine.compiled
        # Per-node drive-strength factors: upsizing by ``s`` divides the
        # node's sensitive cross section — R_SEU, SER and FIT — by ``s``
        # while leaving P_sensitized untouched (Mohanram & Touba's model,
        # see ser/hardening.py).  Incremental what-if analyses carry their
        # own accumulated factors, which compose with these.
        self.hardening_factors: dict[str, float] = dict(hardening_factors or {})
        for node, factor in self.hardening_factors.items():
            if factor <= 0.0:
                raise AnalysisError(
                    f"hardening factor for {node!r} must be positive, got {factor}"
                )

    # ------------------------------------------------------------- per node

    def node_ser(self, site: str) -> NodeSER:
        """SER decomposition for one site."""
        result = self.engine.node_epp(site)
        return self._assemble(site, result)

    def _assemble(self, site: str, result: EPPResult) -> NodeSER:
        return self._assemble_on(
            self.compiled, site, result, self.hardening_factors.get(site, 1.0)
        )

    def _assemble_on(
        self,
        compiled,
        site: str,
        result: EPPResult,
        hardening_factor: float = 1.0,
    ) -> NodeSER:
        """Assemble one site's SER against an explicit compiled view.

        Incremental what-if results (:meth:`report_for`) live on *edited*
        circuit revisions whose compiled view differs from the analyzer's
        own; everything here indexes through the ``compiled`` argument so
        both paths share one assembly.
        """
        node_id = compiled.index[site]
        gate_type = compiled.gate_type(node_id)
        r_seu = self.seu_model.rate(gate_type, site) / hardening_factor

        if self.electrical_model is None:
            p_latched = self.latching_model.p_latched()
            p_observable = result.p_sensitized
        else:
            # Per-sink: attenuate the pulse over the traversed depth, then
            # apply the latching window at flip-flop sinks (primary outputs
            # observe any surviving pulse).
            p_latched = 1.0  # folded into the per-sink combination below
            site_level = compiled.level[node_id]
            output_set = set(compiled.output_ids)
            terms = []
            for sink_name, value in result.sink_values.items():
                sink_id = compiled.index[sink_name]
                depth = max(0, compiled.level[sink_id] - site_level)
                width = self.electrical_model.width_after(
                    self.latching_model.nominal_pulse_width, depth
                )
                if width == 0.0:
                    continue
                capture = 1.0 if sink_id in output_set else self.latching_model.p_latched(width)
                terms.append(value.error_probability * capture)
            p_observable = combine_sensitization(terms)

        ser = r_seu * p_latched * p_observable
        return NodeSER(
            node=site,
            gate_type=gate_type.value,
            r_seu=r_seu,
            p_latched=p_latched,
            p_sensitized=result.p_sensitized,
            ser=ser,
            fit=per_second_to_fit(ser),
            cone_size=result.cone_size,
        )

    # ------------------------------------------------------------- analysis

    def analyze(
        self,
        sites: Sequence[str] | None = None,
        sample: int | None = None,
        seed: int = 0,
        config=None,
        **knobs,
    ) -> CircuitSERReport:
        """Analyze many sites (default: every combinational gate output).

        Analysis knobs — ``backend``/``batch_size``/``jobs``/``prune``/
        ``schedule``/``cells``/``chunking``/``rows`` plus the resilience
        set (``retries``/``shard_timeout``/``on_failure``/``deadline``/
        ``checkpoint``) — are forwarded to :meth:`EPPEngine.analyze`,
        either individually or as one pre-built
        :class:`~repro.core.config.AnalysisConfig` via ``config=``:
        ``"scalar"`` for the per-site reference path, ``"vector"`` for
        the batched NumPy backend (the default when NumPy is available;
        cone-aware sparse sweeps, cell-compacted kernels, compacted
        union-of-cones state matrices and cone-clustered cost-aware
        chunks by default), ``"sharded"`` (or just passing ``jobs=``)
        for the multi-process site-sharded driver.
        ``retries``/``shard_timeout``/``on_failure``/``deadline``
        configure the sharded driver's
        :class:`~repro.core.resilience.FaultPolicy` — shard retry
        budget, per-shard and global deadlines, and whether an exhausted
        shard raises or degrades to the in-process backend
        (bit-identical either way).  ``checkpoint`` names the sharded
        sweep-journal directory (:mod:`repro.core.checkpoint`): completed
        shards survive the process and an identical re-run resumes from
        them, bit-identical.  Unknown or conflicting knobs raise
        :class:`~repro.errors.AnalysisConfigError` before any backend
        is constructed.
        """
        results = self.engine.analyze(
            sites=sites, sample=sample, seed=seed, config=config, **knobs
        )
        report = CircuitSERReport(self.circuit.name)
        for site, result in results.items():
            report.nodes[site] = self._assemble(site, result)
        return report

    # ------------------------------------------------- incremental what-if

    def snapshot(self, sites: Sequence[str] | None = None, **knobs):
        """A full packed analysis ready for incremental what-if edits.

        Returns a :class:`~repro.core.epp_delta.DeltaAnalysis`; feed it to
        :meth:`analyze_delta` with an
        :class:`~repro.core.epp_delta.EditSet`, and read SER numbers off
        any revision with :meth:`report_for`.  Knobs are the vector/
        sharded analysis knobs (``backend``/``jobs``/``batch_size``/...).
        """
        return self.engine.snapshot(sites=sites, **knobs)

    def analyze_delta(self, prev, edits, sites: Sequence[str] | None = None, **knobs):
        """Re-analyze after ``edits``, re-sweeping only affected sites.

        ``prev`` may be the analyzer's own :meth:`snapshot` or any later
        delta — each revision carries the engine of its own circuit, so
        this dispatches to ``prev.engine`` (not necessarily ours).
        """
        return prev.engine.analyze_delta(prev, edits, sites=sites, **knobs)

    def report_for(self, delta) -> CircuitSERReport:
        """SER report for one what-if revision.

        Assembles against the revision's own compiled circuit and applies
        the revision's accumulated hardening factors (composed with the
        analyzer's, if any) — an upsized gate's R_SEU is divided by its
        factor, exactly as :mod:`repro.ser.hardening` models it.
        """
        compiled = delta.engine.compiled
        report = CircuitSERReport(delta.engine.circuit.name)
        for site, result in delta.results().items():
            factor = (
                self.hardening_factors.get(site, 1.0)
                * delta.hardening.get(site, 1.0)
            )
            report.nodes[site] = self._assemble_on(compiled, site, result, factor)
        return report

    def release_buffers(self) -> None:
        """Reclaim the engine's vectorized-backend state matrices.

        Long-lived analyzers keep their engine (and its backends) cached
        between ``analyze()`` calls; this drops the ~3x chunk-budget
        resident set until the next bulk analysis rebuilds it lazily.
        If a sharded worker pool is live it is shut down too (its workers
        hold their own state copies) — the next sharded ``analyze()``
        respawns it, so prefer calling this between batches, not between
        every call.
        """
        self.engine.release_buffers()

    # ------------------------------------------- multi-cycle extension

    def multi_cycle_observability(self, site: str, cycles: int = 3) -> float:
        """P(error at ``site`` reaches a primary output within ``cycles``).

        Cycle 1 is the combinational propagation of the SEU itself; an error
        captured into a flip-flop (probability = EPP at its D driver times
        the latching window) becomes an error site at the flip-flop output
        in the next cycle.  Captures into distinct flip-flops are treated as
        independent, and a captured error is assumed to persist only one
        cycle — both standard first-order approximations.
        """
        if cycles < 1:
            raise AnalysisError(f"cycles must be >= 1, got {cycles}")
        memo: dict[tuple[str, int], float] = {}
        return self._observability(site, cycles, memo)

    def _observability(
        self, site: str, cycles: int, memo: dict[tuple[str, int], float]
    ) -> float:
        key = (site, cycles)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = 0.0  # cut feedback loops pessimistically during recursion

        result = self.engine.node_epp(site)
        output_set = set(self.compiled.output_ids)
        p_latch = self.latching_model.p_latched()

        direct_terms = []
        capture_terms = []
        d_driver_to_ffs: dict[int, list[str]] = {}
        for dff_id in self.compiled.dff_ids:
            driver = self.compiled.fanin(dff_id)[0]
            d_driver_to_ffs.setdefault(driver, []).append(self.compiled.names[dff_id])

        for sink_name, value in result.sink_values.items():
            sink_id = self.compiled.index[sink_name]
            if sink_id in output_set:
                direct_terms.append(value.error_probability)
            if cycles > 1:
                for ff_name in d_driver_to_ffs.get(sink_id, ()):
                    p_capture = value.error_probability * p_latch
                    if p_capture > 0.0:
                        p_onward = self._observability(ff_name, cycles - 1, memo)
                        capture_terms.append(p_capture * p_onward)

        p = combine_sensitization(direct_terms + capture_terms)
        memo[key] = p
        return p
