"""On-path cone extraction — steps 1 and 2 of the paper's algorithm.

For an error site ``n_i``:

1. *Path construction*: a forward depth-first search over the fanout
   relation collects every **on-path signal** (net on some path from the
   site to a reachable output).  Every gate with at least one on-path input
   is an **on-path gate**; since the search walks the fanout relation, the
   set of on-path gates is exactly the set of cone members.  Traversal does
   not continue through flip-flops: an error arriving at a D pin is
   captured at the clock edge, which the analysis layer models separately.

2. *Ordering*: the cone members are sorted by their position in the global
   topological order, restricting it to the cone — the levelization the
   paper performs with a topological sort.  The EPP pass then visits each
   on-path gate exactly once (linear in the cone size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.netlist.circuit import CompiledCircuit
from repro.netlist.gate_types import GateType

__all__ = ["OnPathCone", "extract_cone", "ConeExtractor"]


@dataclass(frozen=True)
class OnPathCone:
    """The on-path structure of one error site.

    ``gate_order`` excludes the site itself (the site's vector is the
    injected ``1(a)``); ``sinks`` lists the reachable observable sinks —
    primary outputs and flip-flop D drivers — including the site when the
    site is itself observable.
    """

    site: int
    members: frozenset[int]
    gate_order: tuple[int, ...]
    sinks: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of on-path gates (the per-site work of the EPP pass)."""
        return len(self.gate_order)


class ConeExtractor:
    """Cached cone extraction over one compiled circuit."""

    def __init__(self, compiled: CompiledCircuit):
        self.compiled = compiled
        self._sink_set = frozenset(compiled.sink_ids)
        self._topo_position = {
            node_id: position for position, node_id in enumerate(compiled.topo)
        }
        self._cache: dict[int, OnPathCone] = {}

    def cone(self, site: int | str) -> OnPathCone:
        site_id = self.resolve(site)
        cached = self._cache.get(site_id)
        if cached is None:
            cached = self._extract(site_id)
            self._cache[site_id] = cached
        return cached

    def resolve(self, site: int | str) -> int:
        if isinstance(site, str):
            try:
                return self.compiled.index[site]
            except KeyError:
                raise AnalysisError(f"unknown error site {site!r}") from None
        if not 0 <= site < self.compiled.n:
            raise AnalysisError(f"error site id {site} out of range")
        return site

    def _extract(self, site_id: int) -> OnPathCone:
        compiled = self.compiled
        members: set[int] = set()
        stack = [site_id]
        while stack:
            node_id = stack.pop()
            for user in compiled.fanout(node_id):
                if user in members:
                    continue
                if compiled.gate_type(user) is GateType.DFF:
                    continue  # captured, not combinationally traversed
                members.add(user)
                stack.append(user)
        gate_order = tuple(sorted(members, key=self._topo_position.__getitem__))
        sinks = tuple(
            node_id
            for node_id in ((site_id,) + gate_order)
            if node_id in self._sink_set
        )
        return OnPathCone(site_id, frozenset(members), gate_order, sinks)


def extract_cone(compiled: CompiledCircuit, site: int | str) -> OnPathCone:
    """One-shot cone extraction (no caching)."""
    return ConeExtractor(compiled).cone(site)
