"""Crash-durable file primitives shared by the durability layer.

Everything that survives a process here survives it the same way:

* **Atomic replace** — payloads are written to a uniquely-named
  ``*.tmp`` file in the *same directory*, flushed, ``fsync``'d, and then
  ``os.replace``'d over the final name.  A reader never observes a
  half-written file: it sees the old bytes, the new bytes, or nothing.
  Stray ``*.tmp`` files are the only possible crash residue and
  :func:`sweep_temp_files` removes them on the next startup.
* **Self-describing records** — :func:`write_record` prefixes the
  payload with a magic line and a JSON header carrying the payload's
  blake2b checksum, its length, and caller metadata.  :func:`read_record`
  re-verifies all of it on every load and raises
  :class:`CorruptRecordError` on any mismatch, so torn writes from a
  crashed or concurrent writer are *rejected*, never deserialized.
* **Quarantine, don't delete** — :func:`quarantine_file` moves a corrupt
  record into a ``quarantine/`` subdirectory (atomically, unique name)
  so the bad bytes stay inspectable while the caller recomputes.

Used by the artifact store's disk tier
(:mod:`repro.server.artifacts`), the per-shard sweep checkpoints
(:mod:`repro.core.checkpoint`) and the benchmark baseline writer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

__all__ = [
    "CorruptRecordError",
    "atomic_write_bytes",
    "checksum_of",
    "quarantine_file",
    "read_record",
    "sweep_temp_files",
    "write_record",
]

#: First line of every record file; a version bump invalidates old files.
MAGIC = b"repro-durable-v1\n"

#: Crash residue suffix: every writer stages through ``<unique>.tmp`` in
#: the destination directory, so startup sweeps know exactly what to rm.
TMP_SUFFIX = ".tmp"


class CorruptRecordError(Exception):
    """A durable record failed integrity verification.

    Deliberately *not* a :class:`~repro.errors.ReproError`: corruption is
    an infrastructure condition every caller here handles in place
    (quarantine + recompute), never a user-facing failure.
    """


def checksum_of(payload: bytes) -> str:
    """blake2b-16 hex digest — the integrity checksum for record payloads."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def atomic_write_bytes(path: str, blob: bytes, fsync: bool = True) -> None:
    """Write ``blob`` to ``path`` atomically (tmp + fsync + replace).

    The temp file lives in ``path``'s directory so the final
    ``os.replace`` is a same-filesystem rename.  ``fsync=False`` skips
    the data fsync for callers where post-crash loss of the *newest*
    write is acceptable (the rename is still atomic either way).
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".", suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        # Persist the directory entry too, or the rename itself can be
        # lost on power failure even though the data blocks made it.
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def write_record(path: str, payload: bytes, meta: dict, fsync: bool = True) -> None:
    """Atomically write a checksummed record: magic + JSON header + payload.

    ``meta`` must be JSON-serializable; ``checksum`` and ``nbytes`` are
    added by this function and verified by :func:`read_record`.
    """
    header = dict(meta)
    header["checksum"] = checksum_of(payload)
    header["nbytes"] = len(payload)
    blob = MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    atomic_write_bytes(path, blob, fsync=fsync)


def read_record(path: str) -> tuple[dict, bytes]:
    """Load and verify a record; ``(meta, payload)`` or raise.

    Raises :class:`FileNotFoundError` for a missing file and
    :class:`CorruptRecordError` for *anything* wrong with an existing
    one — bad magic, unparseable header, truncated payload, checksum
    mismatch.  Callers quarantine on the latter and recompute.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(MAGIC):
        raise CorruptRecordError(f"{path}: bad magic")
    rest = blob[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise CorruptRecordError(f"{path}: truncated header")
    try:
        meta = json.loads(rest[:newline])
    except ValueError as exc:
        raise CorruptRecordError(f"{path}: unparseable header: {exc}") from None
    if not isinstance(meta, dict):
        raise CorruptRecordError(f"{path}: header is not an object")
    payload = rest[newline + 1:]
    if meta.get("nbytes") != len(payload):
        raise CorruptRecordError(
            f"{path}: payload is {len(payload)} bytes, header says "
            f"{meta.get('nbytes')}"
        )
    if meta.get("checksum") != checksum_of(payload):
        raise CorruptRecordError(f"{path}: payload checksum mismatch")
    return meta, payload


def quarantine_file(path: str, quarantine_dir: str) -> str | None:
    """Move a corrupt file into ``quarantine_dir``; returns the new path.

    The destination name is made unique with pid + counter so repeated
    quarantines of the same key never overwrite evidence.  Returns
    ``None`` if the file vanished first (a concurrent writer replaced
    and a concurrent reader already quarantined it).
    """
    os.makedirs(quarantine_dir, exist_ok=True)
    base = os.path.basename(path)
    for attempt in range(1000):
        target = os.path.join(quarantine_dir, f"{base}.{os.getpid()}.{attempt}")
        if os.path.exists(target):
            continue
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        return target
    return None


def sweep_temp_files(directory: str) -> int:
    """Remove crash-residue ``*.tmp`` files under ``directory`` (recursive).

    Returns the number removed.  Safe against concurrent sweepers: a
    file someone else removed first simply doesn't count.
    """
    removed = 0
    if not os.path.isdir(directory):
        return 0
    for root, _dirs, files in os.walk(directory):
        for name in files:
            if not name.endswith(TMP_SUFFIX):
                continue
            try:
                os.unlink(os.path.join(root, name))
            except OSError:
                continue
            removed += 1
    return removed
