"""Witness extraction: a concrete vector that sensitizes an error site.

``P_sensitized`` says *how often* an SEU escapes; a designer debugging a
vulnerable node also wants one concrete input (and state) assignment that
demonstrates the escape.  :func:`find_sensitizing_vector` searches the
bit-parallel detection words and unpacks the first sensitizing pattern;
for small circuits it falls back to exhaustive enumeration, making the
"no witness exists" answer definitive.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import RandomVectorSource, exhaustive_words

__all__ = ["find_sensitizing_vector"]

_EXHAUSTIVE_LIMIT = 20  # inputs+state bits; 1M patterns in one pass


def find_sensitizing_vector(
    circuit: Circuit,
    site: str,
    n_vectors: int = 100_000,
    seed: int = 0,
    word_width: int = 4096,
) -> dict[str, int] | None:
    """A source assignment under which flipping ``site`` reaches a sink.

    Returns ``{source_name: 0/1}`` covering primary inputs and (for
    sequential circuits) flip-flop outputs, or ``None`` if no sensitizing
    vector was found.  With at most 20 source bits the search is
    exhaustive, so ``None`` is then a proof of untestability; beyond that
    it is a seeded random search over ``n_vectors`` patterns.
    """
    injector = FaultInjector(circuit)
    if site not in injector.compiled.index:
        raise AnalysisError(f"unknown error site {site!r}")
    sources = circuit.inputs + circuit.flip_flops

    if len(sources) <= _EXHAUSTIVE_LIMIT:
        words, width = exhaustive_words(sources)
        good = injector.simulator.run(words, width)
        detect = injector.detection_word(good, site, width)
        if detect == 0:
            return None
        pattern = (detect & -detect).bit_length() - 1  # lowest set bit
        return {name: (words[name] >> pattern) & 1 for name in sources}

    source = RandomVectorSource(sources, seed=seed)
    remaining = n_vectors
    while remaining > 0:
        width = min(word_width, remaining)
        words = source.next_words(width)
        good = injector.simulator.run(words, width)
        detect = injector.detection_word(good, site, width)
        if detect:
            pattern = (detect & -detect).bit_length() - 1
            return {name: (words[name] >> pattern) & 1 for name in sources}
        remaining -= width
    return None
