"""Combining per-output error probabilities into ``P_sensitized``.

Paper Section 2::

    P_sensitized(n_i) = 1 - prod_{j=1..k} (1 - (Pa(PO_j) + Pā(PO_j)))

i.e. the error is *sensitized* if it survives to at least one reachable
output, treating the per-output survival events as independent.  The same
independence caveat as everywhere else in the method applies; the Table 2
%Dif column measures its end-to-end effect.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import AnalysisError

__all__ = ["combine_sensitization"]


def combine_sensitization(error_probabilities: Iterable[float]) -> float:
    """``1 - prod(1 - p_j)`` over per-output error probabilities.

    Values are validated into [0, 1] (allowing tiny floating-point
    excursions, which are clamped).  An empty iterable yields 0.0 — a site
    with no reachable output can never be sensitized.
    """
    survive_none = 1.0
    for p in error_probabilities:
        if p < 0.0:
            if p < -1e-9:
                raise AnalysisError(f"error probability out of range: {p!r}")
            p = 0.0
        elif p > 1.0:
            if p > 1.0 + 1e-9:
                raise AnalysisError(f"error probability out of range: {p!r}")
            p = 1.0
        survive_none *= 1.0 - p
    return 1.0 - survive_none
