"""Fault policies and shard outcome records for the sharded EPP driver.

PR 2's per-column shard independence makes every shard *exactly
re-runnable*: a shard's packed result depends only on the compiled
circuit, the SP vector and the shard's site list — never on which worker
computed it, how many times it was attempted, or what other shards did.
That invariant is what lets :class:`~repro.core.epp_shard.ShardedEPPEngine`
recover from worker crashes, wedged processes and failed shared-memory
exports without perturbing a single bit of the result: a recovered
analysis is ``np.array_equal`` to a clean one.

This module holds the policy layer of that recovery:

* :class:`FaultPolicy` — how failures are handled: the per-shard retry
  budget, exponential backoff with *deterministic seeded jitter* (two
  runs with the same policy produce the same delay schedule — chaos
  tests stay reproducible), the per-shard deadline, the global analysis
  deadline, and the terminal action once the budget is exhausted
  (``on_failure="retry" | "degrade" | "raise"``).
* :class:`ShardOutcome` — the per-shard audit record an analysis leaves
  behind (attempts, worker pid, transport used, elapsed seconds,
  degraded flag), surfaced as
  :attr:`~repro.core.epp_shard.ShardedEPPEngine.last_outcomes`.
* :class:`Deadline` — a small monotonic-clock countdown shared by the
  driver's scheduler loop and the pool barriers.

The fault *injection* side — the seeded harness that crashes workers,
stalls shards past their deadline and poisons shm exports so every
recovery path here is pinned in tests — lives in
:mod:`repro.testing.faults`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import AnalysisError, ConfigError

__all__ = [
    "Deadline",
    "FaultPolicy",
    "ON_FAILURE_MODES",
    "ShardOutcome",
]

#: Terminal actions once a shard's retry budget is exhausted (or, for
#: ``"raise"``, on the first failure): ``retry`` raises
#: :class:`~repro.errors.RetryBudgetExceededError` after the budget,
#: ``degrade`` runs the shard on the in-process vector backend instead
#: (the analysis still completes, bit-identical — the local backend runs
#: the same kernels), ``raise`` fails fast on the first shard failure.
ON_FAILURE_MODES = ("retry", "degrade", "raise")


@dataclass(frozen=True)
class FaultPolicy:
    """How the sharded driver responds to shard failures.

    Parameters
    ----------
    retries:
        Extra attempts allowed per shard beyond the first (so a shard is
        submitted at most ``retries + 1`` times).  ``0`` disables
        retrying without disabling the recovery machinery.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff before re-submission: attempt ``k``'s retry
        waits ``min(backoff_base * backoff_factor**(k-1), backoff_max)``
        seconds (before jitter).  The first submission never waits.
    jitter:
        Fractional jitter on each backoff delay, drawn deterministically
        from ``seed`` and the ``(shard, attempt)`` pair — retries of a
        respawned pool don't stampede, yet the schedule is exactly
        reproducible run to run.
    seed:
        The jitter seed.
    shard_timeout:
        Per-shard deadline in seconds (``None``: no deadline).  A shard
        still unfinished past it is re-enqueued with backoff; if it was
        already running, the wedged worker pool is respawned first.
    deadline:
        Global analysis deadline in seconds (``None``: none).  On expiry
        the analysis raises :class:`~repro.errors.ShardTimeoutError` —
        or, under ``on_failure="degrade"``, finishes the remaining
        shards on the in-process vector backend.
    on_failure:
        The terminal action (see :data:`ON_FAILURE_MODES`).
    """

    retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    shard_timeout: float | None = None
    deadline: float | None = None
    on_failure: str = "retry"

    def __post_init__(self):
        if int(self.retries) < 0:
            raise AnalysisError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise AnalysisError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise AnalysisError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise AnalysisError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.shard_timeout is not None and self.shard_timeout <= 0.0:
            raise AnalysisError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.deadline is not None and self.deadline <= 0.0:
            raise AnalysisError(f"deadline must be > 0, got {self.deadline}")
        if self.on_failure not in ON_FAILURE_MODES:
            raise AnalysisError(
                f"unknown on_failure {self.on_failure!r}; "
                f"choose from {ON_FAILURE_MODES}"
            )

    @classmethod
    def from_knobs(
        cls,
        retries: int | None = None,
        shard_timeout: float | None = None,
        on_failure: str | None = None,
        deadline: float | None = None,
    ) -> "FaultPolicy":
        """Build a policy from the user-facing knobs, defaulting the rest.

        The single resolution point for ``EPPEngine.analyze`` /
        ``SERAnalyzer`` / the CLI: ``None`` means "the default", so the
        engine-level backend cache can compare policies structurally.

        Non-positive timeouts are rejected *here*, with
        :class:`~repro.errors.ConfigError` naming the user-facing knob:
        these values arrive from ``--shard-timeout``/``--request-deadline``
        style flags, and before this check a bad value would surface deep
        in the shard scheduler as an opaque :class:`AnalysisError`.
        """
        if shard_timeout is not None and float(shard_timeout) <= 0.0:
            raise ConfigError(
                f"--shard-timeout must be > 0 seconds, got {shard_timeout} "
                "(omit the flag to disable the per-shard deadline)"
            )
        if deadline is not None and float(deadline) <= 0.0:
            raise ConfigError(
                f"--request-deadline must be > 0 seconds, got {deadline} "
                "(omit the flag to disable the global deadline)"
            )
        if retries is not None and int(retries) < 0:
            raise ConfigError(f"--retries must be >= 0, got {retries}")
        kwargs = {}
        if retries is not None:
            kwargs["retries"] = int(retries)
        if shard_timeout is not None:
            kwargs["shard_timeout"] = float(shard_timeout)
        if on_failure is not None:
            kwargs["on_failure"] = on_failure
        if deadline is not None:
            kwargs["deadline"] = float(deadline)
        return cls(**kwargs)

    @classmethod
    def from_config(cls, config) -> "FaultPolicy":
        """:meth:`from_knobs` over an
        :class:`~repro.core.config.AnalysisConfig` (duck-typed, so this
        module stays import-light)."""
        return cls.from_knobs(
            retries=config.retries,
            shard_timeout=config.shard_timeout,
            on_failure=config.on_failure,
            deadline=config.deadline,
        )

    @property
    def max_attempts(self) -> int:
        """Total submissions allowed per shard (first try included)."""
        return int(self.retries) + 1

    def backoff_delay(self, shard: int, attempt: int) -> float:
        """Seconds to wait before re-submitting ``shard``'s ``attempt``-th
        retry (``attempt`` counts failed submissions so far, >= 1).

        Deterministic: the jitter fraction is drawn from a generator
        seeded by ``(seed, shard, attempt)``, so the full delay schedule
        of an analysis is a pure function of the policy — what lets the
        chaos tests assert recovery timing without sleeping on real
        randomness.
        """
        if attempt < 1:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter and delay > 0.0:
            rng = random.Random(f"{self.seed}:{shard}:{attempt}")
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass
class ShardOutcome:
    """The audit record of one shard's journey through an analysis.

    ``transport`` is how the delivered result crossed the process
    boundary: ``"shm"`` (shared-memory segment), ``"pickle"`` (executor
    result channel — including the worker-side fallback after a failed
    shm export), or ``"local"`` (the shard was degraded to the
    in-process vector backend).  ``attempts`` counts every submission,
    the successful one included; ``worker_pid`` is the pid that produced
    the delivered result (``None`` for local/degraded shards).
    """

    shard: int
    sites: int
    attempts: int = 1
    worker_pid: int | None = None
    transport: str = "shm"
    elapsed: float = 0.0
    degraded: bool = False


@dataclass
class Deadline:
    """Monotonic countdown: ``None`` budget means "never expires".

    A negative budget is clamped to ``0.0`` at construction — the
    countdown is *already expired*, which is the only coherent reading
    of "you had less than no time".  Before the clamp a negative budget
    leaked into ``started + budget - now`` arithmetic and every wait
    computed from :meth:`remaining` still behaved, but consumers doing
    their own ``budget - elapsed`` math (the server's queue accounting)
    saw nonsense negatives.
    """

    budget: float | None
    started: float = field(default_factory=time.monotonic)

    def __post_init__(self):
        if self.budget is not None and self.budget < 0.0:
            self.budget = 0.0

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` when unbounded."""
        if self.budget is None:
            return None
        return max(0.0, self.started + self.budget - time.monotonic())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0
