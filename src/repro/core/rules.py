"""EPP propagation rules — paper Table 1 plus derived and generic rules.

Internally every rule works on plain 4-tuples ``(pa, pa_bar, p0, p1)``
(aliased ``Prob4``) because the EPP engine's hot loop calls these functions
once per on-path gate.  The public wrapper :func:`propagate_values` accepts
and returns :class:`~repro.core.fourvalue.EPPValue`.

Rule provenance
---------------
``AND``, ``OR`` and ``NOT`` are implemented *verbatim* from the paper's
Table 1; ``NAND``/``NOR``/``BUF``/``XNOR`` follow by composing with the NOT
rule; ``XOR`` is derived in closed form as a group convolution over
``Z2 x Z2`` (constant-bit, error-parity); :func:`truth_table_rule` handles
any other cell (MUX, MAJ, ...) by exhaustive enumeration of input states.

The generic rule also *defines* the semantics the closed forms must match:
each input state is a pair of values ``(v|a=0, v|a=1)`` — ``0 -> (0,0)``,
``1 -> (1,1)``, ``a -> (0,1)``, ``ā -> (1,0)`` — and the gate function is
evaluated under both substitutions; the output pair maps back to a state.
Assuming input independence, the output probability of each state is the
sum of joint input-state probabilities producing it.  The property-based
tests assert closed form == generic rule for all gate types.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.core.fourvalue import EPPValue
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_MAJ,
    CODE_MUX,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    GateType,
    truth_table,
)

__all__ = [
    "Prob4",
    "and_rule",
    "nand_rule",
    "or_rule",
    "nor_rule",
    "not_rule",
    "buf_rule",
    "xor_rule",
    "xnor_rule",
    "truth_table_rule",
    "rule_for_code",
    "propagate_values",
    "merge_polarity",
]

#: ``(pa, pa_bar, p0, p1)``
Prob4 = tuple[float, float, float, float]


# --------------------------------------------------------------------------
# Closed forms (Table 1 and derivations)
# --------------------------------------------------------------------------


def and_rule(inputs: Sequence[Prob4]) -> Prob4:
    """Paper Table 1, AND row.

    ``P1 = prod P1(Xi)``;
    ``Pa = prod [P1(Xi) + Pa(Xi)] - P1``;
    ``Pā = prod [P1(Xi) + Pā(Xi)] - P1``;
    ``P0 = 1 - (P1 + Pa + Pā)``.
    """
    p1 = 1.0
    one_or_a = 1.0
    one_or_abar = 1.0
    for pa, pa_bar, p0, p1_i in inputs:
        p1 *= p1_i
        one_or_a *= p1_i + pa
        one_or_abar *= p1_i + pa_bar
    pa_out = one_or_a - p1
    pa_bar_out = one_or_abar - p1
    if pa_out < 0.0:
        pa_out = 0.0
    if pa_bar_out < 0.0:
        pa_bar_out = 0.0
    p0_out = 1.0 - (p1 + pa_out + pa_bar_out)
    if p0_out < 0.0:
        p0_out = 0.0
    return (pa_out, pa_bar_out, p0_out, p1)


def or_rule(inputs: Sequence[Prob4]) -> Prob4:
    """Paper Table 1, OR row (dual of AND with the roles of 0 and 1 swapped)."""
    p0 = 1.0
    zero_or_a = 1.0
    zero_or_abar = 1.0
    for pa, pa_bar, p0_i, p1_i in inputs:
        p0 *= p0_i
        zero_or_a *= p0_i + pa
        zero_or_abar *= p0_i + pa_bar
    pa_out = zero_or_a - p0
    pa_bar_out = zero_or_abar - p0
    if pa_out < 0.0:
        pa_out = 0.0
    if pa_bar_out < 0.0:
        pa_bar_out = 0.0
    p1_out = 1.0 - (p0 + pa_out + pa_bar_out)
    if p1_out < 0.0:
        p1_out = 0.0
    return (pa_out, pa_bar_out, p0, p1_out)


def not_rule(inputs: Sequence[Prob4]) -> Prob4:
    """Paper Table 1, NOT row: polarities swap, constants swap."""
    pa, pa_bar, p0, p1 = inputs[0]
    return (pa_bar, pa, p1, p0)


def buf_rule(inputs: Sequence[Prob4]) -> Prob4:
    return inputs[0]


def nand_rule(inputs: Sequence[Prob4]) -> Prob4:
    pa, pa_bar, p0, p1 = and_rule(inputs)
    return (pa_bar, pa, p1, p0)


def nor_rule(inputs: Sequence[Prob4]) -> Prob4:
    pa, pa_bar, p0, p1 = or_rule(inputs)
    return (pa_bar, pa, p1, p0)


def xor_rule(inputs: Sequence[Prob4]) -> Prob4:
    """Closed-form XOR rule (derived; not in the paper's Table 1).

    Encode each state as ``(c, e)`` with signal value ``c XOR (e AND a)``:
    ``0 -> (0,0)``, ``1 -> (1,0)``, ``a -> (0,1)``, ``ā -> (1,1)``.  XOR adds
    both components in GF(2), so the output distribution is the convolution
    of the input distributions over the group ``Z2 x Z2``.  Note the
    cancellation this encodes: two error-carrying inputs of *any* polarity
    make the output error-free (``a XOR a = 0``, ``a XOR ā = 1``).
    """
    # dist = (P[c=0,e=0], P[c=1,e=0], P[c=0,e=1], P[c=1,e=1])
    acc = (1.0, 0.0, 0.0, 0.0)
    for pa, pa_bar, p0, p1 in inputs:
        d00, d10, d01, d11 = acc
        x00, x10, x01, x11 = p0, p1, pa, pa_bar
        acc = (
            d00 * x00 + d10 * x10 + d01 * x01 + d11 * x11,
            d00 * x10 + d10 * x00 + d01 * x11 + d11 * x01,
            d00 * x01 + d10 * x11 + d01 * x00 + d11 * x10,
            d00 * x11 + d10 * x01 + d01 * x10 + d11 * x00,
        )
    d00, d10, d01, d11 = acc
    return (d01, d11, d00, d10)


def xnor_rule(inputs: Sequence[Prob4]) -> Prob4:
    pa, pa_bar, p0, p1 = xor_rule(inputs)
    return (pa_bar, pa, p1, p0)


# --------------------------------------------------------------------------
# Generic rule
# --------------------------------------------------------------------------

# State order used by the generic rule: index -> (value|a=0, value|a=1).
_STATE_VALUES = ((0, 0), (1, 1), (0, 1), (1, 0))  # 0, 1, a, ā


def truth_table_rule(table: Sequence[int], inputs: Sequence[Prob4]) -> Prob4:
    """Exact-under-independence rule for an arbitrary gate function.

    ``table`` is the gate truth table (LSB-first indexing as produced by
    :func:`repro.netlist.gate_types.truth_table`).  Enumerates all joint
    input states (4^n terms, pruned on zero probability).
    """
    n = len(inputs)
    if len(table) != (1 << n):
        raise AnalysisError(
            f"truth table has {len(table)} rows but the gate has {n} inputs"
        )
    out = [0.0, 0.0, 0.0, 0.0]  # indexed by state: 0, 1, a, ā
    probs = [
        (p0, p1, pa, pa_bar) for (pa, pa_bar, p0, p1) in inputs
    ]  # reorder to state indexing 0,1,a,ā

    def recurse(position: int, weight: float, index0: int, index1: int) -> None:
        if weight == 0.0:
            return
        if position == n:
            v0 = table[index0]
            v1 = table[index1]
            if v0 == v1:
                out[v0] += weight  # blocked at constant v0
            elif v1 == 1:
                out[2] += weight  # (0,1) = a
            else:
                out[3] += weight  # (1,0) = ā
            return
        p_states = probs[position]
        bit = 1 << position
        for state, p in enumerate(p_states):
            if p == 0.0:
                continue
            v0, v1 = _STATE_VALUES[state]
            recurse(
                position + 1,
                weight * p,
                index0 | (bit if v0 else 0),
                index1 | (bit if v1 else 0),
            )

    recurse(0, 1.0, 0, 0)
    return (out[2], out[3], out[0], out[1])


def _mux_rule(inputs: Sequence[Prob4]) -> Prob4:
    return truth_table_rule(truth_table(GateType.MUX, 3), inputs)


def _maj_rule(inputs: Sequence[Prob4]) -> Prob4:
    return truth_table_rule(truth_table(GateType.MAJ, len(inputs)), inputs)


_RULES_BY_CODE = {
    CODE_AND: and_rule,
    CODE_NAND: nand_rule,
    CODE_OR: or_rule,
    CODE_NOR: nor_rule,
    CODE_XOR: xor_rule,
    CODE_XNOR: xnor_rule,
    CODE_NOT: not_rule,
    CODE_BUF: buf_rule,
    CODE_MUX: _mux_rule,
    CODE_MAJ: _maj_rule,
}


def rule_for_code(code: int):
    """The rule function for an integer gate code (engine dispatch)."""
    try:
        return _RULES_BY_CODE[code]
    except KeyError:
        raise AnalysisError(
            f"no EPP propagation rule for gate code {code}; "
            "is a non-combinational node being propagated?"
        ) from None


def merge_polarity(value: Prob4) -> Prob4:
    """Collapse ``ā`` into ``a`` — the polarity-blind ablation.

    With polarity merged the algebra can no longer cancel reconverging
    errors of opposite parity; the ablation benchmark quantifies how much
    accuracy the paper's polarity tracking buys.
    """
    pa, pa_bar, p0, p1 = value
    return (pa + pa_bar, 0.0, p0, p1)


def propagate_values(
    gate_type: GateType, inputs: Sequence[EPPValue]
) -> EPPValue:
    """Public, friendly wrapper: propagate :class:`EPPValue`\\ s through a gate."""
    if not gate_type.is_combinational:
        raise AnalysisError(
            f"cannot propagate through non-combinational node kind {gate_type.value}"
        )
    from repro.netlist.gate_types import GATE_CODES

    rule = rule_for_code(GATE_CODES[gate_type])
    result = rule([value.as_tuple() for value in inputs])
    return EPPValue.clamped(*result)
