"""Cone-aware site scheduling for the batched EPP backends.

The sparse sweep of :mod:`repro.core.epp_batch` only pays for the gate
rows that lie on some chunk member's fanout cone, so the cost of a chunk
is the *union* of its sites' cones — not the circuit size.  Which sites
share a chunk therefore matters: an arbitrary contiguous slice of the
site list mixes cones from all over the circuit and the union saturates,
while a chunk of sites that feed the same outputs keeps the union (and
the per-level kernel calls) small.

This module provides the two pieces of that scheduling layer:

* :class:`ConeIndex` — per-node *reachable-sink signatures*: for every
  node, the set of observable sinks (primary outputs and flip-flop D
  drivers) its fanout cone reaches, packed as one arbitrary-precision
  integer bitset per node.  Built in one reverse-topological pass and
  cached on the :class:`~repro.netlist.circuit.CompiledCircuit` exactly
  like the batch execution plan (and stripped by ``__getstate__`` the
  same way, so sharded pickling stays lean).
* :func:`cone_cluster_order` — a permutation of a site list that groups
  sites by cone signature (dominant sink first, full signature as the
  tiebreak), so sites with overlapping cones land in the same chunk and
  the sparse sweep's row-prune density is maximized.

Scheduling is a pure reordering: every site's column is computed
independently, so the permutation cannot change any per-site result —
callers restore input order after the sweep.  ``resolve_schedule`` maps
the user-facing knob (``schedule="auto" | "cone" | "input"``) to the
strategy actually run: ``auto`` clusters whenever the site list spans
more than one chunk (a single chunk has nothing to cluster across).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError
from repro.netlist.circuit import CompiledCircuit

__all__ = [
    "SCHEDULES",
    "ConeIndex",
    "cone_cluster_order",
    "resolve_prune",
    "resolve_schedule",
]

#: The user-facing scheduling strategies: ``auto`` picks per call,
#: ``cone`` always clusters, ``input`` preserves the caller's site order
#: (the pre-PR-3 contiguous chunking).
SCHEDULES = ("auto", "cone", "input")


def resolve_prune(prune: bool | None) -> bool:
    """Normalize the ``prune=`` knob: ``None`` means enabled.

    The single place the default lives — the backends, the sharded
    driver and the engine-level cache keys all resolve through here, so
    they can never disagree about what ``None`` means.
    """
    return True if prune is None else bool(prune)


def validate_schedule(schedule: str | None) -> str:
    """Normalize the ``schedule=`` knob (``None`` means ``auto``)."""
    if schedule is None:
        return "auto"
    if schedule not in SCHEDULES:
        raise AnalysisError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
        )
    return schedule


def resolve_schedule(schedule: str | None, n_sites: int, batch_size: int) -> str:
    """The strategy actually run for one call: ``"cone"`` or ``"input"``.

    ``auto`` clusters only when the site list spans more than one chunk —
    within a single chunk the sweep visits the union of all cones
    regardless of order, so clustering would be pure overhead.
    """
    schedule = validate_schedule(schedule)
    if schedule != "auto":
        return schedule
    return "cone" if n_sites > batch_size else "input"


class ConeIndex:
    """Per-node reachable-sink signatures over one compiled circuit.

    ``sig[node_id]`` is an integer bitset: bit ``p`` is set iff sink
    ``compiled.sink_ids[p]`` is reachable from ``node_id`` through
    combinational fanout (the node itself counts when it is a sink) —
    exactly the ``sinks`` set of the scalar engine's
    :class:`~repro.core.cone.OnPathCone`, but O(1) per lookup and built
    for *all* nodes in one reverse-topological pass instead of one
    forward search per site.  Arbitrary-precision Python ints keep the
    bitsets exact at any sink count with single-op unions.
    """

    __slots__ = ("n", "n_sinks", "sig")

    def __init__(self, compiled: CompiledCircuit):
        n = compiled.n
        sink_ids = compiled.sink_ids
        self.n = n
        self.n_sinks = len(sink_ids)
        sig = [0] * n
        for position, sink_id in enumerate(sink_ids):
            sig[sink_id] |= 1 << position
        combinational = [
            compiled.gate_type(node_id).is_combinational for node_id in range(n)
        ]
        fanout = compiled.fanout
        # Reverse topological order: every user's signature is final before
        # its drivers accumulate it.  DFF users do not propagate — an error
        # arriving at a D pin is captured at the clock edge, matching the
        # cone extractor's traversal boundary.
        for node_id in reversed(compiled.topo):
            acc = sig[node_id]
            for user_id in fanout(node_id):
                if combinational[user_id]:
                    acc |= sig[user_id]
            sig[node_id] = acc
        self.sig = sig

    def reachable_sink_positions(self, node_id: int) -> list[int]:
        """Positions into ``compiled.sink_ids`` reachable from ``node_id``."""
        signature = self.sig[node_id]
        positions = []
        position = 0
        while signature:
            if signature & 1:
                positions.append(position)
            signature >>= 1
            position += 1
        return positions

    @staticmethod
    def for_compiled(compiled: CompiledCircuit) -> "ConeIndex":
        """The cached index for a compiled circuit (built on first use).

        Cached under ``compiled._cone_index`` — listed in
        ``CompiledCircuit._PLAN_CACHE_ATTRS``, so pickling a compiled
        circuit (the sharded driver's worker payload) drops the index and
        workers rebuild it locally, exactly like the batch plan.
        """
        index = getattr(compiled, "_cone_index", None)
        if index is None:
            index = ConeIndex(compiled)
            compiled._cone_index = index
        return index


def cone_cluster_order(compiled: CompiledCircuit, site_ids: Sequence[int]):
    """A permutation clustering ``site_ids`` by fanout-cone signature.

    Greedy bucketing by dominant sink set: sites sort by their reachable-
    sink bitset value — the most significant set bit (the "dominant"
    sink) is the primary key and the remaining signature bits break ties,
    so sites with identical cones become adjacent and sites sharing their
    dominant sink cluster next to each other.  Level and node id order
    the members of one signature class (topological locality inside a
    cluster).  Returns ``order`` such that ``order[j]`` is the input
    position of the ``j``-th site to sweep; the sort is stable, so equal
    keys preserve input order.
    """
    import numpy as np

    index = ConeIndex.for_compiled(compiled)
    sig = index.sig
    level = compiled.level
    ids = [int(site_id) for site_id in site_ids]
    order = sorted(
        range(len(ids)),
        key=lambda position: (
            sig[ids[position]],
            level[ids[position]],
            ids[position],
        ),
    )
    return np.asarray(order, dtype=np.intp)
