"""Cone-aware site scheduling for the batched EPP backends.

The sparse sweep of :mod:`repro.core.epp_batch` only pays for the gate
rows that lie on some chunk member's fanout cone, so the cost of a chunk
is the *union* of its sites' cones — not the circuit size.  Which sites
share a chunk therefore matters: an arbitrary contiguous slice of the
site list mixes cones from all over the circuit and the union saturates,
while a chunk of sites that feed the same outputs keeps the union (and
the per-level kernel calls) small.

This module provides the two pieces of that scheduling layer:

* :class:`ConeIndex` — per-node *reachable-sink signatures*: for every
  node, the set of observable sinks (primary outputs and flip-flop D
  drivers) its fanout cone reaches, packed as one arbitrary-precision
  integer bitset per node.  Built in one reverse-topological pass and
  cached on the :class:`~repro.netlist.circuit.CompiledCircuit` exactly
  like the batch execution plan (and stripped by ``__getstate__`` the
  same way, so sharded pickling stays lean).
* :func:`cone_cluster_order` — a permutation of a site list that groups
  sites by cone signature (dominant sink first, full signature as the
  tiebreak), so sites with overlapping cones land in the same chunk and
  the sparse sweep's row-prune density is maximized.
* :func:`adaptive_chunk_spans` — cost-aware chunk widths over an
  already-clustered site order: a running union-of-cones signature
  detects cluster boundaries (the next site growing the union into fresh
  sinks) and closes chunks there once past half width, so disjoint cone
  clusters never share a sweep while coherent runs keep the full
  ``batch_size`` width.
* :func:`chunk_prune_saturated` — the dense-fallback cost model: on small
  circuits whose chunk union covers most observable sinks, row pruning
  can only discover that nearly every row is active, so its per-group
  overhead (the reachability test and the fancy-indexed slices) exceeds
  the rows it saves and ``prune="auto"`` runs the chunk dense instead.
* :class:`ChunkCache` + :func:`chunk_cache_key` — the per-chunk memo the
  batch plan hangs its derived chunk artifacts on: the saturation verdict
  above (computed once per distinct site chunk, reused across repeated
  sweeps *and* by the whole-call cluster-sort fallback that consults the
  same predicate) and the compacted-row plans of PR 5 (the union-of-cones
  row remap a compacted sweep indexes instead of the full state matrix).
  Bounded FIFO so pathological callers cycling through thousands of
  distinct chunks cannot grow the cache without limit.

Scheduling is a pure reordering: every site's column is computed
independently, so the permutation cannot change any per-site result —
callers restore input order after the sweep.  ``resolve_schedule`` maps
the user-facing knob (``schedule="auto" | "cone" | "input"``) to the
strategy actually run: ``auto`` clusters whenever the site list spans
more than one chunk (a single chunk has nothing to cluster across).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisConfigError
from repro.netlist.circuit import CompiledCircuit

__all__ = [
    "CELL_MODES",
    "CHUNKINGS",
    "ROW_MODES",
    "SCHEDULES",
    "ChunkCache",
    "ConeIndex",
    "adaptive_chunk_spans",
    "chunk_cache_key",
    "chunk_prune_saturated",
    "cone_cluster_order",
    "resolve_prune",
    "resolve_schedule",
    "validate_cells",
    "validate_chunking",
    "validate_rows",
]

#: The user-facing scheduling strategies: ``auto`` picks per call,
#: ``cone`` always clusters, ``input`` preserves the caller's site order
#: (the pre-PR-3 contiguous chunking).
SCHEDULES = ("auto", "cone", "input")

#: Cell-compaction modes for the sparse sweep kernels: ``auto`` lets the
#: per-group cost model pick (density x arity thresholds), ``on`` forces
#: the compacted kernels for every partially-on-path group, ``off``
#: restores the PR-3 row-sparse kernels.
CELL_MODES = ("auto", "on", "off")

#: Chunk-width strategies: ``adaptive`` aligns chunk boundaries to cone
#: clusters (:func:`adaptive_chunk_spans`), ``fixed`` keeps the flat
#: ``batch_size`` slicing, and ``auto`` applies the calibrated policy
#: (fixed width — but *wider* when every chunk is guaranteed a compacted
#: sweep, where the per-chunk fixed cost the width amortizes no longer
#: includes a full-template restore; see ``BatchEPPBackend._chunk_spans``).
CHUNKINGS = ("auto", "adaptive", "fixed")

#: State-matrix row layouts for pruned sweeps: ``compact`` allocates the
#: chunk's state/mask buffers with only the union-of-cones rows (plus the
#: fanins those rows read and the two sentinel rows) through a per-chunk
#: row remap, so kernels index a small matrix and no dirty-row restore is
#: ever needed; ``full`` keeps the PR-4 full-circuit buffers with the
#: dirty-row incremental reset; ``auto`` is the calibrated policy
#: (currently ``compact`` for every pruned sweep — the remap is pure
#: indexing, bit-identical by construction).  Dense sweeps (``prune=False``
#: or the saturated-chunk fallback) always use full-row buffers: their
#: union *is* the circuit.
ROW_MODES = ("auto", "compact", "full")

#: Above this node count row pruning always pays on full chunks (the
#: skipped rows dwarf the per-group bookkeeping), so the ``prune="auto"``
#: cost model only consults cone signatures below it.
PRUNE_AUTO_MAX_NODES = 4000

#: Fraction of observable sinks a chunk's union-of-cones signature must
#: cover before ``prune="auto"`` predicts a saturated sweep (nearly every
#: row active => pruning is pure overhead) and falls back to dense.
PRUNE_SATURATION = 0.5


def resolve_prune(prune: "bool | str | None") -> "bool | str":
    """Normalize the ``prune=`` knob: ``None`` means ``"auto"``.

    The single place the default lives — the backends, the sharded
    driver and the engine-level cache keys all resolve through here, so
    they can never disagree about what ``None`` means.  ``"auto"`` prunes
    unless :func:`chunk_prune_saturated` predicts the chunk is saturated
    (small circuit, union-of-cones covering most sinks — the regime where
    `BENCH_pr3.json` measured pruning *slower* than the dense sweep);
    ``True``/``False`` force the pruned/dense sweep unconditionally.
    Idempotent over its own output: an already-resolved ``"auto"``
    stays ``"auto"`` — the sharded driver ships resolved values to
    worker backends, which resolve again (``bool("auto")`` would
    silently force pruning and lose the dense fallback in workers).
    """
    if prune is None or prune == "auto":
        return "auto"
    return bool(prune)


def validate_cells(cells: str | None) -> str:
    """Normalize the ``cells=`` knob (``None`` means ``auto``)."""
    if cells is None:
        return "auto"
    if cells not in CELL_MODES:
        raise AnalysisConfigError(
            f"unknown cells mode {cells!r}; choose from {CELL_MODES}"
        )
    return cells


def validate_chunking(chunking: str | None) -> str:
    """Normalize the ``chunking=`` knob (``None`` means ``auto``)."""
    if chunking is None:
        return "auto"
    if chunking not in CHUNKINGS:
        raise AnalysisConfigError(
            f"unknown chunking {chunking!r}; choose from {CHUNKINGS}"
        )
    return chunking


def validate_rows(rows: str | None) -> str:
    """Normalize the ``rows=`` knob (``None`` means ``auto``)."""
    if rows is None:
        return "auto"
    if rows not in ROW_MODES:
        raise AnalysisConfigError(
            f"unknown rows mode {rows!r}; choose from {ROW_MODES}"
        )
    return rows


def validate_schedule(schedule: str | None) -> str:
    """Normalize the ``schedule=`` knob (``None`` means ``auto``)."""
    if schedule is None:
        return "auto"
    if schedule not in SCHEDULES:
        raise AnalysisConfigError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
        )
    return schedule


def resolve_schedule(schedule: str | None, n_sites: int, batch_size: int) -> str:
    """The strategy actually run for one call: ``"cone"`` or ``"input"``.

    ``auto`` clusters only when the site list spans more than one chunk —
    within a single chunk the sweep visits the union of all cones
    regardless of order, so clustering would be pure overhead.
    """
    schedule = validate_schedule(schedule)
    if schedule != "auto":
        return schedule
    return "cone" if n_sites > batch_size else "input"


class ConeIndex:
    """Per-node reachable-sink signatures over one compiled circuit.

    ``sig[node_id]`` is an integer bitset: bit ``p`` is set iff sink
    ``compiled.sink_ids[p]`` is reachable from ``node_id`` through
    combinational fanout (the node itself counts when it is a sink) —
    exactly the ``sinks`` set of the scalar engine's
    :class:`~repro.core.cone.OnPathCone`, but O(1) per lookup and built
    for *all* nodes in one reverse-topological pass instead of one
    forward search per site.  Arbitrary-precision Python ints keep the
    bitsets exact at any sink count with single-op unions.
    """

    __slots__ = ("n", "n_sinks", "sig")

    def __init__(self, compiled: CompiledCircuit):
        n = compiled.n
        sink_ids = compiled.sink_ids
        self.n = n
        self.n_sinks = len(sink_ids)
        sig = [0] * n
        for position, sink_id in enumerate(sink_ids):
            sig[sink_id] |= 1 << position
        combinational = [
            compiled.gate_type(node_id).is_combinational for node_id in range(n)
        ]
        fanout = compiled.fanout
        # Reverse topological order: every user's signature is final before
        # its drivers accumulate it.  DFF users do not propagate — an error
        # arriving at a D pin is captured at the clock edge, matching the
        # cone extractor's traversal boundary.
        for node_id in reversed(compiled.topo):
            acc = sig[node_id]
            for user_id in fanout(node_id):
                if combinational[user_id]:
                    acc |= sig[user_id]
            sig[node_id] = acc
        self.sig = sig

    def reachable_sink_positions(self, node_id: int) -> list[int]:
        """Positions into ``compiled.sink_ids`` reachable from ``node_id``."""
        signature = self.sig[node_id]
        positions = []
        position = 0
        while signature:
            if signature & 1:
                positions.append(position)
            signature >>= 1
            position += 1
        return positions

    @staticmethod
    def for_compiled(compiled: CompiledCircuit) -> "ConeIndex":
        """The cached index for a compiled circuit (built on first use).

        Cached under ``compiled._cone_index`` — listed in
        ``CompiledCircuit._PLAN_CACHE_ATTRS``, so pickling a compiled
        circuit (the sharded driver's worker payload) drops the index and
        workers rebuild it locally, exactly like the batch plan.
        """
        index = getattr(compiled, "_cone_index", None)
        if index is None:
            index = ConeIndex(compiled)
            compiled._cone_index = index
        return index


def cone_cluster_order(compiled: CompiledCircuit, site_ids: Sequence[int]):
    """A permutation clustering ``site_ids`` by fanout-cone signature.

    Greedy bucketing by dominant sink set: sites sort by their reachable-
    sink bitset value — the most significant set bit (the "dominant"
    sink) is the primary key and the remaining signature bits break ties,
    so sites with identical cones become adjacent and sites sharing their
    dominant sink cluster next to each other.  Level and node id order
    the members of one signature class (topological locality inside a
    cluster).  Returns ``order`` such that ``order[j]`` is the input
    position of the ``j``-th site to sweep; the sort is stable, so equal
    keys preserve input order.
    """
    import numpy as np

    index = ConeIndex.for_compiled(compiled)
    sig = index.sig
    level = compiled.level
    ids = [int(site_id) for site_id in site_ids]
    order = sorted(
        range(len(ids)),
        key=lambda position: (
            sig[ids[position]],
            level[ids[position]],
            ids[position],
        ),
    )
    return np.asarray(order, dtype=np.intp)


# ------------------------------------------------------------- chunk cache


def chunk_cache_key(site_ids) -> bytes:
    """A compact, exact identity for one chunk's site-id sequence.

    Order matters (it fixes which column each site occupies), so the key
    digests the id sequence itself rather than the set.  blake2b keeps the
    key 16 bytes regardless of chunk width — chunk-derived artifacts (the
    saturation verdict, the compacted-row plan) are cached per key.
    """
    import hashlib

    import numpy as np

    data = np.ascontiguousarray(np.asarray(site_ids, dtype=np.int64)).tobytes()
    return hashlib.blake2b(data, digest_size=16).digest()


class ChunkCache:
    """Bounded FIFO memo for per-chunk derived artifacts.

    One instance hangs off each :class:`~repro.core.epp_batch.BatchPlan`
    (so every backend over the same compiled circuit shares it) and maps
    :func:`chunk_cache_key` digests to whatever the sweep derives per
    chunk — the ``prune="auto"`` saturation verdict and the compacted-row
    plan.  Repeated analyses over the same site partition (benchmark
    best-of repeats, long-lived analyzers) hit the cache instead of
    re-walking cone signatures and rebuilding row remaps.  Eviction is
    insertion-order FIFO: the cap bounds memory, and real workloads sweep
    the same few dozen chunks over and over.
    """

    __slots__ = ("max_entries", "_entries", "_lock")

    def __init__(self, max_entries: int = 256):
        import threading

        self.max_entries = max(1, int(max_entries))
        self._entries: dict[bytes, object] = {}
        # Chunk plans are built from the caller's thread (span sizing)
        # and the pipeline's sweeper thread; eviction iterates the dict,
        # so puts serialize (gets stay lock-free — dict reads are atomic).
        self._lock = threading.Lock()

    def get(self, key: bytes):
        return self._entries.get(key)

    def put(self, key: bytes, value) -> None:
        with self._lock:
            entries = self._entries
            if key not in entries and len(entries) >= self.max_entries:
                entries.pop(next(iter(entries)))
            entries[key] = value

    def get_or_create(self, key: bytes, factory):
        """The memoized value for ``key``, building it at most once.

        Double-checked under the put lock so concurrent callers — the
        sweeper thread and a service-layer thread hammering the same
        plan — agree on a *single* constructed artifact: whichever
        thread wins the race publishes, every later caller gets that
        exact object and ``factory`` runs once per resident key.  The
        stored value may be falsy (the saturation verdict is a plain
        ``False``), so presence is ``is not None``, never truthiness.
        """
        value = self._entries.get(key)
        if value is not None:
            return value
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                value = factory()
                entries = self._entries
                if key not in entries and len(entries) >= self.max_entries:
                    entries.pop(next(iter(entries)))
                entries[key] = value
        return value

    def discard(self, key: bytes) -> None:
        """Drop one entry if present — for artifacts the caller knows
        will never be used again (e.g. an oversized candidate chunk plan
        rejected by the span splitter), so they don't occupy FIFO slots
        that live per-chunk plans need."""
        with self._lock:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


# ------------------------------------------------------------- cost models

#: Narrowest chunk the boundary-aligned splitter will emit, as a divisor
#: of ``batch_size``: chunk count can at most double, bounding the
#: per-chunk fixed costs (group dispatch, buffer reset) the split adds.
#: Measured on s38417 (`benchmarks/run_bench.py`): unbounded narrow
#: splits multiplied chunk count 3.2x and cost ~77 ms of per-group
#: dispatch per extra chunk — far more than the smaller unions saved —
#: so the splitter only ever trades width for union *alignment*, never
#: for narrowness.
_ADAPTIVE_MIN_DIVISOR = 2


def adaptive_chunk_spans(
    compiled: CompiledCircuit,
    site_ids: Sequence[int],
    batch_size: int,
) -> list[tuple[int, int]]:
    """Cost-aware ``(start, stop)`` chunk spans over a scheduled site list.

    The pruned sweep's cost for one chunk is ``width x |union of cones|``
    (every level slices to the union's active rows, and the row/cell
    masks are gathered for all ``width`` columns), so a fixed-width slice
    that straddles two disjoint cone clusters sweeps ``union(A) +
    union(B)`` rows for *every* column of both — the waste the ROADMAP's
    "cost-aware chunk widths" item names.  This splitter aligns chunk
    boundaries to the cluster structure: walking the scheduled order with
    a running union of :class:`ConeIndex` signatures, it closes a chunk
    early — never below ``batch_size / 2``, so chunk count at most
    doubles and the per-chunk fixed costs stay bounded — when the next
    site's cone would *grow* the union into fresh sinks (a cluster
    boundary); sites whose signatures stay inside the running union
    (saturated cluster runs) keep extending the chunk to the full width.
    Disjoint cluster runs therefore get their own aligned chunks while
    coherent runs ride full-width ones.

    Chunking is pure scheduling: every site column is computed
    independently, so *any* span partition yields bit-identical per-site
    results — only the work per sweep changes.
    """
    n = len(site_ids)
    if n <= batch_size:
        return [(0, n)] if n else []
    index = ConeIndex.for_compiled(compiled)
    sig = index.sig
    signatures = [sig[int(site_id)] for site_id in site_ids]
    min_width = max(1, batch_size // _ADAPTIVE_MIN_DIVISOR)

    spans: list[tuple[int, int]] = []
    start = 0
    union = 0
    for position, signature in enumerate(signatures):
        width = position - start
        if width >= batch_size or (
            width >= min_width and signature | union != union
        ):
            spans.append((start, position))
            start, union = position, 0
        union |= signature
    spans.append((start, n))
    return spans


def chunk_prune_saturated(
    compiled: CompiledCircuit, site_ids: Sequence[int]
) -> bool:
    """``prune="auto"``'s dense-fallback predicate for one chunk.

    Row pruning pays when whole regions of the circuit are off every
    chunk member's cone; it *costs* (a reachability test plus two
    fancy-indexed copies per gate group) when nearly every row is active
    anyway.  `BENCH_pr3.json` measured that regime directly: full-circuit
    sweeps of s953/s1423 — small circuits whose every chunk's
    union-of-cones covers essentially all observable sinks — ran 1-17%
    *slower* pruned than dense.  The predicate reproduces exactly that
    signature: a small circuit (large ones always win — the skipped rows
    dwarf the bookkeeping) whose chunk union signature covers most sinks.
    """
    if compiled.n >= PRUNE_AUTO_MAX_NODES:
        return False
    index = ConeIndex.for_compiled(compiled)
    if index.n_sinks == 0:
        return True
    threshold = PRUNE_SATURATION * index.n_sinks
    sig = index.sig
    union = 0
    for position, site_id in enumerate(site_ids):
        union |= sig[int(site_id)]
        # Saturation is monotone in the union, so poll the popcount
        # periodically and exit as soon as the verdict is known — full
        # default site lists saturate within the first few dozen sites.
        if position % 32 == 31 and union.bit_count() >= threshold:
            return True
    return union.bit_count() >= threshold
