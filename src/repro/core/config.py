"""The unified analysis execution-option layer: one typed knob surface.

Every analysis knob in the system — backend selection, sweep shaping
(``batch_size``/``prune``/``schedule``/``cells``/``chunking``/``rows``),
sharding (``jobs``) and resilience (``retries``/``shard_timeout``/
``on_failure``/``deadline``/``fault_injector``/``checkpoint``) — lives on
one frozen dataclass, :class:`AnalysisConfig`.  Before this module the
same knob tuple was hand-threaded through eight layers (engine, vector
and sharded backends, worker payloads, delta analysis, ``SERAnalyzer``,
the server, the CLI), and every PR that grew the surface re-threaded it
by hand; each one shipped a seam bug (bool-coerced ``prune="auto"`` in
workers, ``jobs<1`` bypassing validation, knobs missing from cache
identities).  Now:

* **Validation happens once, at construction.**  Unknown knob names, bad
  values and conflicting combinations (``checkpoint=`` with
  ``backend="vector"``) raise
  :class:`~repro.errors.AnalysisConfigError` — a subclass of both
  :class:`~repro.errors.ConfigError` and
  :class:`~repro.errors.AnalysisError` — naming the offending field.
* **Serialization is canonical.**  :meth:`AnalysisConfig.to_wire` /
  :meth:`AnalysisConfig.from_wire` round-trip the wire-safe subset of
  fields, and :meth:`AnalysisConfig.digest` is a deterministic identity
  (stable under field order, distinct for distinct configs) that the
  server's artifact/idempotency keys derive from.  :data:`WIRE_VERSION`
  is folded into every digest, so bumping it invalidates persisted
  stores cleanly instead of colliding with old identities.
* **Defaults are tolerant-forward.**  Every field defaults to ``None``
  ("use the calibrated default"), and :meth:`AnalysisConfig.from_wire`
  ignores unknown keys unless asked to be strict — old pickled worker
  payloads and journal/checkpoint records keep loading after the knob
  surface grows.

Field *metadata* (wire membership, sharded-only, CLI flag spelling,
choices, documentation) lives on the dataclass fields themselves, so the
CLI flag set, the wire schema, the server's sharded-only strip list and
the generated knob reference (``python -m repro knobs --markdown``) are
all derived from this one table and can never drift apart.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.core.schedule import (
    CELL_MODES,
    CHUNKINGS,
    ROW_MODES,
    SCHEDULES,
    resolve_prune,
    validate_cells,
    validate_chunking,
    validate_rows,
    validate_schedule,
)
from repro.errors import AnalysisConfigError

__all__ = [
    "AnalysisConfig",
    "KNOB_KEYS",
    "RESILIENCE_KNOB_KEYS",
    "SHARDED_ONLY_KNOBS",
    "SWEEP_KNOB_KEYS",
    "WIRE_KNOB_KEYS",
    "WIRE_VERSION",
    "knob_reference",
]

#: Wire-format version, folded into every :meth:`AnalysisConfig.digest`.
#: Version 1 was the pre-config era: server digests hashed raw
#: ``sorted(knobs.items())`` tuples.  Version 2 is the unified-config
#: digest — bumping the number guarantees the new identities can never
#: collide with (or silently reuse) artifacts persisted under the old
#: scheme; stale disk-store and journal entries simply miss and rebuild.
WIRE_VERSION = 2

#: On-failure modes, re-exported here so the CLI and the knob reference
#: need only this module.  The authoritative tuple lives with
#: :class:`~repro.core.resilience.FaultPolicy`.
from repro.core.resilience import ON_FAILURE_MODES  # noqa: E402


def _knob(
    *,
    wire: bool,
    kind: str,
    doc: str,
    cli: str | None = None,
    delta: bool = False,
    serve: str | None = None,
    sharded_only: bool = False,
    sweep: bool = False,
    choices: tuple | None = None,
    section: str = "analysis",
) -> Any:
    """One knob field: default ``None`` plus the metadata table entry."""
    return field(
        default=None,
        metadata={
            "wire": wire,
            "kind": kind,
            "doc": doc,
            "cli": cli,
            "delta": delta,
            "serve": serve,
            "sharded_only": sharded_only,
            "sweep": sweep,
            "choices": choices,
            "section": section,
        },
    )


@dataclass(frozen=True)
class AnalysisConfig:
    """Every analysis knob, validated at construction, ``None`` = default.

    Field order is the historical knob order (and the wire-key order), so
    ``KNOB_KEYS`` derived from this class matches the tuples the delta
    layer and the server protocol pinned before the consolidation.
    """

    backend: str | None = _knob(
        wire=True, kind="str", cli="--backend", delta=True,
        section="backend",
        doc="EPP backend to run: a registered backend name, or omitted to "
            "auto-select (`sharded` when `jobs=` is given, else the best "
            "available single-process backend).",
    )
    batch_size: int | None = _knob(
        wire=True, kind="int", cli="--batch-size", delta=True, sweep=True,
        section="sweep",
        doc="Sites per vectorized chunk (the sweep's column width); "
            "omitted means the calibrated per-circuit default.",
    )
    jobs: int | None = _knob(
        wire=True, kind="int", cli="--jobs", delta=True, serve="--jobs",
        sharded_only=True, section="sharding",
        doc="Worker processes for the sharded backend (implies "
            "`backend=sharded` when no backend is named).",
    )
    prune: "bool | str | None" = _knob(
        wire=True, kind="prune", cli="--no-prune", delta=True, sweep=True,
        section="sweep",
        doc="Row pruning for the sparse sweep: `auto` (default; dense "
            "fallback on saturated chunks), `True`/`False` to force.  The "
            "CLI exposes only `--no-prune` (force dense).",
    )
    schedule: str | None = _knob(
        wire=True, kind="choice", cli="--schedule", delta=True, sweep=True,
        choices=SCHEDULES, section="sweep",
        doc="Site scheduling: `auto` clusters by fanout cone when the "
            "site list spans multiple chunks, `cone` always clusters, "
            "`input` preserves caller order.",
    )
    cells: str | None = _knob(
        wire=True, kind="choice", cli="--cells", delta=True, sweep=True,
        choices=CELL_MODES, section="sweep",
        doc="Cell-compaction for sparse sweep kernels: `auto` per-group "
            "cost model, `on`/`off` to force.",
    )
    chunking: str | None = _knob(
        wire=True, kind="choice", cli="--chunking", delta=True, sweep=True,
        choices=CHUNKINGS, section="sweep",
        doc="Chunk-width strategy: `auto` calibrated policy, `adaptive` "
            "cone-cluster-aligned spans, `fixed` flat slicing.",
    )
    rows: str | None = _knob(
        wire=True, kind="choice", cli="--rows", delta=True, sweep=True,
        choices=ROW_MODES, section="sweep",
        doc="State-matrix row layout for pruned sweeps: `auto` calibrated "
            "policy, `compact` union-of-cones buffers, `full` full-circuit "
            "buffers with dirty-row reset.",
    )
    retries: int | None = _knob(
        wire=True, kind="int", cli="--retries", sharded_only=True,
        section="resilience",
        doc="Extra attempts per shard beyond the first (sharded backend "
            "only); omitted means the FaultPolicy default.",
    )
    shard_timeout: float | None = _knob(
        wire=True, kind="float", cli="--shard-timeout", sharded_only=True,
        section="resilience",
        doc="Per-shard deadline in seconds; a shard past it is retried "
            "(respawning a wedged pool first).",
    )
    on_failure: str | None = _knob(
        wire=True, kind="choice", cli="--on-worker-failure",
        sharded_only=True, choices=ON_FAILURE_MODES, section="resilience",
        doc="Terminal action once a shard's retry budget is exhausted: "
            "`retry` raises after the budget, `degrade` finishes the "
            "shard in-process (bit-identical), `raise` fails fast.",
    )
    deadline: float | None = _knob(
        wire=False, kind="float", serve="--request-deadline",
        sharded_only=True, section="resilience",
        doc="Global analysis deadline in seconds (the server derives it "
            "from the request's remaining budget; not a wire knob).",
    )
    fault_injector: Any = _knob(
        wire=False, kind="object", sharded_only=True, section="resilience",
        doc="Test-only fault-injection harness handed to the sharded "
            "driver; never serialized.",
    )
    checkpoint: Any = _knob(
        wire=False, kind="path", cli="--checkpoint", sharded_only=True,
        section="durability",
        doc="Directory for crash-durable shard checkpoints (sharded "
            "backend only); a resumed run reloads finished shards "
            "bit-identically.",
    )

    # ------------------------------------------------------- validation

    def __post_init__(self):
        # Per-field value checks first — a bad value must be named even
        # when a cross-field conflict is also present ("jobs must be
        # >= 1" beats "jobs= applies to the 'sharded' backend only").
        if self.jobs is not None and int(self.jobs) < 1:
            raise AnalysisConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_size is not None and int(self.batch_size) < 1:
            raise AnalysisConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        resolve_prune(self.prune)
        validate_schedule(self.schedule)
        validate_cells(self.cells)
        validate_chunking(self.chunking)
        validate_rows(self.rows)
        if self.backend is not None:
            from repro.core.backends import REGISTRY

            REGISTRY.get(self.backend)  # unknown-name check
        # Resilience values: delegate to FaultPolicy.from_knobs so the
        # flag-naming ConfigError messages stay byte-identical.
        from repro.core.resilience import FaultPolicy

        FaultPolicy.from_knobs(
            retries=self.retries,
            shard_timeout=self.shard_timeout,
            on_failure=self.on_failure,
            deadline=self.deadline,
        )
        # Cross-field conflicts — only when the backend is *explicit*.
        # With backend omitted the conflict depends on what the backend
        # resolves to (jobs= implies sharded; the server injects its own
        # backend later), so resolution-time callers run
        # require_backend_support() on the resolved name instead.
        if self.backend is not None:
            self.require_backend_support(self.backend)

    def require_backend_support(self, backend: str) -> None:
        """Reject sharded-only knobs when ``backend`` cannot honor them.

        The messages keep the historical spelling — ``jobs=`` first (its
        own message), then the requested resilience knobs joined with
        ``/`` — so every existing ``match="sharded"`` pin holds.
        """
        from repro.core.backends import REGISTRY

        info = REGISTRY.get(backend)
        if info.sharded:
            return
        if self.jobs is not None:
            raise AnalysisConfigError(
                f"jobs= applies to the 'sharded' backend only, "
                f"got backend={backend!r}"
            )
        requested = [
            key for key in RESILIENCE_KNOB_KEYS
            if getattr(self, key) is not None
        ]
        if requested:
            verb = "applies" if len(requested) == 1 else "apply"
            raise AnalysisConfigError(
                f"{'/'.join(requested)} {verb} to the 'sharded' backend "
                f"only, got backend={backend!r}"
            )

    # ----------------------------------------------------- construction

    @classmethod
    def from_knobs(cls, **knobs: Any) -> "AnalysisConfig":
        """Build from a knob dict, rejecting unknown names.

        The single spelling of the historical "unknown analysis knob"
        error — the delta layer, the engine and the CLI all funnel
        through here.
        """
        for key in knobs:
            if key not in _FIELD_SET:
                raise AnalysisConfigError(
                    f"unknown analysis knob {key!r}; "
                    f"choose from {KNOB_KEYS}"
                )
        return cls(**knobs)

    def replace(self, **changes: Any) -> "AnalysisConfig":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def merged_with(self, overrides: Mapping[str, Any]) -> "AnalysisConfig":
        """A copy where non-``None`` override knobs win over this config."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return self.from_knobs(**{**self.knobs(), **changes})

    # -------------------------------------------------------- knob views

    def knobs(self) -> dict:
        """All knobs as a plain dict (``None`` entries included)."""
        return {key: getattr(self, key) for key in KNOB_KEYS}

    def sweep_kwargs(self) -> dict:
        """The sweep-shaping subset, for ``BatchEPPBackend(**...)``."""
        return {key: getattr(self, key) for key in SWEEP_KNOB_KEYS}

    def effective_backend(self) -> str:
        """The backend name this config runs on once defaults resolve:
        an explicit name wins, ``jobs=`` implies ``sharded``, otherwise
        the best available single-process backend."""
        if self.backend is not None:
            return self.backend
        if self.jobs is not None:
            return "sharded"
        from repro.core.backends import default_backend

        return default_backend()

    def resolved(self) -> "AnalysisConfig":
        """A copy with the sweep knobs normalized (``None`` -> ``auto``).

        The one resolution point (the satellite-2 dedup): the sharded
        parent, its workers and the engine cache keys all normalize
        through here instead of each calling ``resolve_prune`` /
        ``validate_*`` on their own.  Idempotent — resolving a resolved
        config is a no-op, so parent-resolved values shipped to workers
        survive the worker's own resolve.
        """
        return self.replace(
            prune=resolve_prune(self.prune),
            schedule=validate_schedule(self.schedule),
            cells=validate_cells(self.cells),
            chunking=validate_chunking(self.chunking),
            rows=validate_rows(self.rows),
        )

    # ----------------------------------------------------- serialization

    def to_wire(self) -> dict:
        """The canonical wire form: version + the non-``None`` wire knobs.

        Non-wire fields (``deadline``, ``fault_injector``,
        ``checkpoint``) never serialize: they are per-process or
        per-request concerns, and including them would fork artifact
        identities that are bit-identical by construction.
        """
        wire: dict = {"version": WIRE_VERSION}
        for key in WIRE_KNOB_KEYS:
            value = getattr(self, key)
            if value is not None:
                wire[key] = value
        return wire

    @classmethod
    def from_wire(
        cls, mapping: Mapping[str, Any], *, strict: bool = False
    ) -> "AnalysisConfig":
        """Rebuild from a wire dict.

        Tolerant-forward by default: unknown keys (knobs from a newer
        writer, or the ``version`` stamp itself) are ignored, so old
        readers keep loading new payloads and vice versa.  ``strict=True``
        is the server's request-parsing mode — unknown knob names are a
        caller mistake there, not a version skew.
        """
        unknown = sorted(
            key for key in mapping
            if key != "version" and key not in _WIRE_FIELD_SET
        )
        if strict and unknown:
            raise AnalysisConfigError(
                f"unknown analysis knob(s) {unknown}; "
                f"choose from {WIRE_KNOB_KEYS}"
            )
        return cls(**{
            key: mapping[key] for key in WIRE_KNOB_KEYS if key in mapping
        })

    def digest(self) -> str:
        """Deterministic identity of the wire-visible config.

        blake2b-16 over the sorted, length-prefixed ``key=repr(value)``
        items plus :data:`WIRE_VERSION` — stable under field order and
        construction path (kwargs vs wire), distinct for distinct
        configs.  The server's artifact, coalescing and idempotency keys
        all build on this, so a knob that exists anywhere exists in every
        cache identity.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(b"analysis-config|v%d" % WIRE_VERSION)
        for key in WIRE_KNOB_KEYS:
            value = getattr(self, key)
            if value is not None:
                item = f"{key}={value!r}".encode()
                h.update(b"|%d:" % len(item))
                h.update(item)
        return h.hexdigest()


# ------------------------------------------------------- derived tables

_FIELDS = fields(AnalysisConfig)
_FIELD_SET = frozenset(f.name for f in _FIELDS)

#: Every knob name, in historical order (matches the old delta-layer tuple).
KNOB_KEYS = tuple(f.name for f in _FIELDS)

#: The wire-safe subset (matches the old ``protocol.WIRE_KNOB_KEYS``).
WIRE_KNOB_KEYS = tuple(f.name for f in _FIELDS if f.metadata["wire"])
_WIRE_FIELD_SET = frozenset(WIRE_KNOB_KEYS)

#: Knobs only the sharded backend can honor (matches the old
#: ``service._SHARDED_ONLY`` strip list, ``jobs`` included).
SHARDED_ONLY_KNOBS = tuple(
    f.name for f in _FIELDS if f.metadata["sharded_only"]
)

#: The resilience subset — sharded-only minus ``jobs`` (matches the old
#: ``epp_delta.RESILIENCE_KNOB_KEYS``).
RESILIENCE_KNOB_KEYS = tuple(k for k in SHARDED_ONLY_KNOBS if k != "jobs")

#: Sweep-shaping knobs forwarded to ``BatchEPPBackend``.
SWEEP_KNOB_KEYS = tuple(f.name for f in _FIELDS if f.metadata["sweep"])


def field_metadata(name: str) -> Mapping[str, Any]:
    """The metadata table entry for one knob field."""
    for f in _FIELDS:
        if f.name == name:
            return f.metadata
    raise KeyError(name)


# ------------------------------------------------------- knob reference


def knob_reference(markdown: bool = False) -> str:
    """The generated knob reference (``python -m repro knobs``).

    Emitted straight from the field metadata, so the documented surface
    is the implemented surface by construction.
    """
    sections: dict[str, list] = {}
    for f in _FIELDS:
        sections.setdefault(f.metadata["section"], []).append(f)
    lines = []
    if markdown:
        lines.append("<!-- generated by `python -m repro knobs --markdown`;")
        lines.append("     do not edit by hand -->")
        lines.append("")
        lines.append(
            "| Knob | CLI flag | Wire | Scope | What it does |"
        )
        lines.append("|---|---|---|---|---|")
        for f in _FIELDS:
            meta = f.metadata
            cli = meta["cli"] or meta["serve"] or "—"
            scope = "sharded only" if meta["sharded_only"] else "all backends"
            choices = meta["choices"]
            doc = meta["doc"]
            if choices:
                doc += f" Choices: {', '.join(f'`{c}`' for c in choices)}."
            lines.append(
                f"| `{f.name}` | `{cli}` | "
                f"{'yes' if meta['wire'] else 'no'} | {scope} | {doc} |"
            )
        return "\n".join(lines) + "\n"
    for section, knob_fields in sections.items():
        lines.append(f"[{section}]")
        for f in knob_fields:
            meta = f.metadata
            cli = meta["cli"] or meta["serve"]
            flag = f" ({cli})" if cli else ""
            lines.append(f"  {f.name}{flag}")
            lines.append(f"      {meta['doc']}")
        lines.append("")
    return "\n".join(lines)
