"""Per-shard sweep checkpoints: finished work survives the process.

A sharded EPP sweep over a large circuit is minutes of work delivered
shard by shard.  PR 6 made the sweep survive a *worker* dying; this
module makes completed shards survive the *host* dying.  The engine
journals each completed shard's packed arrays (the exact
``pack_sites`` wire format — five flat NumPy arrays) to a checkpoint
directory as it merges them; a rerun of the identical sweep loads the
journaled shards back, checksum-verified, and only the unfinished
shards re-sweep.  Because the journal stores the very arrays the merge
consumes, a resumed run is ``np.array_equal`` to a clean one — the
kill-9 chaos test pins this.

Layout of a checkpoint directory::

    manifest.json      # run identity: version, payload digest, shard count
    shard_00003.shard  # durable record: header + pickled packed arrays
    quarantine/        # corrupt shard files, moved aside for inspection

Identity is content-addressed: ``run_key`` digests the engine's
:meth:`~repro.core.epp_shard.ShardedEPPEngine.payload_key` (circuit
structure + SP map + batch size) together with every shard's site-id
partition.  Any change to the circuit, the knobs that shape the payload,
or the shard partition yields a different ``run_key``; :meth:`open` then
discards the stale files and starts a fresh journal, so a checkpoint can
never leak pre-edit results into a post-edit sweep.  Corrupt shard files
(torn write from a crash, bit rot) are quarantined and their shards
re-sweep — a damaged checkpoint costs time, never correctness.

One directory holds one run's journal at a time; retention is therefore
bounded by the number of distinct checkpoint directories the caller
maintains (the analysis service keys them per circuit under its
``--store-dir``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

import numpy as np

from repro.core.durable import (
    CorruptRecordError,
    atomic_write_bytes,
    quarantine_file,
    read_record,
    sweep_temp_files,
    write_record,
)
from repro.errors import CheckpointError

__all__ = ["ShardCheckpoint", "shard_digest"]

#: Bumped when the record layout changes; old journals are discarded.
VERSION = 1

_MANIFEST = "manifest.json"
_SHARD_SUFFIX = ".shard"
_QUARANTINE = "quarantine"


def shard_digest(site_ids) -> str:
    """Stable digest of one shard's site-id partition."""
    h = hashlib.blake2b(digest_size=16)
    for site_id in site_ids:
        h.update(str(int(site_id)).encode())
        h.update(b",")
    return h.hexdigest()


def _run_key(payload_key: str, shard_digests: list[str]) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(str(VERSION).encode())
    h.update(b"|")
    h.update(str(payload_key).encode())
    for digest in shard_digests:
        h.update(b"|")
        h.update(digest.encode())
    return h.hexdigest()


class ShardCheckpoint:
    """A journal of completed shards for one specific sweep.

    Build with :meth:`open`; ``stats`` counts what happened::

        loaded      shards served from the journal this run
        stored      shards journaled this run
        stale       files discarded (older run / foreign key)
        corrupt     files quarantined on checksum mismatch
        tmp_cleaned crash-residue ``*.tmp`` files removed at open
        resumed     True when an existing matching manifest was found

    ``on_store`` is a chaos hook: called as ``on_store(index, stored)``
    after each shard file lands, *before* the engine merges it — the
    kill-9 test uses it to die at a deterministic journaled-shard count.
    """

    def __init__(self, directory: str, run_key: str, shard_digests: list[str],
                 on_store=None):
        self.directory = str(directory)
        self.run_key = run_key
        self.shard_digests = list(shard_digests)
        self.on_store = on_store
        self.stats = {
            "loaded": 0, "stored": 0, "stale": 0, "corrupt": 0,
            "tmp_cleaned": 0, "resumed": False,
        }

    # ------------------------------------------------------------------ open

    @classmethod
    def open(cls, directory, payload_key: str, shards, on_store=None
             ) -> "ShardCheckpoint":
        """Open (resuming) or initialize the journal for this sweep.

        ``shards`` is the full ordered partition (sequences of site
        ids).  If the directory already holds a manifest for the same
        ``run_key`` the journal resumes; otherwise every stale shard
        file is removed and a fresh manifest is written first — so a
        crash *during* open still leaves either the old run's journal or
        a fresh one, never a blend.
        """
        directory = str(directory)
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint directory {directory!r} cannot be created: {exc}"
            ) from None
        if not os.path.isdir(directory):
            raise CheckpointError(
                f"checkpoint path {directory!r} is not a directory"
            )
        digests = [shard_digest(ids) for ids in shards]
        journal = cls(directory, _run_key(payload_key, digests), digests,
                      on_store=on_store)
        journal.stats["tmp_cleaned"] = sweep_temp_files(directory)
        manifest = journal._read_manifest()
        if manifest is not None and manifest.get("run_key") == journal.run_key:
            journal.stats["resumed"] = True
            return journal
        # Different (or missing/corrupt) run: drop stale shard files
        # before publishing the new manifest, so a reader never pairs
        # the new manifest with old shards.
        for name in os.listdir(directory):
            if name.endswith(_SHARD_SUFFIX):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass
        atomic_write_bytes(
            os.path.join(directory, _MANIFEST),
            json.dumps(
                {
                    "version": VERSION,
                    "run_key": journal.run_key,
                    "payload_key": str(payload_key),
                    "n_shards": len(digests),
                    "shards": digests,
                },
                indent=2, sort_keys=True,
            ).encode() + b"\n",
        )
        return journal

    def _read_manifest(self) -> dict | None:
        try:
            with open(os.path.join(self.directory, _MANIFEST), "rb") as handle:
                manifest = json.loads(handle.read())
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict) or manifest.get("version") != VERSION:
            return None
        return manifest

    # ------------------------------------------------------------- load/store

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.directory, f"shard_{index:05d}{_SHARD_SUFFIX}")

    def load(self, index: int):
        """The journaled packed arrays for shard ``index``, or ``None``.

        Verified end to end: record checksum, run key, shard index and
        the shard's site-id digest all have to match.  A checksum
        failure quarantines the file (``stats["corrupt"]``); an
        identity mismatch (a file from another run) just removes it
        (``stats["stale"]``).  Either way the caller re-sweeps the
        shard.
        """
        path = self._shard_path(index)
        try:
            meta, payload = read_record(path)
        except FileNotFoundError:
            return None
        except CorruptRecordError:
            quarantine_file(path, os.path.join(self.directory, _QUARANTINE))
            self.stats["corrupt"] += 1
            return None
        if (
            meta.get("run_key") != self.run_key
            or meta.get("shard") != index
            or meta.get("sites") != self.shard_digests[index]
        ):
            try:
                os.unlink(path)
            except OSError:
                pass
            self.stats["stale"] += 1
            return None
        try:
            arrays = pickle.loads(payload)
        except Exception:
            quarantine_file(path, os.path.join(self.directory, _QUARANTINE))
            self.stats["corrupt"] += 1
            return None
        self.stats["loaded"] += 1
        return tuple(np.asarray(a) for a in arrays)

    def store(self, index: int, packed) -> None:
        """Journal shard ``index``'s packed arrays (atomic, checksummed)."""
        payload = pickle.dumps(
            tuple(np.ascontiguousarray(a) for a in packed),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        write_record(
            self._shard_path(index),
            payload,
            {
                "run_key": self.run_key,
                "shard": int(index),
                "sites": self.shard_digests[index],
                "arrays": len(packed),
            },
        )
        self.stats["stored"] += 1
        if self.on_store is not None:
            self.on_store(index, self.stats["stored"])
