"""Vectorized EPP propagation kernels — paper Table 1 lifted to arrays.

Array counterpart of :mod:`repro.core.rules`, used by the batch backend
(:mod:`repro.core.epp_batch`).  Every kernel consumes one *gate group*: a
set of same-type, same-arity gates at one topological level, with the
four-valued state of their fanins stacked into a single tensor

    ``x`` of shape ``(g, k, 4, s)``

where ``g`` is the number of gates in the group, ``k`` the gate arity, the
third axis holds ``(pa, pa_bar, p0, p1)`` and ``s`` is the error-site
(batch) axis.  Kernels return the output state as ``(g, 4, s)``.

The closed forms are transcribed from the scalar rules term by term —
including the ``max(..., 0.0)`` clamps on the subtraction residues — so a
batched sweep agrees with the scalar engine to floating-point rounding
(the backend-equivalence tests assert 1e-9 agreement end to end).  MUX,
MAJ and any future cell fall back to :func:`truth_table_vec`, the
vectorized form of the generic exhaustive-enumeration rule (4^k joint
input states; fine for the small arities these cells have).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.errors import AnalysisError
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    GATE_CODES,
    truth_table,
)

__all__ = [
    "and_vec",
    "nand_vec",
    "or_vec",
    "nor_vec",
    "not_vec",
    "buf_vec",
    "xor_vec",
    "xnor_vec",
    "truth_table_vec",
    "vec_rule_for",
    "gather_rule_for",
    "compact_rule_for",
]

# Index aliases into the state axis.
_PA, _PAB, _P0, _P1 = 0, 1, 2, 3

# State order used by the generic rule, matching rules._STATE_VALUES:
# index -> (value | a=0, value | a=1) for the states 0, 1, a, ā.
_STATE_VALUES = ((0, 0), (1, 1), (0, 1), (1, 0))
# Map from generic-rule state index (0, 1, a, ā) to the state-axis slot.
_STATE_SLOT = (_P0, _P1, _PA, _PAB)


def _and_like_planes(
    p_pass: np.ndarray,
    p_a: np.ndarray,
    p_ab: np.ndarray,
    blocking: int,
    invert: bool = False,
) -> np.ndarray:
    """Shared AND/OR/NAND/NOR body over ``(g, k, s)`` probability planes.

    ``p_pass`` is the plane of the *non*-controlling constant (P1 for the
    AND family, P0 for the OR family); ``blocking`` names the controlling
    value.  The incremental products run across the pin axis in pin order —
    the same association order as the scalar rules — and the residue clamps
    are transcribed verbatim.  ``invert`` writes the NOT-composed result
    (polarities and constants swapped) directly into the output slots, so
    NAND/NOR cost no extra pass.
    """
    g, k, s = p_pass.shape
    passing = p_pass[:, 0, :].copy()
    pass_or_a = passing + p_a[:, 0, :]
    pass_or_abar = passing + p_ab[:, 0, :]
    for i in range(1, k):
        passing *= p_pass[:, i, :]
        pass_or_a *= p_pass[:, i, :] + p_a[:, i, :]
        pass_or_abar *= p_pass[:, i, :] + p_ab[:, i, :]
    slot_pa, slot_pab = (_PAB, _PA) if invert else (_PA, _PAB)
    pass_plane = _P1 if blocking == 0 else _P0
    blocked_plane = _P0 if blocking == 0 else _P1
    if invert:
        pass_plane, blocked_plane = blocked_plane, pass_plane
    out = np.empty((g, 4, s))
    pa = np.subtract(pass_or_a, passing, out=out[:, slot_pa, :])
    np.maximum(pa, 0.0, out=pa)
    pa_bar = np.subtract(pass_or_abar, passing, out=out[:, slot_pab, :])
    np.maximum(pa_bar, 0.0, out=pa_bar)
    blocked = np.add(passing, pa, out=out[:, blocked_plane, :])
    blocked += pa_bar
    np.subtract(1.0, blocked, out=blocked)
    np.maximum(blocked, 0.0, out=blocked)
    out[:, pass_plane, :] = passing
    return out


def and_vec(x: np.ndarray) -> np.ndarray:
    """Paper Table 1, AND row, over a ``(g, k, 4, s)`` group tensor."""
    return _and_like_planes(
        x[:, :, _P1, :], x[:, :, _PA, :], x[:, :, _PAB, :], blocking=0
    )


def or_vec(x: np.ndarray) -> np.ndarray:
    """Paper Table 1, OR row (dual of AND with 0 and 1 swapped)."""
    return _and_like_planes(
        x[:, :, _P0, :], x[:, :, _PA, :], x[:, :, _PAB, :], blocking=1
    )


def _invert(out: np.ndarray) -> np.ndarray:
    """NOT applied to a ``(g, 4, s)`` result: polarities and constants swap."""
    return out[:, (_PAB, _PA, _P1, _P0), :]


def not_vec(x: np.ndarray) -> np.ndarray:
    return x[:, 0, (_PAB, _PA, _P1, _P0), :]


def buf_vec(x: np.ndarray) -> np.ndarray:
    return x[:, 0, :, :]


def nand_vec(x: np.ndarray) -> np.ndarray:
    return _and_like_planes(
        x[:, :, _P1, :], x[:, :, _PA, :], x[:, :, _PAB, :], blocking=0, invert=True
    )


def nor_vec(x: np.ndarray) -> np.ndarray:
    return _and_like_planes(
        x[:, :, _P0, :], x[:, :, _PA, :], x[:, :, _PAB, :], blocking=1, invert=True
    )


def xor_vec(x: np.ndarray) -> np.ndarray:
    """Group convolution over ``Z2 x Z2`` (see the scalar ``xor_rule``).

    ``d[c][e]`` accumulates P[constant-bit = c, error-parity = e] across the
    pin axis; the iteration order matches the scalar rule exactly.
    """
    g, k, _, s = x.shape
    d00 = np.ones((g, s))
    d10 = np.zeros((g, s))
    d01 = np.zeros((g, s))
    d11 = np.zeros((g, s))
    for i in range(k):
        x00 = x[:, i, _P0, :]
        x10 = x[:, i, _P1, :]
        x01 = x[:, i, _PA, :]
        x11 = x[:, i, _PAB, :]
        d00, d10, d01, d11 = (
            d00 * x00 + d10 * x10 + d01 * x01 + d11 * x11,
            d00 * x10 + d10 * x00 + d01 * x11 + d11 * x01,
            d00 * x01 + d10 * x11 + d01 * x00 + d11 * x10,
            d00 * x11 + d10 * x01 + d01 * x10 + d11 * x00,
        )
    return np.stack((d01, d11, d00, d10), axis=1)


def xnor_vec(x: np.ndarray) -> np.ndarray:
    return _invert(xor_vec(x))


def truth_table_vec(table, x: np.ndarray) -> np.ndarray:
    """Vectorized generic rule for an arbitrary gate truth table.

    Enumerates all ``4^k`` joint input states; each contributes its joint
    probability (a ``(g, s)`` array) to the output state determined by
    evaluating the gate under both ``a = 0`` and ``a = 1`` substitutions —
    identical semantics to the scalar ``truth_table_rule``.
    """
    g, k, _, s = x.shape
    if len(table) != (1 << k):
        raise AnalysisError(
            f"truth table has {len(table)} rows but the gate group has {k} inputs"
        )
    out = [np.zeros((g, s)) for _ in range(4)]  # states 0, 1, a, ā
    for states in product(range(4), repeat=k):
        weight = x[:, 0, _STATE_SLOT[states[0]], :]
        index0 = _STATE_VALUES[states[0]][0]
        index1 = _STATE_VALUES[states[0]][1]
        for position in range(1, k):
            state = states[position]
            weight = weight * x[:, position, _STATE_SLOT[state], :]
            v0, v1 = _STATE_VALUES[state]
            index0 |= v0 << position
            index1 |= v1 << position
        v0 = table[index0]
        v1 = table[index1]
        if v0 == v1:
            out[v0] += weight  # blocked at constant v0
        elif v1 == 1:
            out[2] += weight  # (0, 1) = a
        else:
            out[3] += weight  # (1, 0) = ā
    return np.stack((out[2], out[3], out[0], out[1]), axis=1)


_VEC_RULES_BY_CODE = {
    CODE_AND: and_vec,
    CODE_NAND: nand_vec,
    CODE_OR: or_vec,
    CODE_NOR: nor_vec,
    CODE_XOR: xor_vec,
    CODE_XNOR: xnor_vec,
    CODE_NOT: not_vec,
    CODE_BUF: buf_vec,
}

_TYPE_BY_CODE = {code: gate_type for gate_type, code in GATE_CODES.items()}


def vec_rule_for(code: int, arity: int):
    """The vectorized kernel for a ``(gate code, arity)`` group.

    Closed-form kernels where they exist; everything else (MUX, MAJ, future
    cells) gets the generic truth-table kernel with the table bound at plan
    build time so the sweep pays no per-call table construction.
    """
    kernel = _VEC_RULES_BY_CODE.get(code)
    if kernel is not None:
        return kernel
    gate_type = _TYPE_BY_CODE.get(code)
    if gate_type is None or not gate_type.is_combinational:
        raise AnalysisError(
            f"no vectorized EPP rule for gate code {code}; "
            "is a non-combinational node being propagated?"
        )
    table = truth_table(gate_type, arity)
    return lambda x, _table=table: truth_table_vec(_table, x)


# --------------------------------------------------------------------------
# Gather-aware group rules (the batch sweep's dispatch targets)
# --------------------------------------------------------------------------


def _and_family_gather(state, fanin, pass_plane, blocking, invert):
    return _and_like_planes(
        state[fanin, pass_plane, :],
        state[fanin, _PA, :],
        state[fanin, _PAB, :],
        blocking=blocking,
        invert=invert,
    )


def gather_rule_for(code: int, arity: int):
    """A ``rule(state, fanin) -> (g, 4, s)`` kernel for a gate group.

    Variant of :func:`vec_rule_for` that performs its own fanin gathers
    from the state matrix.  The AND/OR families gather only the three
    probability planes they read (25% less index traffic than a full
    four-plane gather, and the gathered planes are contiguous for the
    pin-axis products); NAND/NOR write their inverted output slots
    directly instead of composing with a NOT pass.  Everything else falls
    back to a full gather in front of the corresponding tensor kernel.

    Kernels are *index-space agnostic*: ``fanin`` must index rows of
    whatever ``state`` the sweep hands in — global node ids against the
    full ``(n + 2, 4, s)`` matrix, or the **remapped** compact indices of
    a :class:`~repro.core.epp_batch.CompactChunkPlan` against its
    ``(n_rows, 4, s)`` union-of-cones matrix.  No kernel may assume
    ``state.shape[0]`` is the circuit size or that sentinel rows sit at
    ``n``/``n + 1``; the plan builder already translated every id.
    """
    if code == CODE_AND:
        return lambda state, fanin: _and_family_gather(state, fanin, _P1, 0, False)
    if code == CODE_NAND:
        return lambda state, fanin: _and_family_gather(state, fanin, _P1, 0, True)
    if code == CODE_OR:
        return lambda state, fanin: _and_family_gather(state, fanin, _P0, 1, False)
    if code == CODE_NOR:
        return lambda state, fanin: _and_family_gather(state, fanin, _P0, 1, True)
    if code == CODE_BUF:
        return lambda state, fanin: state[fanin[:, 0]]
    if code == CODE_NOT:
        return lambda state, fanin: state[fanin[:, 0]][:, (_PAB, _PA, _P1, _P0), :]
    kernel = vec_rule_for(code, arity)
    return lambda state, fanin, _kernel=kernel: _kernel(state[fanin])


# --------------------------------------------------------------------------
# Cell-compacted group rules (the sparse sweep's third tier)
# --------------------------------------------------------------------------
#
# The row-sparse tier still computes every *column* of an active row — on
# cone-clustered chunks only ~1-5% of those cells are on-path, so >90% of
# the kernel FLOPs rewrite values the scatter then discards.  The compacted
# kernels flip the layout: the sweep gathers the on-path (row, column)
# cells into flat index vectors (``fanin_rows[m, k]`` = the fanin ids of
# cell ``m``'s gate, ``cols[m]`` = its site column) and the kernel computes
# exactly those ``m`` cells as an ``(m, 4)`` block, which the sweep
# scatters straight back into the sentinel-padded dense state.
#
# Bit-identity with the dense kernels is by construction: every closed
# form is a chain of *elementwise* IEEE operations in fixed pin order (the
# reductions run across the pin axis in the same order, the residue clamps
# are the same ops), so computing a cell inside an ``(m, k)`` block or an
# ``(r, k, s)`` block produces the same bits.  The generic kernels are
# reused outright on an ``(m, k, 4, 1)`` view, making the equivalence
# structural rather than transcribed.


def _compact_and_family(state, fanin_rows, cols, pass_plane, blocking, invert):
    """AND/NAND/OR/NOR over gathered cells: three (m, k) plane gathers."""
    cols = cols[:, None]
    return _and_like_planes(
        state[fanin_rows, pass_plane, cols][:, :, None],
        state[fanin_rows, _PA, cols][:, :, None],
        state[fanin_rows, _PAB, cols][:, :, None],
        blocking=blocking,
        invert=invert,
    )[:, :, 0]


def compact_rule_for(code: int, arity: int):
    """A ``rule(state, fanin_rows, cols) -> (m, 4)`` compacted kernel.

    ``fanin_rows`` is the ``(m, k)`` fanin-id block of the gathered cells
    (one row per on-path cell, already row-gathered by the sweep) and
    ``cols`` their ``(m,)`` site columns.  The AND/OR families gather only
    the three probability planes they read; single-input cells gather one
    four-valued vector per cell; everything else (XOR family, MUX/MAJ
    truth tables) funnels a full ``(m, k, 4, 1)`` gather through the
    corresponding tensor kernel of :func:`vec_rule_for`.  Like the
    row-level kernels, these are index-space agnostic: ``fanin_rows``
    indexes whatever ``state`` is passed — full-row or the compacted
    union-of-cones matrix with remapped ids (see :func:`gather_rule_for`).
    """
    if code == CODE_AND:
        return lambda state, fanin_rows, cols: _compact_and_family(
            state, fanin_rows, cols, _P1, 0, False
        )
    if code == CODE_NAND:
        return lambda state, fanin_rows, cols: _compact_and_family(
            state, fanin_rows, cols, _P1, 0, True
        )
    if code == CODE_OR:
        return lambda state, fanin_rows, cols: _compact_and_family(
            state, fanin_rows, cols, _P0, 1, False
        )
    if code == CODE_NOR:
        return lambda state, fanin_rows, cols: _compact_and_family(
            state, fanin_rows, cols, _P0, 1, True
        )
    if code == CODE_BUF:
        return lambda state, fanin_rows, cols: state[fanin_rows[:, 0], :, cols]
    if code == CODE_NOT:
        return lambda state, fanin_rows, cols: state[fanin_rows[:, 0], :, cols][
            :, (_PAB, _PA, _P1, _P0)
        ]
    kernel = vec_rule_for(code, arity)

    def compact(state, fanin_rows, cols, _kernel=kernel):
        x = state[fanin_rows, :, cols[:, None]]  # (m, k, 4)
        return _kernel(x[:, :, :, None])[:, :, 0]

    return compact
