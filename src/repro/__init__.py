"""repro — EPP-based soft error rate estimation for gate-level circuits.

A production-quality reproduction of

    Ghazanfar Asadi and Mehdi B. Tahoori,
    "An Accurate SER Estimation Method Based on Propagation Probability",
    DATE 2005.

Quickstart
----------
>>> from repro import EPPEngine
>>> from repro.netlist.library import s27
>>> engine = EPPEngine(s27())
>>> round(engine.node_epp("G9").p_sensitized, 3)
0.856

Package map
-----------
* :mod:`repro.netlist` — circuits, ``.bench`` I/O, transforms, generators.
* :mod:`repro.sim` — bit-parallel logic and fault simulation.
* :mod:`repro.probability` — signal-probability backends (topological,
  cut-BDD, Monte Carlo, exact BDD).
* :mod:`repro.core` — the EPP engine, the random-simulation baseline, and
  the full SER analyzer.
* :mod:`repro.ser` — R_SEU / latching / electrical models, FIT math,
  hardening flows.
* :mod:`repro.experiments` — regeneration harnesses for the paper's
  Figure 1, Table 1 and Table 2.
"""

from repro.core import (
    CircuitSERReport,
    EPPEngine,
    EPPResult,
    EPPValue,
    NodeSER,
    RandomSimulationEstimator,
    SERAnalyzer,
    combine_sensitization,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    NetlistError,
    ParseError,
    ProbabilityError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.netlist import (
    Circuit,
    GateType,
    parse_bench,
    parse_bench_file,
    validate_circuit,
    write_bench,
)
from repro.probability import signal_probabilities
from repro.ser import LatchingModel, SEURateModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "EPPEngine",
    "EPPResult",
    "EPPValue",
    "SERAnalyzer",
    "NodeSER",
    "CircuitSERReport",
    "RandomSimulationEstimator",
    "combine_sensitization",
    # netlist
    "Circuit",
    "GateType",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "validate_circuit",
    # probability / models
    "signal_probabilities",
    "SEURateModel",
    "LatchingModel",
    # errors
    "ReproError",
    "NetlistError",
    "ParseError",
    "ValidationError",
    "SimulationError",
    "ProbabilityError",
    "AnalysisError",
    "ConfigError",
]
