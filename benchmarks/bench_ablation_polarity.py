"""Ablation: what does the a/ā polarity split buy?

DESIGN.md calls polarity tracking the mechanism that makes reconvergent
fanout first-order correct.  This benchmark runs the engine with and
without it; the timing shows the split is essentially free, and
``extra_info`` reports the accuracy penalty of switching it off
(%Dif against exhaustive ground truth on reconvergent random circuits).
"""

import pytest

from repro.core.epp import EPPEngine
from repro.netlist.generate import random_combinational
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words

_CIRCUITS = [random_combinational(8, 60, seed=s) for s in (0, 1, 2)]


def _truth(circuit):
    injector = FaultInjector(circuit)
    words, width = exhaustive_words(circuit.inputs)
    good = injector.simulator.run(words, width)
    return {
        site: injector.detection_count(good, site, width) / width
        for site in circuit.gates
    }


_TRUTH = [_truth(circuit) for circuit in _CIRCUITS]


@pytest.mark.parametrize("track_polarity", [True, False], ids=["tracked", "blind"])
def test_polarity_ablation(benchmark, track_polarity):
    engines = [
        EPPEngine(circuit, track_polarity=track_polarity) for circuit in _CIRCUITS
    ]

    def run_all():
        values = []
        for engine, circuit in zip(engines, _CIRCUITS):
            values.append({s: engine.p_sensitized(s) for s in circuit.gates})
        return values

    results = benchmark(run_all)
    abs_sum = 0.0
    ref_sum = 0.0
    for values, truth in zip(results, _TRUTH):
        for site, truth_value in truth.items():
            abs_sum += abs(values[site] - truth_value)
            ref_sum += truth_value
    benchmark.extra_info["pct_dif_vs_exhaustive"] = round(100 * abs_sum / ref_sum, 2)
