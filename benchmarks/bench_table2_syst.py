"""Table 2, SysT column: per-node EPP run time.

The timed body analyzes a fixed sample of error sites with the EPP engine;
``extra_info`` records the per-node time in milliseconds (the paper's SysT
unit) and the measured mean cone size (the per-site work).
"""

from benchmarks.conftest import get_engine, sample_sites


def test_epp_per_node(benchmark, circuit_name):
    engine = get_engine(circuit_name)
    sites = sample_sites(circuit_name, 50)
    engine.p_sensitized(sites[0])  # warm the cone cache code paths

    def run_all():
        for site in sites:
            engine.p_sensitized(site)

    benchmark(run_all)
    per_node_ms = benchmark.stats["mean"] / len(sites) * 1e3
    benchmark.extra_info["syst_ms_per_node"] = round(per_node_ms, 4)
    benchmark.extra_info["n_sites"] = len(sites)
    benchmark.extra_info["mean_cone_size"] = round(
        sum(engine.cone(site).size for site in sites) / len(sites), 1
    )
