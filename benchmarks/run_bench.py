"""The benchmark trajectory entry point: ``python benchmarks/run_bench.py``.

Measures full-circuit ``analyze()`` wall-clock per roster circuit for the
backend configurations —

* ``scalar_s``       — the per-site reference oracle (sampled and
  extrapolated linearly above :data:`SCALAR_FULL_MAX_NODES`; scalar cost
  is exactly linear in the site count);
* ``vector_s``       — the dense vector sweep (``prune=False,
  schedule="input"``: the PR-1 execution order under this tree's lazy
  result materialization);
* ``vector_eager_s`` — the same dense sweep with every per-sink vector
  dict forced, reproducing the PR-1 backend's *eager* accounting;
* ``sparse_pr3_s``   — the PR-3 strategy pinned explicitly
  (``prune=True, cells="off", chunking="fixed"``: row pruning and cone
  clustering without cell compaction or adaptive widths);
* ``sparse_full_rows_s`` — the PR-4 strategy pinned (``rows="full"``
  with the auto stack otherwise: cell-compacted kernels on full-row
  slot buffers with the dirty-row restore);
* ``sparse_s``       — the full defaults (``prune/cells/chunking/rows``
  all ``"auto"``: cell-compacted kernels, compacted union-of-cones
  state matrices, recalibrated wide chunks and the saturated-chunk
  dense fallback), with the backend's ``sweep_stats`` (cell density,
  compact sweeps/rows, chunk splits, dense fallbacks) recorded
  alongside;
* ``sharded_s``      — the multi-process driver under its default
  crossover guard (``sharded_process_path`` records whether worker
  processes actually engaged);
* ``sharded_warm_s`` / ``sharded_resilient_s`` — warm-pool sharded runs
  under the default fault policy and under an armed one (a per-shard
  deadline plus retry budget, so the scheduler tracks submission times
  and deadline marks on every wait).  Their ratio,
  ``resilience_overhead``, is the clean-path cost of the PR-6 fault
  machinery — gated at <2% by ``--check`` on circuits where worker
  processes engage and the warm run clears the noise floor.  The
  resilience counters of the armed run land in
  ``sharded_resilience_stats`` (all zero on a healthy host);

plus a **clustered-site workload**: one cone-cluster's sites (a module's
worth of neighbors, the MBU/per-module shape) measured dense
(``clustered_vector_s``), PR-3 row-sparse (``clustered_sparse_s``),
PR-4 cell-compacted on full-row buffers (``clustered_full_rows_s``) and
the compacted-rows default (``clustered_compact_s``);

plus an **incremental what-if workload** (the PR-7 design loop): a full
packed ``snapshot`` (``delta_snapshot_s``), then ``analyze_delta`` for a
representative single-gate edit (``delta_single_s``, with the dirty/
reused split) and for a 1%-of-sites polarity-swap batch
(``delta_pct_s``), against a warm full re-analysis of the same edited
circuit (``delta_full_s``).  ``delta_speedup_vs_full`` is the gated
ratio; bit-identity of the spliced result is asserted in-run
(``delta_identical``);

plus the **SER-as-a-service workload** (the PR-8 server): per circuit,
a cold one-shot CLI ``analyze`` subprocess (``serve_cold_s``) against
the first (``serve_first_s``), fresh-sweep (``serve_resweep_s``) and
artifact-cached repeat (``serve_warm_s``) latencies of one long-lived
``repro serve`` instance.  ``serve_warm_speedup`` is gated absolutely
at :data:`SERVE_WARM_SPEEDUP_FLOOR` where the cold run clears its
noise floor;

plus the **config-layer cost row** (the PR-10 unification): the same
warm full-circuit vector sweep invoked through the legacy kwargs
surface (``config_kwargs_s``) and through one prebuilt
``AnalysisConfig`` object (``config_object_s``).  Both routes funnel
into the same config internally, so their ratio ``config_overhead``
isolates exactly what the unification added per call — construction,
validation and routing of the typed option layer — and is gated
absolutely at :data:`CONFIG_OVERHEAD_CEILING` wherever the kwargs run
clears :data:`CONFIG_NOISE_FLOOR_S`;

plus the **crash-durability workload** (the PR-9 checkpoint layer):
per circuit, a plain sharded sweep (``durab_plain_s``), the same sweep
journaling every finished shard to a checkpoint directory
(``durab_cold_s``; their ratio ``checkpoint_overhead`` is the clean-path
cost of durability) and a fresh engine resuming from that directory
(``durab_resume_s``, every shard served checksum-verified from disk,
no worker pool spun up).  ``resume_speedup = durab_plain_s /
durab_resume_s`` is a checked ratio, and ``resume_identical`` — the
resumed result ``np.array_equal`` to the clean run — hard-fails the
``--check`` gate when false: a fast restart that disagrees is not
recovery, it's corruption.

Results land in a JSON document (default ``BENCH_pr10.json``, written
atomically: temp file + rename, so a crashed bench never leaves a
truncated baseline) with host metadata; when the committed
``BENCH_pr9.json`` sits next to the output the cross-PR ladder ratios
(this run vs the *recorded* PR-9 seconds, same container) are included
per circuit as ``vs_prev_baseline``.

``--check BASELINE`` compares the *speedup ratios* of a fresh run against
a committed baseline and exits non-zero on a >``--tolerance`` regression
(default 25%).  Only ratios are compared — absolute seconds shift with
host hardware, while the sparse/dense and clustered ratios are properties
of the execution strategy; circuits present in only one file are skipped,
as are baseline ratios near parity (<1.2 — not speedup claims to defend).
Two absolute checks ride along: the fresh run's ``resilience_overhead``
and ``config_overhead`` must each stay under 1.02 wherever they are
measurable — the fault machinery and the unified config layer both
promised a <2% clean-path cost.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from datetime import datetime, timezone

#: Above this node count the scalar reference is sampled + extrapolated.
SCALAR_FULL_MAX_NODES = 7_000
SCALAR_SAMPLE_SITES = 200

DEFAULT_CIRCUITS = ("s953", "s1423", "s9234", "s38417")
QUICK_CIRCUITS = ("s953", "s1423", "s9234")

#: The ratio metrics ``--check`` compares (host-independent by design).
CHECKED_RATIOS = (
    "speedup_sparse_vs_vector",
    "clustered_speedup",
    "speedup_sparse_vs_pr3_strategy",
    "clustered_compact_speedup",
    "speedup_compact_vs_full_rows",
    "clustered_rows_speedup",
    "delta_speedup_vs_full",
    "serve_warm_speedup",
    "resume_speedup",
)

#: The PR-8 service gate: a repeat request against the warm server must
#: beat the cold one-shot CLI by at least this factor — the server's
#: whole reason to exist is amortizing interpreter start, netlist build
#: and the sweep across requests.  Only gated where the cold run clears
#: the noise floor (interpreter startup dominates tiny circuits).
SERVE_WARM_SPEEDUP_FLOOR = 5.0
SERVE_COLD_NOISE_FLOOR_S = 1.0

#: The clean-path cost ceiling for the fault-tolerance machinery: an
#: armed policy (per-shard deadline + retry budget) may cost at most 2%
#: over the default policy on a healthy run.  Only gated where worker
#: processes actually engaged and the warm run clears the noise floor.
RESILIENCE_OVERHEAD_CEILING = 1.02
RESILIENCE_NOISE_FLOOR_S = 0.5

#: The clean-path cost ceiling for the unified AnalysisConfig layer
#: (PR 10): routing a sweep through one prebuilt config object may cost
#: at most 2% over the legacy kwargs surface on the same warm engine.
#: Only gated where the kwargs run clears the noise floor — below it
#: the ratio measures dispatch jitter, not the option layer.
CONFIG_OVERHEAD_CEILING = 1.02
CONFIG_NOISE_FLOOR_S = 0.25

#: The resilience counters snapshotted next to the armed sharded run —
#: all zero on a healthy host (anything else means the bench itself hit
#: worker failures, which taints every sharded timing in the row).
_RESILIENCE_STAT_KEYS = (
    "retries", "respawns", "worker_crashes", "shard_errors",
    "shard_timeouts", "transport_fallbacks", "degraded_shards",
    "quarantined_segments",
)

#: Sweep-stat counters copied next to the timing they describe.
_SWEEP_STAT_KEYS = (
    "chunks", "chunk_splits", "dense_fallback_sweeps",
    "compact_sweeps", "compact_rows",
    "groups_dense", "groups_row", "groups_cell",
    "cells_on", "cells_total", "cells_computed", "cells_dense",
)


def _build(name: str):
    from repro.netlist.generate import generate_iscas
    from repro.netlist.library import s27
    from repro.probability.monte_carlo import monte_carlo_signal_probabilities

    circuit = s27() if name == "s27" else generate_iscas(name)
    sp = monte_carlo_signal_probabilities(circuit, n_vectors=20_000, seed=1)
    return circuit, sp


def _fresh_engine(circuit, sp):
    from repro.core.epp import EPPEngine

    return EPPEngine(circuit, signal_probs=sp)


def _best_of(measure, floor_s: float = 0.5, max_repeats: int = 3) -> float:
    """Best-of timing for sub-second measurements (noise floor for CI).

    One measurement above ``floor_s`` is trusted as-is; faster ones repeat
    up to ``max_repeats`` times and keep the minimum.
    """
    best = measure()
    repeats = 1
    while best < floor_s and repeats < max_repeats:
        best = min(best, measure())
        repeats += 1
    return best


def _timed_analyze(engine, sites, eager: bool = False, **kwargs) -> float:
    def measure() -> float:
        start = time.perf_counter()
        results = engine.analyze(sites=sites, backend="vector", **kwargs)
        if eager:
            # Force every per-sink dict, reproducing the eager per-object
            # packaging the PR-1 backend performed inside analyze().
            for result in results.values():
                len(result.sink_values)
        return time.perf_counter() - start

    # Best-of-5 even for the multi-second circuits: these rows become the
    # committed regression baseline, and single-shot measurements on a
    # shared runner swing 20-30% with background load — more than the
    # strategy effects the trajectory file exists to pin.
    return _best_of(measure, floor_s=30.0, max_repeats=5)


def _snapshot_stats(backend) -> dict:
    stats = {key: backend.sweep_stats[key] for key in _SWEEP_STAT_KEYS}
    if stats["cells_total"]:
        stats["cell_density"] = stats["cells_on"] / stats["cells_total"]
        stats["cells_computed_fraction"] = (
            stats["cells_computed"] / stats["cells_total"]
        )
    return stats


def bench_circuit(name: str, jobs: int | None) -> dict:
    from repro.core.schedule import cone_cluster_order

    circuit, sp = _build(name)
    engine = _fresh_engine(circuit, sp)
    sites = engine.default_sites()
    n_nodes = engine.compiled.n
    row: dict = {"n_nodes": n_nodes, "n_sites": len(sites)}

    # ---- scalar reference (sampled + extrapolated on large circuits) ----
    if n_nodes <= SCALAR_FULL_MAX_NODES:
        scalar_sites, scale = sites, 1.0
    else:
        scalar_sites = random.Random(7).sample(sites, SCALAR_SAMPLE_SITES)
        scale = len(sites) / len(scalar_sites)
    scalar_engine = _fresh_engine(circuit, sp)
    start = time.perf_counter()
    scalar_engine.analyze(sites=scalar_sites, backend="scalar")
    row["scalar_s"] = (time.perf_counter() - start) * scale
    row["scalar_extrapolated"] = scale != 1.0

    # ---- dense vector (PR-1 order), lazy and eager accounting ----
    row["vector_s"] = _timed_analyze(
        _fresh_engine(circuit, sp), sites, prune=False, schedule="input"
    )
    row["vector_eager_s"] = _timed_analyze(
        _fresh_engine(circuit, sp), sites, eager=True,
        prune=False, schedule="input",
    )

    # ---- PR-3 strategy pinned: row pruning without cell compaction ----
    row["sparse_pr3_s"] = _timed_analyze(
        _fresh_engine(circuit, sp), sites,
        prune=True, cells="off", chunking="fixed",
    )

    # ---- PR-4 strategy pinned: cell compaction on full-row buffers ----
    row["sparse_full_rows_s"] = _timed_analyze(
        _fresh_engine(circuit, sp), sites, rows="full",
    )

    # ---- full defaults: cell-compacted, adaptive, dense-fallback ----
    # One warm-up analyze first, snapshotted immediately: the recorded
    # sweep_stats describe exactly one analyze() run, not the cumulative
    # counters of every best-of repeat.
    sparse_engine = _fresh_engine(circuit, sp)
    sparse_engine.analyze(sites=sites, backend="vector")
    row["sweep_stats"] = _snapshot_stats(sparse_engine.vector_backend())
    row["sparse_s"] = _timed_analyze(sparse_engine, sites)

    # ---- clean-path cost of the unified config layer (PR 10) ----
    # The same warm vector sweep, differing only in how the knobs
    # arrive: spelled out as legacy kwargs vs one prebuilt
    # AnalysisConfig.  Both routes build the same config internally, so
    # the ratio isolates construction + validation + routing of the
    # typed option layer — the <2% promise the unification shipped
    # under.  Best-of-several on both sides for the same reason as the
    # resilience gate: a ratio gated at 1.02 cannot ride on two single
    # samples of a shared runner.
    from repro.core.config import AnalysisConfig

    config_knobs = dict(
        prune=True, schedule="cone", cells="auto", chunking="auto",
        rows="auto",
    )
    config_object = AnalysisConfig(backend="vector", **config_knobs)

    def timed_config(call) -> float:
        call()  # warm the plan for this exact knob set before timing

        def measure() -> float:
            start = time.perf_counter()
            call()
            return time.perf_counter() - start

        return _best_of(measure, floor_s=20.0, max_repeats=5)

    row["config_kwargs_s"] = timed_config(
        lambda: sparse_engine.analyze(
            sites=sites, backend="vector", **config_knobs
        )
    )
    row["config_object_s"] = timed_config(
        lambda: sparse_engine.analyze(sites=sites, config=config_object)
    )
    if row["config_kwargs_s"] > 0.0:
        row["config_overhead"] = (
            row["config_object_s"] / row["config_kwargs_s"]
        )

    # ---- sharded driver, default guard, cold pool included ----
    sharded_engine = _fresh_engine(circuit, sp)
    backend = sharded_engine.sharded_backend(jobs=jobs)
    start = time.perf_counter()
    sharded_engine.analyze(sites=sites, backend="sharded", jobs=jobs)
    row["sharded_s"] = time.perf_counter() - start
    row["sharded_jobs"] = backend.jobs
    row["sharded_process_path"] = backend.pool_started

    # ---- clean-path cost of the fault machinery (warm pools) ----
    # Warm-pool timings on both sides so the ratio isolates the
    # scheduler's bookkeeping — per-shard submission clocks, deadline
    # marks on every wait, outcome records — from pool spin-up noise.
    # The armed policy changes no failure behaviour on a healthy run;
    # it only makes the driver *track* deadlines, which is exactly the
    # overhead the <2% gate defends.  The repeat floor is high enough
    # that even the biggest circuit's warm run is a best-of-several —
    # a ratio gated at 1.02 cannot ride on two single samples.
    def timed_sharded(engine_backend) -> float:
        def measure() -> float:
            start = time.perf_counter()
            engine_backend.analyze_sites(
                [sharded_engine.compiled.index[site] for site in sites]
            )
            return time.perf_counter() - start

        return _best_of(measure, floor_s=20.0, max_repeats=5)

    row["sharded_warm_s"] = timed_sharded(backend)
    backend.close()
    resilient_engine = _fresh_engine(circuit, sp)
    resilient = resilient_engine.sharded_backend(
        jobs=jobs, retries=2, shard_timeout=300.0
    )
    resilient_engine.analyze(
        sites=sites, backend="sharded", jobs=jobs,
        retries=2, shard_timeout=300.0,
    )  # warm the pool and worker plans before timing
    row["sharded_resilient_s"] = timed_sharded(resilient)
    row["sharded_resilience_stats"] = {
        key: resilient.stats[key] for key in _RESILIENCE_STAT_KEYS
    }
    if row["sharded_process_path"] and row["sharded_warm_s"] > 0.0:
        row["resilience_overhead"] = (
            row["sharded_resilient_s"] / row["sharded_warm_s"]
        )
    resilient.close()

    # ---- clustered-site workload: one cone-cluster's neighborhood ----
    # Only meaningful on circuits with enough sites that a cluster is a
    # real sub-workload (a 50-site circuit's "cluster" measures pure
    # dispatch overhead, and the crossover guard routes it to the scalar
    # kernel in production anyway).
    if len(sites) >= 1000:
        ids = [engine.compiled.index[site] for site in sites]
        order = cone_cluster_order(engine.compiled, ids)
        width = min(2000, max(200, len(ids) // 8))
        # The head of the clustered order: the sites feeding the first
        # dominant-sink group — one module's worth of neighbors, the
        # MBU/per-module analysis shape.
        cluster = [ids[i] for i in order[:width].tolist()]
        row["clustered_sites"] = len(cluster)

        def measure_cluster(stats_key: str | None = None, **config) -> float:
            # One warm backend per config: the quantity of interest is the
            # steady-state sweep strategy, not first-call buffer faulting.
            backend = _fresh_engine(circuit, sp).vector_backend(**config)
            backend.min_vector_work = 0
            backend.analyze_sites(cluster)  # warmup: buffers + plan
            if stats_key:
                # Snapshot after exactly one run, before the timing repeats
                # accumulate further counts.
                row[stats_key] = _snapshot_stats(backend)

            def timed() -> float:
                start = time.perf_counter()
                backend.analyze_sites(cluster)
                return time.perf_counter() - start

            # Sub-second workloads, so repeats are cheap — and a single
            # load spike on a ~1s dense reference would otherwise distort
            # every clustered ratio derived from it.
            return _best_of(timed, floor_s=2.0, max_repeats=5)

        row["clustered_vector_s"] = measure_cluster(
            prune=False, schedule="input", cells="off", chunking="fixed",
            rows="full",
        )
        row["clustered_sparse_s"] = measure_cluster(
            prune=True, schedule="cone", cells="off", chunking="fixed",
            rows="full",
        )
        row["clustered_full_rows_s"] = measure_cluster(
            prune=True, schedule="cone", cells="auto", chunking="auto",
            rows="full",
        )
        row["clustered_compact_s"] = measure_cluster(
            stats_key="clustered_sweep_stats",
            prune=True, schedule="cone", cells="auto", chunking="auto",
        )
        row["clustered_speedup"] = (
            row["clustered_vector_s"] / row["clustered_sparse_s"]
        )
        row["clustered_compact_speedup"] = (
            row["clustered_vector_s"] / row["clustered_compact_s"]
        )
        row["clustered_compact_vs_sparse"] = (
            row["clustered_sparse_s"] / row["clustered_compact_s"]
        )
        row["clustered_rows_speedup"] = (
            row["clustered_full_rows_s"] / row["clustered_compact_s"]
        )

    # ---- incremental what-if workload: snapshot once, edit, re-sweep ----
    # The design-loop shape the PR-7 layer exists for.  The user SP map
    # (the Monte-Carlo one every timing above uses) is what a designer
    # iterating on a netlist would hold fixed, and it keeps the delta's
    # cost structural: no global SP recompute rides on the timing.
    import numpy as np

    from repro.experiments.whatif import representative_edit
    from repro.netlist.gate_types import GateType

    delta_engine = _fresh_engine(circuit, sp)
    start = time.perf_counter()
    prev = delta_engine.snapshot()
    row["delta_snapshot_s"] = time.perf_counter() - start
    single_edits, _ = representative_edit(prev, max_probes=24)

    def timed_delta(edits) -> tuple[float, object]:
        holder = {}

        def measure() -> float:
            start = time.perf_counter()
            holder["delta"] = delta_engine.analyze_delta(prev, edits)
            return time.perf_counter() - start

        return _best_of(measure, floor_s=2.0, max_repeats=5), holder["delta"]

    row["delta_single_s"], delta = timed_delta(single_edits)
    row["delta_single_dirty"] = delta.stats["dirty"]
    row["delta_single_reused"] = delta.stats["reused"]

    def timed_full(delta) -> float:
        def measure() -> float:
            start = time.perf_counter()
            delta.engine.snapshot(**delta.knobs)
            return time.perf_counter() - start

        return _best_of(measure, floor_s=2.0, max_repeats=3)

    row["delta_full_s"] = timed_full(delta)
    full = delta.engine.snapshot(**delta.knobs)
    row["delta_identical"] = bool(
        delta.site_names == full.site_names
        and all(np.array_equal(a, b) for a, b in zip(delta.packed, full.packed))
    )
    row["delta_speedup_vs_full"] = row["delta_full_s"] / row["delta_single_s"]

    # 1%-of-sites batch: evenly spaced polarity swaps across the netlist.
    from repro.core.epp_delta import EditSet

    swaps = {
        GateType.AND: "nand", GateType.NAND: "and",
        GateType.OR: "nor", GateType.NOR: "or",
    }
    swappable = [g for g in circuit.gates if circuit.node(g).gate_type in swaps]
    n_batch = max(1, len(sites) // 100)
    stride = max(1, len(swappable) // n_batch)
    batch = swappable[::stride][:n_batch]
    pct_edits = EditSet()
    for g in batch:
        pct_edits.replace_gate(g, swaps[circuit.node(g).gate_type])
    row["delta_pct_edits"] = len(batch)
    row["delta_pct_s"], pct_delta = timed_delta(pct_edits)
    row["delta_pct_dirty"] = pct_delta.stats["dirty"]
    row["delta_pct_speedup_vs_full"] = (
        timed_full(pct_delta) / row["delta_pct_s"]
    )

    # ---- ratios ----
    row["speedup_sparse_vs_vector"] = row["vector_s"] / row["sparse_s"]
    row["speedup_sparse_vs_pr1_vector"] = row["vector_eager_s"] / row["sparse_s"]
    row["speedup_sparse_vs_scalar"] = row["scalar_s"] / row["sparse_s"]
    row["speedup_sparse_vs_pr3_strategy"] = row["sparse_pr3_s"] / row["sparse_s"]
    row["speedup_compact_vs_full_rows"] = row["sparse_full_rows_s"] / row["sparse_s"]
    for key, value in list(row.items()):
        if isinstance(value, float):
            row[key] = round(value, 4)
    for stats in (row.get("sweep_stats"), row.get("clustered_sweep_stats")):
        if stats:
            for key, value in list(stats.items()):
                if isinstance(value, float):
                    stats[key] = round(value, 4)
    return row


def bench_server(document: dict, circuits, verbose: bool = True) -> None:
    """The SER-as-a-service workload (PR 8): warm server vs cold CLI.

    Per circuit, three latencies around the same ``analyze`` request:

    * ``serve_cold_s``  — a one-shot ``python -m repro analyze`` child
      process (interpreter start + netlist build + sweep + report), the
      pre-server cost of every single what-if;
    * ``serve_first_s`` — the first request against an already-running
      server (netlist build + sweep; the interpreter is amortized);
    * ``serve_resweep_s`` — a fresh sweep against the warm engine
      (coalescing disabled, cache-missing request: engine and plan
      reuse without the artifact store);
    * ``serve_warm_s``  — the repeat of an identical request (artifact
      cache hit: integrity-checked bytes straight off the store).

    ``serve_warm_speedup = serve_cold_s / serve_warm_s`` is gated
    absolutely at :data:`SERVE_WARM_SPEEDUP_FLOOR` wherever the cold
    run clears :data:`SERVE_COLD_NOISE_FLOOR_S`.
    """
    import signal
    import subprocess
    import tempfile

    from repro.server.client import ServeClient

    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")

    def cold_cli(name: str) -> float:
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "analyze", name, "--top", "1"],
            check=True, capture_output=True, env=env,
        )
        return time.perf_counter() - start

    sock = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"), "repro.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", sock, "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
    )
    try:
        deadline = time.monotonic() + 60.0
        while not os.path.exists(sock):
            if proc.poll() is not None or time.monotonic() > deadline:
                raise RuntimeError(
                    "analysis server did not come up: "
                    + proc.stderr.read().decode(errors="replace")
                )
            time.sleep(0.1)
        with ServeClient(sock, timeout=600.0) as client:
            for name in circuits:
                row = document["circuits"][name]
                row["serve_cold_s"] = cold_cli(name)
                start = time.perf_counter()
                client.analyze(circuit=name, fit=True, top=1)
                row["serve_first_s"] = time.perf_counter() - start
                start = time.perf_counter()
                resweep = client.analyze(
                    circuit=name, fit=True, top=2, coalesce=False
                )
                row["serve_resweep_s"] = time.perf_counter() - start
                start = time.perf_counter()
                warm = client.analyze(circuit=name, fit=True, top=1)
                row["serve_warm_s"] = time.perf_counter() - start
                if not warm["result"]["cached"] or resweep["result"]["cached"]:
                    raise RuntimeError(
                        f"{name}: serve workload measured the wrong cache "
                        "path (warm must hit, resweep must miss)"
                    )
                row["serve_warm_speedup"] = (
                    row["serve_cold_s"] / row["serve_warm_s"]
                )
                for key in ("serve_cold_s", "serve_first_s",
                            "serve_resweep_s", "serve_warm_s",
                            "serve_warm_speedup"):
                    row[key] = round(row[key], 4)
                if verbose:
                    print(
                        f"[bench] {name} serve: cold {row['serve_cold_s']:.2f}s  "
                        f"first {row['serve_first_s']:.2f}s  "
                        f"resweep {row['serve_resweep_s']:.2f}s  "
                        f"warm {row['serve_warm_s'] * 1e3:.1f}ms  "
                        f"({row['serve_warm_speedup']:.0f}x vs cold)",
                        flush=True,
                    )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged server
            proc.kill()
            proc.communicate()


def bench_durability(document: dict, circuits, jobs, verbose: bool = True) -> None:
    """The crash-durability workload (PR 9): checkpointed sharded sweeps.

    Per circuit, three sharded ``pack_sites`` runs over the full site
    roster (``min_process_work=0`` so the process path always engages):

    * ``durab_plain_s``  — no checkpoint: the baseline cost of the sweep
      including pool spin-up, exactly what a crashed run loses;
    * ``durab_cold_s``   — journaling every finished shard to a fresh
      checkpoint directory (``checkpoint_overhead`` is the ratio: the
      clean-path price of durability);
    * ``durab_resume_s`` — a *fresh* engine pointed at the populated
      directory: every shard is loaded checksum-verified from disk and
      no worker pool starts.

    ``resume_speedup = durab_plain_s / durab_resume_s`` joins the
    checked ratios; ``resume_identical`` asserts all three runs produce
    ``np.array_equal`` packed arrays *and* that the resume run never
    started a pool — it hard-fails ``--check`` when false.
    """
    import shutil
    import tempfile

    import numpy as np

    from repro.core.epp_shard import ShardedEPPEngine

    for name in circuits:
        row = document["circuits"][name]
        circuit, sp = _build(name)
        engine = _fresh_engine(circuit, sp)
        ids = [engine.compiled.index[site] for site in engine.default_sites()]
        workdir = tempfile.mkdtemp(prefix="repro-durab-")
        ckpt = os.path.join(workdir, "ckpt")

        def sharded(checkpoint=None):
            return ShardedEPPEngine(
                engine.compiled, engine._sp, jobs=jobs,
                min_process_work=0, checkpoint=checkpoint,
            )

        try:
            plain = sharded()
            start = time.perf_counter()
            ref = plain.pack_sites(ids)
            row["durab_plain_s"] = time.perf_counter() - start
            plain.close()

            cold = sharded(ckpt)
            start = time.perf_counter()
            packed_cold = cold.pack_sites(ids)
            row["durab_cold_s"] = time.perf_counter() - start
            row["durab_shards_journaled"] = cold.stats["checkpointed_shards"]
            cold.close()

            resume = sharded(ckpt)
            start = time.perf_counter()
            packed_resume = resume.pack_sites(ids)
            row["durab_resume_s"] = time.perf_counter() - start
            row["durab_shards_resumed"] = resume.stats["checkpoint_shards"]
            resume_pool_started = resume.pool_started
            resume.close()

            row["resume_identical"] = bool(
                all(np.array_equal(a, b) for a, b in zip(ref, packed_cold))
                and all(np.array_equal(a, b) for a, b in zip(ref, packed_resume))
                and not resume_pool_started
            )
            if row["durab_plain_s"] > 0.0:
                row["checkpoint_overhead"] = (
                    row["durab_cold_s"] / row["durab_plain_s"]
                )
            if row["durab_resume_s"] > 0.0:
                row["resume_speedup"] = (
                    row["durab_plain_s"] / row["durab_resume_s"]
                )
            for key in ("durab_plain_s", "durab_cold_s", "durab_resume_s",
                        "checkpoint_overhead", "resume_speedup"):
                if key in row:
                    row[key] = round(row[key], 4)
            if verbose:
                print(
                    f"[bench] {name} durability: plain "
                    f"{row['durab_plain_s']:.2f}s  journaled "
                    f"{row['durab_cold_s']:.2f}s  resume "
                    f"{row['durab_resume_s'] * 1e3:.0f}ms "
                    f"({row.get('resume_speedup', float('nan')):.0f}x, "
                    f"identical={row['resume_identical']})",
                    flush=True,
                )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


def host_metadata() -> dict:
    import numpy

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def attach_prev_baseline(document: dict, baseline_path: str) -> None:
    """Cross-PR ladder: this run's seconds vs the committed previous-PR
    seconds.

    Only meaningful when both were measured on the same class of host
    (the committed trajectory files all come from the CI container); the
    ratios are stored per circuit under ``vs_prev_baseline`` and are
    informational — the ``--check`` gate compares within-run ratios only.
    """
    if not os.path.exists(baseline_path):
        return
    with open(baseline_path, encoding="utf-8") as handle:
        prev = json.load(handle)
    for name, row in document["circuits"].items():
        base = prev.get("circuits", {}).get(name)
        if not base:
            continue
        ladder = {"baseline": baseline_path}
        if base.get("sparse_s") and row.get("sparse_s"):
            ladder["full_circuit_vs_prev_sparse"] = round(
                base["sparse_s"] / row["sparse_s"], 4
            )
        if base.get("clustered_compact_s") and row.get("clustered_compact_s"):
            ladder["clustered_vs_prev_compact"] = round(
                base["clustered_compact_s"] / row["clustered_compact_s"], 4
            )
        if base.get("sharded_s") and row.get("sharded_s"):
            ladder["sharded_vs_prev"] = round(
                base["sharded_s"] / row["sharded_s"], 4
            )
        row["vs_prev_baseline"] = ladder


def run(circuits, jobs, out_path, verbose=True, prev_baseline=None) -> dict:
    document = {"host": host_metadata(), "circuits": {}}
    for name in circuits:
        if verbose:
            print(f"[bench] {name} ...", flush=True)
        row = bench_circuit(name, jobs)
        document["circuits"][name] = row
        if verbose:
            clustered = (
                f"  clustered {row['clustered_speedup']:.2f}x "
                f"(compact {row['clustered_compact_speedup']:.2f}x)"
                if "clustered_speedup" in row else ""
            )
            resilience = (
                f"  resilience-overhead {row['resilience_overhead']:.3f}x"
                if "resilience_overhead" in row else ""
            )
            config_cost = (
                f"  config-overhead {row['config_overhead']:.3f}x"
                if "config_overhead" in row else ""
            )
            delta = (
                f"  delta {row['delta_single_s'] * 1e3:.0f}ms "
                f"({row['delta_single_dirty']}/{row['n_sites']} dirty, "
                f"{row['delta_speedup_vs_full']:.1f}x vs full)"
                if "delta_speedup_vs_full" in row else ""
            )
            print(
                f"  scalar {row['scalar_s']:.2f}s  vector {row['vector_s']:.2f}s "
                f"(eager {row['vector_eager_s']:.2f}s)  "
                f"pr3-sparse {row['sparse_pr3_s']:.2f}s  "
                f"full-rows {row['sparse_full_rows_s']:.2f}s  "
                f"sparse {row['sparse_s']:.2f}s  "
                f"sharded {row['sharded_s']:.2f}s  "
                f"sparse-vs-vector {row['speedup_sparse_vs_vector']:.2f}x"
                f"{config_cost}{resilience}{clustered}{delta}",
                flush=True,
            )
    bench_server(document, circuits, verbose=verbose)
    bench_durability(document, circuits, jobs, verbose=verbose)
    if prev_baseline:
        attach_prev_baseline(document, prev_baseline)
    if out_path:
        # Atomic: a bench killed mid-write must never leave a truncated
        # JSON where the committed regression baseline used to be.
        from repro.core.durable import atomic_write_bytes

        blob = (json.dumps(document, indent=2) + "\n").encode()
        atomic_write_bytes(out_path, blob)
        if verbose:
            print(f"[bench] wrote {out_path}")
    return document


def check_absolute_gates(current: dict) -> list[str]:
    """Gates checked on the *fresh* run only (no baseline needed).

    Fault machinery must stay <2% on the clean path: wherever worker
    processes engaged and the warm sharded run clears the noise floor,
    the armed-policy run may cost at most
    :data:`RESILIENCE_OVERHEAD_CEILING`.  The unified config layer made
    the same promise: routing the sweep through one ``AnalysisConfig``
    may cost at most :data:`CONFIG_OVERHEAD_CEILING` over the legacy
    kwargs spelling where the kwargs run clears its noise floor.  A
    non-zero resilience counter also fails — the bench hitting real
    worker failures taints every sharded timing in the row.  And the
    incremental what-if result must be bit-identical to the full
    re-analysis it raced — a fast delta that disagrees is not a
    speedup, it's a bug.
    """
    failures = []
    for name, row in current.get("circuits", {}).items():
        if row.get("delta_identical") is False:
            failures.append(
                f"{name}: analyze_delta result is not bit-identical to the "
                "full re-analysis"
            )
        if row.get("resume_identical") is False:
            failures.append(
                f"{name}: checkpoint-resumed sharded sweep is not "
                "bit-identical to the clean run (or restarted the pool)"
            )
        stats = row.get("sharded_resilience_stats", {})
        dirty = {key: count for key, count in stats.items() if count}
        if dirty:
            failures.append(f"{name}: bench run hit worker failures {dirty}")
        speedup = row.get("serve_warm_speedup")
        if (
            speedup is not None
            and row.get("serve_cold_s", 0.0) >= SERVE_COLD_NOISE_FLOOR_S
            and speedup < SERVE_WARM_SPEEDUP_FLOOR
        ):
            failures.append(
                f"{name}.serve_warm_speedup: {speedup:.1f} < "
                f"{SERVE_WARM_SPEEDUP_FLOOR} (a warm-server repeat request "
                "must beat the cold one-shot CLI)"
            )
        config_overhead = row.get("config_overhead")
        if (
            config_overhead is not None
            and row.get("config_kwargs_s", 0.0) >= CONFIG_NOISE_FLOOR_S
            and config_overhead > CONFIG_OVERHEAD_CEILING
        ):
            failures.append(
                f"{name}.config_overhead: {config_overhead:.3f} > "
                f"{CONFIG_OVERHEAD_CEILING} (routing a sweep through one "
                f"AnalysisConfig must cost <2% over legacy kwargs)"
            )
        overhead = row.get("resilience_overhead")
        if overhead is None:
            continue
        if row.get("sharded_warm_s", 0.0) < RESILIENCE_NOISE_FLOOR_S:
            continue  # sub-noise-floor sweeps measure dispatch, not policy
        if overhead > RESILIENCE_OVERHEAD_CEILING:
            failures.append(
                f"{name}.resilience_overhead: {overhead:.3f} > "
                f"{RESILIENCE_OVERHEAD_CEILING} (armed fault policy must "
                f"cost <2% on the clean path)"
            )
    return failures


def check_regression(current: dict, baseline: dict, baseline_path: str,
                     tolerance: float) -> int:
    """Exit status 0 if no checked ratio regressed beyond ``tolerance``."""
    failures = check_absolute_gates(current)
    for name, base_row in baseline.get("circuits", {}).items():
        row = current["circuits"].get(name)
        if row is None:
            continue  # roster mismatch: nothing to compare for this circuit
        if base_row.get("sparse_s", 0.0) < 0.25:
            # Sub-quarter-second sweeps measure dispatch noise, not the
            # execution strategy; their ratios are not regression signal.
            continue
        for metric in CHECKED_RATIOS:
            if metric not in base_row or metric not in row:
                continue
            if base_row[metric] < 1.2:
                # A baseline ratio near parity is not a speedup claim to
                # defend; host differences (core count, NumPy threading)
                # move it more than real regressions would.
                continue
            floor = base_row[metric] * (1.0 - tolerance)
            if row[metric] < floor:
                failures.append(
                    f"{name}.{metric}: {row[metric]:.2f} < "
                    f"{floor:.2f} (baseline {base_row[metric]:.2f} "
                    f"- {tolerance:.0%})"
                )
    if failures:
        print("[bench] REGRESSION vs " + baseline_path, file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 2
    print(f"[bench] no regression vs {baseline_path} (tolerance {tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Full-circuit analyze benchmark: scalar/vector/sparse/sharded"
    )
    parser.add_argument("--circuits", nargs="*", default=None,
                        help=f"roster (default: {' '.join(DEFAULT_CIRCUITS)})")
    parser.add_argument("--quick", action="store_true",
                        help=f"short roster ({' '.join(QUICK_CIRCUITS)})")
    parser.add_argument("--out", default="BENCH_pr10.json",
                        help="output JSON path ('' to skip writing)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sharded worker count (default: one per core)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare speedup ratios against a baseline JSON "
                        "(also applies the <2%% resilience- and "
                        "config-overhead gates)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative ratio drop before failing (0.25)")
    parser.add_argument("--prev-baseline", default="BENCH_pr9.json",
                        help="committed previous-PR trajectory file for the "
                        "cross-PR ladder ratios ('' to skip)")
    args = parser.parse_args(argv)

    circuits = args.circuits or (QUICK_CIRCUITS if args.quick else DEFAULT_CIRCUITS)
    baseline = None
    if args.check:
        # Load the baseline *before* running: with the default --out both
        # paths may name the same file, and writing first would make the
        # check compare the fresh run against itself (and destroy the
        # committed baseline).
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        if os.path.abspath(args.check) == os.path.abspath(args.out or ""):
            args.out = ""  # never clobber the baseline being checked
    document = run(circuits, args.jobs, args.out, prev_baseline=args.prev_baseline)
    if baseline is not None:
        return check_regression(document, baseline, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
