"""Figure 1 microbenchmark: the worked example through the full engine.

Regenerates the paper's Figure 1 numbers on every round and asserts the
golden values, so the benchmark doubles as a hot-path correctness check.
"""

from repro.experiments.figure1 import run_figure1


def test_figure1_regeneration(benchmark):
    result = benchmark(run_figure1)
    assert result.matches_paper
    benchmark.extra_info["p_sensitized"] = result.p_sensitized
