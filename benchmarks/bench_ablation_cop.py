"""Ablation: COP one-pass observability vs per-site EPP.

COP computes every node's observability in ONE reverse pass; EPP pays one
forward pass per site but tracks error polarity and real cone structure.
This bench times both over all sites of the same circuit and records each
method's accuracy against exhaustive ground truth — the cost/accuracy
trade the paper's method occupies the middle of.
"""

from repro.core.epp import EPPEngine
from repro.netlist.generate import random_combinational
from repro.probability.cop import cop_observability
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words

_CIRCUIT = random_combinational(9, 120, seed=77)


def _truth():
    injector = FaultInjector(_CIRCUIT)
    words, width = exhaustive_words(_CIRCUIT.inputs)
    good = injector.simulator.run(words, width)
    return {
        site: injector.detection_count(good, site, width) / width
        for site in _CIRCUIT.gates
    }


_TRUTH = _truth()


def _pct_dif(values: dict[str, float]) -> float:
    abs_sum = sum(abs(values[s] - t) for s, t in _TRUTH.items())
    ref_sum = sum(_TRUTH.values())
    return round(100.0 * abs_sum / ref_sum, 2)


def test_cop_all_sites(benchmark):
    values = benchmark(cop_observability, _CIRCUIT)
    benchmark.extra_info["pct_dif_vs_exhaustive"] = _pct_dif(
        {s: values[s] for s in _CIRCUIT.gates}
    )


def test_epp_all_sites(benchmark):
    engine = EPPEngine(_CIRCUIT)

    def run_all():
        return {s: engine.p_sensitized(s) for s in _CIRCUIT.gates}

    values = benchmark(run_all)
    benchmark.extra_info["pct_dif_vs_exhaustive"] = _pct_dif(values)
