"""Substrate benchmarks: the components the headline numbers rest on.

Not a paper column, but regressions here silently distort SysT/SimT, so
the suite pins them: bit-parallel simulation throughput, fault-injection
cone cost, bench parsing, and synthetic generation.
"""

import pytest

from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generate import generate_iscas
from repro.sim.fault_sim import FaultInjector
from repro.sim.logic_sim import BitParallelSimulator
from repro.sim.vectors import RandomVectorSource
from benchmarks.conftest import get_circuit, sample_sites

_WIDTH = 1024


@pytest.mark.parametrize("circuit_name", ["s953", "s9234"])
def test_bit_parallel_simulation(benchmark, circuit_name):
    circuit = get_circuit(circuit_name)
    simulator = BitParallelSimulator(circuit)
    source = RandomVectorSource(circuit.inputs + circuit.flip_flops, seed=0)
    words = source.next_words(_WIDTH)
    benchmark(simulator.run, words, _WIDTH)
    gates = len(circuit.gates)
    patterns_per_s = gates * _WIDTH / benchmark.stats["mean"]
    benchmark.extra_info["gate_patterns_per_second"] = f"{patterns_per_s:.3e}"


@pytest.mark.parametrize("circuit_name", ["s953", "s9234"])
def test_fault_injection(benchmark, circuit_name):
    circuit = get_circuit(circuit_name)
    injector = FaultInjector(circuit)
    source = RandomVectorSource(circuit.inputs + circuit.flip_flops, seed=0)
    words = source.next_words(_WIDTH)
    good = injector.simulator.run(words, _WIDTH)
    sites = sample_sites(circuit_name, 20, seed=6)
    for site in sites:
        injector.fanout_cone(site)  # cache cones: time injection itself

    def inject_all():
        for site in sites:
            injector.detection_count(good, site, _WIDTH)

    benchmark(inject_all)


def test_bench_roundtrip(benchmark):
    text = write_bench(get_circuit("s9234"))

    def roundtrip():
        return parse_bench(text, name="s9234")

    circuit = benchmark(roundtrip)
    assert len(circuit.gates) == 5808


def test_generation(benchmark):
    benchmark(generate_iscas, "s1423")
