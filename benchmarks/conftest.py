"""Shared fixtures for the benchmark suite.

Circuits and signal-probability maps are built once per session; the timed
bodies then measure exactly the quantity named by the paper's column
(per-node EPP time, per-node serial simulation time, SP computation time).

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.epp import EPPEngine
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27 as make_s27
from repro.probability.monte_carlo import monte_carlo_signal_probabilities

#: The circuits benchmarked per size class.  The full Table 2 roster is
#: exercised by ``python -m repro table2``; the pytest-benchmark suite uses
#: a ladder of sizes to keep wall time reasonable while covering 10..22k
#: gates.
BENCH_CIRCUITS = ["s27", "s953", "s1423", "s9234", "s15850", "s38417"]

_cache: dict[str, object] = {}


def get_circuit(name: str):
    key = f"circuit:{name}"
    if key not in _cache:
        _cache[key] = make_s27() if name == "s27" else generate_iscas(name)
    return _cache[key]


def get_sp(name: str, n_vectors: int = 20_000):
    key = f"sp:{name}:{n_vectors}"
    if key not in _cache:
        _cache[key] = monte_carlo_signal_probabilities(
            get_circuit(name), n_vectors=n_vectors, seed=1
        )
    return _cache[key]


def get_engine(name: str) -> EPPEngine:
    key = f"engine:{name}"
    if key not in _cache:
        _cache[key] = EPPEngine(get_circuit(name), signal_probs=get_sp(name))
    return _cache[key]


def sample_sites(name: str, count: int, seed: int = 0) -> list[str]:
    circuit = get_circuit(name)
    sites = circuit.gates
    if count >= len(sites):
        return list(sites)
    return random.Random(seed).sample(sites, count)


@pytest.fixture(params=BENCH_CIRCUITS)
def circuit_name(request):
    return request.param
