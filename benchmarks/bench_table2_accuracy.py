"""Table 2, %Dif column: EPP accuracy against the Monte Carlo reference.

The timed body is the EPP side (cheap); the Monte Carlo reference is
computed once in setup.  The %Dif lands in ``extra_info`` so a benchmark
run regenerates the accuracy column alongside the timing columns.
"""

import pytest

from repro.core.baseline import RandomSimulationEstimator
from benchmarks.conftest import get_circuit, get_engine, get_sp, sample_sites

_REFERENCE_CACHE: dict[str, dict[str, float]] = {}


def _reference(circuit_name: str, sites: list[str]) -> dict[str, float]:
    if circuit_name not in _REFERENCE_CACHE:
        circuit = get_circuit(circuit_name)
        sp = get_sp(circuit_name)
        estimator = RandomSimulationEstimator(
            circuit,
            n_vectors=20_000,
            seed=11,
            state_weights={ff: sp[ff] for ff in circuit.flip_flops},
        )
        _REFERENCE_CACHE[circuit_name] = estimator.estimate(sites)
    return _REFERENCE_CACHE[circuit_name]


@pytest.mark.parametrize("circuit_name", ["s27", "s953", "s1423", "s9234"])
def test_epp_accuracy_vs_reference(benchmark, circuit_name):
    engine = get_engine(circuit_name)
    sites = sample_sites(circuit_name, 40, seed=2)
    reference = _reference(circuit_name, sites)

    def epp_all():
        return {site: engine.p_sensitized(site) for site in sites}

    values = benchmark(epp_all)
    abs_sum = sum(abs(values[s] - reference[s]) for s in sites)
    ref_sum = sum(reference.values())
    benchmark.extra_info["pct_dif"] = round(100.0 * abs_sum / ref_sum, 2)
    benchmark.extra_info["paper_pct_dif_band"] = "3.4 - 12.6"
    assert 100.0 * abs_sum / ref_sum < 30.0
