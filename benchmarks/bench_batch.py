"""Scalar vs vector vs sharded backends: full-circuit ``analyze()`` ladder.

The quantity benchmarked is the tentpole claim: one batched level-parallel
NumPy sweep per chunk of sites versus one Python cone walk per site, both
producing the full per-site :class:`EPPResult` set (per-sink vectors
included).  ``extra_info`` records:

* ``speedup_vs_scalar`` — against the *current* scalar path (which PR 1
  also micro-optimized: per-gate fanin tuples and rule callables are now
  resolved at engine construction);
* ``speedup_vs_seed_scalar`` — against a faithful reconstruction of the
  *seed* scalar hot loop (CSR slice + code->rule dict lookup per gate per
  site), the baseline PR 1's >=5x target named;
* ``sharded_s`` / ``sharded_jobs`` / ``speedup_vs_vector`` — the
  multi-process sharded driver's full-circuit wall-clock against the
  single-process vector backend, measured with the default configuration
  (crossover guard included, pool spin-up inside the timed region — the
  true end-to-end cost a caller pays).  ``sharded_process_path`` records
  whether the workload was large enough to engage worker processes at all
  (small circuits are deliberately routed in-process by the guard).

On the two largest circuits the scalar references are timed on a site
sample and extrapolated linearly (scalar cost is exactly linear in the
site count — one independent cone walk per site); the vector measurement
is always the real full-circuit run.  Runs use a single benchmark round:
full-circuit analyze on s38417 is far too heavy for pytest-benchmark's
default calibration.

Each timing uses a fresh engine so every backend pays its own true cost:
the scalar paths extract one on-path cone per site (cold cache, exactly
as the seed measurement did), while the vector backend never extracts
cones at all — its level plan reads the compiled circuit directly.
"""

import random
import time

import pytest

from benchmarks.conftest import BENCH_CIRCUITS, get_circuit, get_sp

from repro.core.epp import EPPEngine
from repro.core.epp_shard import default_jobs
from repro.core.fourvalue import EPPValue
from repro.core.rules import _RULES_BY_CODE
from repro.core.sensitization import combine_sensitization

# Single source of the scalar-reference sampling policy: run_bench.py owns
# the constants so the nightly trajectory and this suite can never drift.
from benchmarks.run_bench import SCALAR_FULL_MAX_NODES, SCALAR_SAMPLE_SITES


def seed_scalar_analyze(engine, sites):
    """The seed repo's scalar path, reconstructed for an honest baseline.

    Per gate per site: ``compiled.fanin()`` CSR slicing plus a
    ``code -> rule`` dict lookup — exactly the dispatch the seed's
    ``_propagate`` paid before this PR hoisted both to engine construction.
    """
    compiled = engine.compiled
    sp = engine._sp
    code = compiled.code
    rules = dict(_RULES_BY_CODE)
    n = compiled.n
    pa = [0.0] * n
    pa_bar = [0.0] * n
    p0 = [0.0] * n
    p1 = [0.0] * n
    mark = [0] * n
    results = {}
    for generation, site in enumerate(sites, start=1):
        site_id = engine._cones.resolve(site)
        cone = engine.cone(site_id)
        pa[site_id], pa_bar[site_id], p0[site_id], p1[site_id] = 1.0, 0.0, 0.0, 0.0
        mark[site_id] = generation
        for gate in cone.gate_order:
            values = []
            for pin in compiled.fanin(gate):
                if mark[pin] == generation:
                    values.append((pa[pin], pa_bar[pin], p0[pin], p1[pin]))
                else:
                    p = sp[pin]
                    values.append((0.0, 0.0, 1.0 - p, p))
            result = rules[code[gate]](values)
            pa[gate], pa_bar[gate], p0[gate], p1[gate] = result
            mark[gate] = generation
        sink_values = {}
        error_probs = []
        for sink in cone.sinks:
            value = EPPValue.clamped(pa[sink], pa_bar[sink], p0[sink], p1[sink])
            sink_values[compiled.names[sink]] = value
            error_probs.append(value.error_probability)
        results[site] = (combine_sensitization(error_probs), sink_values)
    return results


def scalar_reference_sites(engine):
    """(sites, extrapolation factor) for the scalar reference timings."""
    sites = engine.default_sites()
    if engine.compiled.n <= SCALAR_FULL_MAX_NODES:
        return sites, 1.0
    sample = random.Random(7).sample(sites, SCALAR_SAMPLE_SITES)
    return sample, len(sites) / len(sample)


def fresh_engine(circuit_name: str) -> EPPEngine:
    """An engine with cold per-site caches (cone cache in particular)."""
    return EPPEngine(get_circuit(circuit_name), signal_probs=get_sp(circuit_name))


@pytest.mark.parametrize("circuit_name", BENCH_CIRCUITS)
def test_batch_analyze_speedup(benchmark, circuit_name):
    engine = fresh_engine(circuit_name)
    sites = engine.default_sites()

    rounds = 2 if engine.compiled.n <= SCALAR_FULL_MAX_NODES else 1
    # The timed quantity is the backend's default configuration — since
    # PR 3 that is the cone-aware sparse sweep over cone-clustered chunks.
    benchmark.pedantic(
        lambda: engine.analyze(sites=sites, backend="vector"),
        rounds=rounds, iterations=1, warmup_rounds=1,
    )
    vector_s = benchmark.stats["min"]

    # Dense reference: the PR-1 execution order (no pruning, contiguous
    # input-order chunks), warmed like the pedantic measurement above so
    # the ratio compares execution strategies, not first-call plan build
    # and state-buffer page faults.
    dense_engine = fresh_engine(circuit_name)
    dense_kwargs = dict(backend="vector", prune=False, schedule="input")
    dense_engine.analyze(sites=sites, **dense_kwargs)  # warmup
    t0 = time.perf_counter()
    dense_engine.analyze(sites=sites, **dense_kwargs)
    dense_s = time.perf_counter() - t0

    ref_sites, scale = scalar_reference_sites(engine)
    scalar_engine = fresh_engine(circuit_name)
    t0 = time.perf_counter()
    scalar_engine.analyze(sites=ref_sites, backend="scalar")
    scalar_s = (time.perf_counter() - t0) * scale
    seed_engine = fresh_engine(circuit_name)
    t0 = time.perf_counter()
    seed_scalar_analyze(seed_engine, ref_sites)
    seed_s = (time.perf_counter() - t0) * scale

    # Sharded driver: true end-to-end full-circuit wall-clock (cold pool,
    # spin-up included) under the default crossover guard — on multi-core
    # hosts this is the number that must beat `vector_s` on the large
    # circuits, and on small circuits the guard routes in-process.
    jobs = default_jobs()
    sharded_engine = fresh_engine(circuit_name)
    sharded_backend = sharded_engine.sharded_backend(jobs=jobs)
    t0 = time.perf_counter()
    sharded_engine.analyze(sites=sites, backend="sharded", jobs=jobs)
    sharded_s = time.perf_counter() - t0
    process_path = sharded_backend.pool_started
    sharded_backend.close()

    benchmark.extra_info["n_sites"] = len(sites)
    benchmark.extra_info["n_nodes"] = engine.compiled.n
    benchmark.extra_info["vector_dense_s"] = round(dense_s, 3)
    benchmark.extra_info["speedup_sparse_vs_dense"] = round(dense_s / vector_s, 2)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 3)
    benchmark.extra_info["seed_scalar_s"] = round(seed_s, 3)
    benchmark.extra_info["scalar_extrapolated"] = scale != 1.0
    benchmark.extra_info["speedup_vs_scalar"] = round(scalar_s / vector_s, 2)
    benchmark.extra_info["speedup_vs_seed_scalar"] = round(seed_s / vector_s, 2)
    benchmark.extra_info["sharded_s"] = round(sharded_s, 3)
    benchmark.extra_info["sharded_jobs"] = jobs
    benchmark.extra_info["sharded_process_path"] = process_path
    benchmark.extra_info["speedup_vs_vector"] = round(vector_s / sharded_s, 2)
