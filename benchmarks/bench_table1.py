"""Table 1 benchmark: rule evaluation throughput.

Times the closed-form rules against the generic enumeration rule — the
constant factor between them is why the engine ships closed forms for the
common gates.
"""

import pytest

from repro.core.rules import and_rule, or_rule, truth_table_rule, xor_rule
from repro.netlist.gate_types import GateType, truth_table

_INPUTS = [
    (0.1, 0.2, 0.3, 0.4),
    (0.0, 0.0, 0.6, 0.4),
    (0.25, 0.25, 0.25, 0.25),
]


@pytest.mark.parametrize(
    "rule_name,rule",
    [("and", and_rule), ("or", or_rule), ("xor", xor_rule)],
)
def test_closed_form_rule(benchmark, rule_name, rule):
    benchmark(rule, _INPUTS)


def test_generic_rule_3_inputs(benchmark):
    table = truth_table(GateType.AND, 3)
    benchmark(truth_table_rule, table, _INPUTS)


def test_generic_rule_maj5(benchmark):
    table = truth_table(GateType.MAJ, 5)
    inputs = _INPUTS + [(0.4, 0.1, 0.3, 0.2), (0.0, 0.5, 0.25, 0.25)]
    benchmark(truth_table_rule, table, inputs)
