"""Table 2, SPT column: signal-probability computation time.

Times the Monte Carlo SP backend (the accuracy-grade SP charged to SPT in
the harness) and the one-pass topological SP for contrast.
"""

import pytest

from repro.probability.monte_carlo import monte_carlo_signal_probabilities
from repro.probability.signal_prob import compute_signal_probabilities
from benchmarks.conftest import get_circuit

_CIRCUITS = ["s27", "s953", "s1423", "s9234"]


@pytest.mark.parametrize("circuit_name", _CIRCUITS)
def test_monte_carlo_sp(benchmark, circuit_name):
    circuit = get_circuit(circuit_name)
    benchmark(
        monte_carlo_signal_probabilities, circuit, n_vectors=10_000, seed=1
    )
    benchmark.extra_info["n_vectors"] = 10_000


@pytest.mark.parametrize("circuit_name", _CIRCUITS)
def test_topological_sp(benchmark, circuit_name):
    circuit = get_circuit(circuit_name)
    benchmark(compute_signal_probabilities, circuit)
