"""Scaling: EPP per-site cost tracks the cone size, not the circuit size.

Paper Section 2, step 3: "Using a topological order enable us to compute
EPP in just one pass (linear time complexity)."  ``extra_info`` records
time-per-cone-gate; it should stay roughly flat across two decades of
circuit size, which is the linearity claim.
"""

from benchmarks.conftest import BENCH_CIRCUITS, get_engine, sample_sites

import pytest


@pytest.mark.parametrize("circuit_name", BENCH_CIRCUITS)
def test_epp_cost_per_cone_gate(benchmark, circuit_name):
    engine = get_engine(circuit_name)
    sites = sample_sites(circuit_name, 30, seed=4)
    total_cone = sum(engine.cone(site).size for site in sites)

    def run_all():
        for site in sites:
            engine.p_sensitized(site)

    benchmark(run_all)
    if total_cone:
        per_gate_us = benchmark.stats["mean"] / total_cone * 1e6
        benchmark.extra_info["us_per_cone_gate"] = round(per_gate_us, 3)
    benchmark.extra_info["total_cone_gates"] = total_cone
    benchmark.extra_info["n_nodes"] = engine.compiled.n
