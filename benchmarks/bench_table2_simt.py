"""Table 2, SimT column: per-node *serial* random-simulation run time.

One site, a small vector budget — serial cost is exactly linear in both,
so the per-node per-vector time in ``extra_info`` extrapolates to any
budget (the harness and EXPERIMENTS.md use 100k vectors as the reference).
Only the smaller circuits are timed here; the big ones are what made the
paper call the baseline "exorbitant", and their cost is the same slope
times more gates.
"""

import pytest

from repro.core.baseline import SerialRandomSimulationEstimator
from benchmarks.conftest import get_circuit, sample_sites

_VECTORS = 50


@pytest.mark.parametrize("circuit_name", ["s27", "s953", "s1423"])
def test_serial_simulation_per_node(benchmark, circuit_name):
    circuit = get_circuit(circuit_name)
    site = sample_sites(circuit_name, 1)[0]
    estimator = SerialRandomSimulationEstimator(
        circuit, n_vectors=_VECTORS, seed=7
    )
    benchmark(estimator.estimate, [site])
    per_vector_s = benchmark.stats["mean"] / _VECTORS
    benchmark.extra_info["simt_s_per_node_100k_vectors"] = round(
        per_vector_s * 100_000, 2
    )
    benchmark.extra_info["vectors_timed"] = _VECTORS
