"""Ablation: how much of the paper's speedup is the baseline's fault?

The paper's SimT column times a 2005-style serial simulator.  A modern
bit-parallel, cone-restricted fault-injection baseline closes part of the
gap — this benchmark measures both implementations on the same circuit and
budget so the ratio is explicit.  The EPP engine must still win against
the modern baseline; the margin against the serial one reproduces the
paper's headline.
"""

import pytest

from repro.core.baseline import (
    RandomSimulationEstimator,
    SerialRandomSimulationEstimator,
)
from benchmarks.conftest import get_circuit, get_engine, sample_sites

_CIRCUIT = "s953"
_VECTORS = 256


@pytest.fixture(scope="module")
def sites():
    return sample_sites(_CIRCUIT, 5, seed=3)


def test_serial_baseline(benchmark, sites):
    estimator = SerialRandomSimulationEstimator(
        get_circuit(_CIRCUIT), n_vectors=_VECTORS, seed=5
    )
    benchmark(estimator.estimate, sites)
    benchmark.extra_info["vectors"] = _VECTORS


def test_bitparallel_cone_baseline(benchmark, sites):
    estimator = RandomSimulationEstimator(
        get_circuit(_CIRCUIT), n_vectors=_VECTORS, seed=5
    )
    benchmark(estimator.estimate, sites)
    benchmark.extra_info["vectors"] = _VECTORS


def test_epp_same_sites(benchmark, sites):
    engine = get_engine(_CIRCUIT)

    def run_all():
        for site in sites:
            engine.p_sensitized(site)

    benchmark(run_all)
