"""Ablation: signal-probability backend — runtime vs accuracy.

The paper charges SP computation separately precisely because the backend
choice is a free parameter of the flow.  This benchmark times all four
backends on the same circuit and records each one's SP accuracy against
the exact (global-BDD) answer in ``extra_info``.
"""

import pytest

from repro.netlist.generate import random_combinational
from repro.probability import signal_probabilities
from repro.probability.exact import exact_signal_probabilities

_CIRCUIT = random_combinational(10, 150, seed=42)
_EXACT = exact_signal_probabilities(_CIRCUIT)

_BACKENDS = [
    ("topological", {}),
    ("cut", {"cut_depth": 4}),
    ("monte_carlo", {"n_vectors": 20_000}),
    ("exact", {}),
]


@pytest.mark.parametrize("method,options", _BACKENDS, ids=[b[0] for b in _BACKENDS])
def test_sp_backend(benchmark, method, options):
    result = benchmark(signal_probabilities, _CIRCUIT, method, **options)
    mean_abs_err = sum(abs(result[n] - _EXACT[n]) for n in _EXACT) / len(_EXACT)
    benchmark.extra_info["mean_abs_error_vs_exact"] = round(mean_abs_err, 5)
