#!/usr/bin/env python
"""Lint against knob-tuple threading regressions.

The PR-10 consolidation moved every analysis knob onto
``repro.core.config.AnalysisConfig`` precisely because hand-threading
the knob tuple through call layers shipped a seam bug per PR (bool-
coerced ``prune``, ``jobs`` bypassing validation, knobs missing from
cache identities).  This lint keeps the codebase consolidated: a call
or function signature inside ``src/repro`` that threads **5 or more
knob-named parameters** is a regression — such fan-outs must pass one
``AnalysisConfig`` instead.

Allowed exceptions:

* ``core/config.py`` itself (it *is* the knob table);
* calls whose callee is the config layer (``AnalysisConfig``,
  ``from_knobs``, ``replace``, ``merged_with``) — building the config
  object is the point;
* the documented back-compat signatures that accept individual knobs
  *and* ``config=`` (``EPPEngine.sharded_backend`` /
  ``vector_backend``, ``ShardedEPPEngine.__init__``) — they funnel
  straight into ``AnalysisConfig`` internally.

Run from the repo root: ``python tools/lint_knob_threading.py``.
Exits non-zero listing ``file:line`` for each violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import KNOB_KEYS  # noqa: E402

#: Threading this many knob-named parameters in one call/signature is a
#: regression (the historical seam bugs all involved full-surface runs).
THRESHOLD = 5

KNOB_SET = frozenset(KNOB_KEYS)

#: Callee names that legitimately take the full knob surface — they are
#: (or construct) the config layer itself.
ALLOWED_CALLEES = frozenset(
    {"AnalysisConfig", "from_knobs", "replace", "merged_with"}
)

#: (relative path, function name) pairs allowed to keep individual-knob
#: signatures: the documented back-compat entry points, which validate
#: by building an AnalysisConfig on their first line.
ALLOWED_DEFS = frozenset({
    ("src/repro/core/epp.py", "sharded_backend"),
    ("src/repro/core/epp.py", "vector_backend"),
    ("src/repro/core/epp_shard.py", "__init__"),
    # The vector kernel's constructor is the *terminal* consumer of the
    # sweep subset — every caller feeds it ``**config.sweep_kwargs()``,
    # so the knobs exist as parameters exactly once below the config.
    ("src/repro/core/epp_batch.py", "__init__"),
})

#: Files exempt wholesale.
SKIP_FILES = frozenset({"src/repro/core/config.py"})


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _check_file(path: Path, rel: str) -> list[str]:
    tree = ast.parse(path.read_text(), filename=rel)
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            # kw.arg is None for **unpacking — that is the config layer
            # fanning a dict out, not hand-threading, so don't count it.
            named = {kw.arg for kw in node.keywords if kw.arg is not None}
            hit = named & KNOB_SET
            if len(hit) >= THRESHOLD and _callee_name(node) not in ALLOWED_CALLEES:
                problems.append(
                    f"{rel}:{node.lineno}: call threads {len(hit)} analysis "
                    f"knobs ({', '.join(sorted(hit))}) — pass one "
                    f"AnalysisConfig instead"
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = [
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            ]
            hit = set(params) & KNOB_SET
            if len(hit) >= THRESHOLD and (rel, node.name) not in ALLOWED_DEFS:
                problems.append(
                    f"{rel}:{node.lineno}: def {node.name} declares "
                    f"{len(hit)} analysis-knob parameters "
                    f"({', '.join(sorted(hit))}) — take config: "
                    f"AnalysisConfig instead"
                )
    return problems


def main() -> int:
    problems: list[str] = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(ROOT).as_posix()
        if rel in SKIP_FILES:
            continue
        problems.extend(_check_file(path, rel))
    if problems:
        print("knob-threading lint: FAIL", file=sys.stderr)
        for problem in problems:
            print("  " + problem, file=sys.stderr)
        return 1
    print("knob-threading lint: OK (no hand-threaded knob runs outside "
          "core/config.py)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
